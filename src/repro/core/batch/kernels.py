"""Compiled hot kernels behind the ``REPRO_KERNELS`` feature flag.

The engine's three hottest inner loops — the batched deadline
value-iteration layer (:func:`deadline_layer`), the budget solver's lower
convex hull (:func:`lower_hull_indices`), and the sharded tick's
completion application (:func:`shard_tick`) — each exist twice here:

* a **numpy** implementation (the reference: exactly the arithmetic the
  vectorized solvers have always performed, in the same operation order),
  and
* a **numba**-compiled implementation of the same algorithm, written so
  every floating-point operation happens in the same order as the numpy
  path (sequential pmf recurrences, sequential cumulative sums, the
  continuation product routed through the same BLAS ``dot``) — the
  differential suite (``tests/core/batch/test_kernel_equivalence.py``)
  asserts **exact** equality between the two over randomized shapes, and
  the engine-level matrix suite asserts bit-identical
  :class:`~repro.engine.clock.EngineResult` under either.

Selection is environmental, never structural: ``REPRO_KERNELS=numba``
requests the compiled path, ``REPRO_KERNELS=numpy`` (or unset) pins the
reference, and ``REPRO_KERNELS=auto`` compiles when :mod:`numba` is
importable.  When numba is requested but **absent, the numpy path runs
automatically** — the flag can therefore be exported fleet-wide without
making numba a hard dependency (it is an optional extra:
``pip install -e '.[kernels]'``).  Callers flip the selection at runtime
with :func:`set_kernels` (the CLI's ``--kernels``) or scope it with
:func:`use_kernels` (the test harness).

Two fallbacks are built into the dispatchers themselves and are part of
the exactness contract rather than exceptions to it:

* deadline layers containing a Poisson mean at or above the log-space
  switch (mean >= 700) run the numpy path even under ``numba`` — the
  log-space pmf needs ``gammaln``, and routing those rare layers through
  the identical numpy code is what keeps the two paths exactly equal;
* the hull kernel requires strictly increasing x coordinates (always
  true for a validated price grid) and delegates anything else to the
  general python implementation in :mod:`repro.util.convexhull`.
"""

from __future__ import annotations

import contextlib
import os
import warnings

import numpy as np

from repro.util.convexhull import lower_convex_hull

__all__ = [
    "HAVE_NUMBA",
    "KERNELS",
    "active",
    "active_kernels",
    "available",
    "available_kernels",
    "deadline_layer",
    "lower_hull_indices",
    "set_kernels",
    "shard_tick",
    "use_kernels",
]

#: Selectable kernel backends (``auto`` additionally accepted by the flag).
KERNELS = ("numpy", "numba")

#: Environment variable the default selection is read from.
KERNELS_ENV = "REPRO_KERNELS"

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the reference container has none
    numba = None
    HAVE_NUMBA = False

#: Above this Poisson mean the pmf recurrence underflows at ``s = 0``; the
#: scalar path (:func:`repro.util.poisson.poisson_pmf_vector`) switches to
#: log-space there, and the batch kernels route the whole layer through
#: the numpy implementation (see module docstring).
LOG_SPACE_MEAN = 700.0

_active: str | None = None


def available() -> tuple[str, ...]:
    """Kernel backends usable in this environment (numpy always is)."""
    return KERNELS if HAVE_NUMBA else ("numpy",)


def _resolve(name: str | None) -> str:
    """Map a requested backend name to the one that will actually run."""
    requested = (name if name is not None else os.environ.get(KERNELS_ENV, "")).strip()
    if requested in ("", "numpy"):
        return "numpy"
    if requested == "auto":
        return "numba" if HAVE_NUMBA else "numpy"
    if requested == "numba":
        if HAVE_NUMBA:
            return "numba"
        warnings.warn(
            "REPRO_KERNELS=numba requested but numba is not importable; "
            "falling back to the numpy kernels (results are identical)",
            RuntimeWarning,
            stacklevel=3,
        )
        return "numpy"
    raise ValueError(
        f"unknown kernel backend {requested!r}; expected one of "
        f"{KERNELS + ('auto',)}"
    )


def active() -> str:
    """The kernel backend in effect: ``"numpy"`` or ``"numba"``."""
    global _active
    if _active is None:
        _active = _resolve(None)
    return _active


def set_kernels(name: str | None) -> str:
    """Select the kernel backend; returns what actually activated.

    ``name=None`` re-reads :data:`KERNELS_ENV`; ``"numba"`` falls back to
    ``"numpy"`` (with a warning) when numba is absent, so selection never
    fails on a missing optional dependency.
    """
    global _active
    _active = _resolve(name)
    return _active


#: Package-level aliases (``repro.core.batch.active_kernels()`` reads
#: better than re-exporting the bare verbs).
def active_kernels() -> str:
    """Alias of :func:`active` for package-level import."""
    return active()


def available_kernels() -> tuple[str, ...]:
    """Alias of :func:`available` for package-level import."""
    return available()


@contextlib.contextmanager
def use_kernels(name: str | None):
    """Scope a kernel selection (test harness / benchmark arms)."""
    global _active
    previous = _active
    set_kernels(name)
    try:
        yield active()
    finally:
        _active = previous


# ----------------------------------------------------------------------
# Kernel 1: one time layer of the batched deadline value iteration
# ----------------------------------------------------------------------
def _deadline_layer_numpy(
    means: np.ndarray,
    pmf0: np.ndarray,
    prices: np.ndarray,
    opt_next: np.ndarray,
    eps: float | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Reference layer: the exact tensor arithmetic of the PR 2 fast path.

    ``means``/``prices`` are ``(B, C)``, ``opt_next`` is ``(B, S)`` with
    ``S = num_tasks + 1``; returns ``(opt_t, best)`` where ``opt_t`` is the
    layer's value vector (``opt_t[:, 0] = 0``) and ``best`` the per-state
    lowest-cost price index (first minimum = lowest price).
    """
    batch, n_tasks = opt_next.shape[0], opt_next.shape[1] - 1
    size = n_tasks + 1
    n_range = np.arange(size)
    # Poisson pmf tensor P[b, c, s]: the stable multiplicative recurrence
    # seeded by the precomputed pmf0 = exp(-means); callers route layers
    # containing log-space means (>= LOG_SPACE_MEAN) through
    # _pmf_log_space first, so the recurrence here never underflows.
    pmf = np.empty(means.shape + (size,))
    pmf[..., 0] = pmf0
    for s in range(1, size):
        pmf[..., s] = pmf[..., s - 1] * means / s
    big = means >= LOG_SPACE_MEAN
    if np.any(big):
        pmf[big] = _pmf_log_space(means[big], n_tasks)
    lengths = _truncation_lengths(means, pmf, eps, n_tasks)
    pmf[n_range[None, None, :] >= lengths[:, :, None]] = 0.0
    prob_cum = np.cumsum(pmf, axis=-1)
    paid_cum = np.cumsum(pmf * n_range, axis=-1)
    # Toeplitz matrix T[b, s, n] = opt_next[b, n - s] (0 for n < s): the
    # continuation of every (instance, price) is one batched matmul.
    # Materialized contiguous: BLAS output on the reversed strided view
    # differs in the last ulp from the contiguous product, and the numba
    # twin (plain 2-D ``np.dot``) can only match the contiguous one.
    padded = np.concatenate([np.zeros((batch, n_tasks)), opt_next], axis=1)
    toeplitz = np.ascontiguousarray(
        np.lib.stride_tricks.sliding_window_view(padded, size, axis=1)[
            :, ::-1, :
        ]
    )
    conv = pmf @ toeplitz  # (B, C, S)
    # Head of the payment term covers s = 0 .. min(n-1, length-1); the
    # Poisson tail completes all n remaining tasks (absorbing state).
    k = np.minimum(n_range[None, None, :] - 1, lengths[:, :, None] - 1)
    k_safe = np.maximum(k, 0)
    head_prob = np.where(
        k >= 0, np.take_along_axis(prob_cum, k_safe, axis=-1), 0.0
    )
    head_paid = np.where(
        k >= 0, np.take_along_axis(paid_cum, k_safe, axis=-1), 0.0
    )
    tail = np.maximum(0.0, 1.0 - head_prob)
    costs = prices[:, :, None] * (head_paid + n_range * tail) + conv
    costs[:, :, 0] = 0.0
    best = np.argmin(costs, axis=1)  # first minimum = lowest price
    opt_t = np.take_along_axis(costs, best[:, None, :], axis=1)[:, 0, :]
    opt_t[:, 0] = 0.0
    return opt_t, best


def _pmf_log_space(means: np.ndarray, s_max: int) -> np.ndarray:
    """Log-space Poisson pmf rows for means past the recurrence's range."""
    from scipy import special

    s_range = np.arange(s_max + 1, dtype=float)
    m = means[:, None]
    return np.exp(s_range * np.log(m) - m - special.gammaln(s_range + 1.0))


def _truncation_lengths(
    means: np.ndarray, pmf: np.ndarray, eps: float | None, s_max: int
) -> np.ndarray:
    """Per-(instance, price) kept pmf length, matching ``truncated_pmf``.

    The scalar rule: with the Gaussian band ``hi = mean + 12 sqrt(mean) + 20``
    covering the whole head (``s_max + 1 <= hi``) nothing is cut; otherwise
    the head is cut at the smallest ``s0`` with ``Pr(Pois >= s0) < eps``
    (at least 1, at most ``s_max + 1``).
    """
    full = s_max + 1
    if eps is None:
        return np.full(means.shape, full, dtype=int)
    hi = np.floor(means + 12.0 * np.sqrt(means) + 20.0).astype(int)
    cums = np.cumsum(pmf, axis=-1)
    # s0 = 1 + #{s' in 0..s_max-1 : Pr(Pois >= s'+1) = 1 - cdf(s') >= eps}.
    s0 = 1 + np.sum(1.0 - cums[..., : s_max] >= eps, axis=-1)
    s0 = np.clip(s0, 1, full)
    return np.where(full <= hi, full, s0)


def _deadline_layer_loops(
    means: np.ndarray,
    pmf0: np.ndarray,
    prices: np.ndarray,
    opt_next: np.ndarray,
    eps: float,
    use_eps: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """Loop form of :func:`_deadline_layer_numpy` (the numba source).

    Every accumulation runs in the same order as the numpy reference —
    the pmf recurrence left to right, the cumulative sums left to right,
    the continuation through the same BLAS ``dot`` — so the jitted
    function produces bit-identical layers.  Kept importable un-jitted so
    the equivalence suite can prove the *algorithm* exact even where
    numba is not installed.
    """
    batch, n_prices = means.shape
    size = opt_next.shape[1]
    n_tasks = size - 1
    opt_t = np.empty((batch, size))
    best = np.zeros((batch, size), dtype=np.int64)
    pmf = np.empty((n_prices, size))
    prob_cum = np.empty((n_prices, size))
    paid_cum = np.empty((n_prices, size))
    lengths = np.empty(n_prices, dtype=np.int64)
    toeplitz = np.zeros((size, size))
    costs = np.empty((n_prices, size))
    for b in range(batch):
        for s in range(size):
            for n in range(s, size):
                toeplitz[s, n] = opt_next[b, n - s]
        for c in range(n_prices):
            m = means[b, c]
            pmf[c, 0] = pmf0[b, c]
            for s in range(1, size):
                pmf[c, s] = pmf[c, s - 1] * m / s
            if use_eps:
                hi = int(np.floor(m + 12.0 * np.sqrt(m) + 20.0))
                if size <= hi:
                    length = size
                else:
                    count = 0
                    cum = 0.0
                    for s in range(n_tasks):
                        cum = cum + pmf[c, s]
                        if 1.0 - cum >= eps:
                            count += 1
                    s0 = 1 + count
                    if s0 < 1:
                        s0 = 1
                    if s0 > size:
                        s0 = size
                    length = s0
            else:
                length = size
            lengths[c] = length
            for s in range(length, size):
                pmf[c, s] = 0.0
            cum_p = 0.0
            cum_paid = 0.0
            for s in range(size):
                cum_p = cum_p + pmf[c, s]
                cum_paid = cum_paid + pmf[c, s] * s
                prob_cum[c, s] = cum_p
                paid_cum[c, s] = cum_paid
        conv = np.dot(pmf, toeplitz)  # same BLAS call as the batched matmul
        for c in range(n_prices):
            length = lengths[c]
            price = prices[b, c]
            costs[c, 0] = 0.0
            for n in range(1, size):
                k = n - 1
                if length - 1 < k:
                    k = length - 1
                if k >= 0:
                    head_prob = prob_cum[c, k]
                    head_paid = paid_cum[c, k]
                else:
                    head_prob = 0.0
                    head_paid = 0.0
                tail = 1.0 - head_prob
                if tail < 0.0:
                    tail = 0.0
                costs[c, n] = price * (head_paid + n * tail) + conv[c, n]
        for n in range(size):
            best_c = 0
            best_cost = costs[0, n]
            for c in range(1, n_prices):
                if costs[c, n] < best_cost:  # strict: first minimum wins
                    best_cost = costs[c, n]
                    best_c = c
            best[b, n] = best_c
            opt_t[b, n] = best_cost
        opt_t[b, 0] = 0.0
    return opt_t, best


if HAVE_NUMBA:  # pragma: no cover - compiled only where numba is installed
    _deadline_layer_jit = numba.njit(cache=True, nogil=True)(
        _deadline_layer_loops
    )
else:
    _deadline_layer_jit = None


def deadline_layer(
    lam_t: np.ndarray,
    probs: np.ndarray,
    prices: np.ndarray,
    opt_next: np.ndarray,
    eps: float | None,
) -> tuple[np.ndarray, np.ndarray]:
    """One backward-induction layer of the batched deadline solve.

    Parameters
    ----------
    lam_t:
        ``(B,)`` forecast arrivals for the layer's interval.
    probs:
        ``(B, C)`` acceptance probabilities per price.
    prices:
        ``(B, C)`` price grids.
    opt_next:
        ``(B, S)`` next layer's value vectors (``S = num_tasks + 1``).
    eps:
        Poisson truncation threshold (``None`` disables truncation).

    Returns
    -------
    (opt_t, best):
        The layer's ``(B, S)`` value vectors and ``(B, S)`` price indices.
    """
    means = lam_t[:, None] * probs
    pmf0 = np.exp(-means)
    if (
        _deadline_layer_jit is not None
        and active() == "numba"
        and not np.any(means >= LOG_SPACE_MEAN)
    ):
        return _deadline_layer_jit(
            np.ascontiguousarray(means),
            np.ascontiguousarray(pmf0),
            np.ascontiguousarray(prices),
            np.ascontiguousarray(opt_next),
            eps if eps is not None else 0.0,
            eps is not None,
        )
    return _deadline_layer_numpy(means, pmf0, prices, opt_next, eps)


# ----------------------------------------------------------------------
# Kernel 2: the budget solver's lower convex hull
# ----------------------------------------------------------------------
def _lower_hull_loops(xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
    """Monotone-chain lower hull over strictly increasing ``xs``.

    The cross-product expression is written identically to
    :func:`repro.util.convexhull._cross`, so vertex selection — including
    the ``<= 0`` collinear-drop rule — matches the python hull exactly.
    """
    n = xs.shape[0]
    hull = np.empty(n, dtype=np.int64)
    top = 0
    for i in range(n):
        while top >= 2:
            o = hull[top - 2]
            a = hull[top - 1]
            cross = (xs[a] - xs[o]) * (ys[i] - ys[o]) - (ys[a] - ys[o]) * (
                xs[i] - xs[o]
            )
            if cross <= 0.0:
                top -= 1
            else:
                break
        hull[top] = i
        top += 1
    return hull[:top].copy()


if HAVE_NUMBA:  # pragma: no cover - compiled only where numba is installed
    _lower_hull_jit = numba.njit(cache=True, nogil=True)(_lower_hull_loops)
else:
    _lower_hull_jit = None


def lower_hull_indices(xs: np.ndarray, ys: np.ndarray) -> list[int]:
    """Lower-convex-hull vertex indices of ``(xs, ys)``.

    Drop-in for :func:`repro.util.convexhull.lower_convex_hull`; the
    compiled path handles the strictly-increasing-x case (what a
    validated price grid always is) and anything else delegates to the
    general python implementation.
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if (
        _lower_hull_jit is not None
        and active() == "numba"
        and xs.ndim == 1
        and xs.size > 0
        and bool(np.all(np.diff(xs) > 0))
    ):
        return [int(i) for i in _lower_hull_jit(xs, ys)]
    return lower_convex_hull(xs.tolist(), ys.tolist())


# ----------------------------------------------------------------------
# Kernel 3: the sharded tick's completion application
# ----------------------------------------------------------------------
def _shard_tick_numpy(
    accepted: np.ndarray, remaining: np.ndarray, prices: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Reference completion pass: cap at open tasks, charge posted price."""
    done = np.minimum(accepted, remaining)
    return done, done * prices


def _shard_tick_loops(
    accepted: np.ndarray, remaining: np.ndarray, prices: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Loop form of :func:`_shard_tick_numpy` (the numba source)."""
    n = accepted.shape[0]
    done = np.empty(n, dtype=np.int64)
    cost = np.empty(n)
    for i in range(n):
        d = accepted[i]
        if remaining[i] < d:
            d = remaining[i]
        done[i] = d
        cost[i] = d * prices[i]
    return done, cost


if HAVE_NUMBA:  # pragma: no cover - compiled only where numba is installed
    _shard_tick_jit = numba.njit(cache=True, nogil=True)(_shard_tick_loops)
else:
    _shard_tick_jit = None


def shard_tick(
    accepted: np.ndarray, remaining: np.ndarray, prices: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Apply one tick's accepted draws to per-campaign open-task counts.

    ``accepted``/``remaining`` are int64 per-campaign arrays, ``prices``
    the posted rewards; returns ``(done, cost)`` where ``done`` caps
    acceptances at the open tasks and ``cost`` is the tick's deadline
    payment ``done * price`` per campaign (semi-static budget campaigns
    are charged by the caller through their price sequence instead).
    """
    if _shard_tick_jit is not None and active() == "numba":
        return _shard_tick_jit(accepted, remaining, prices)
    return _shard_tick_numpy(accepted, remaining, prices)
