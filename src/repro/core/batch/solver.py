"""The batch-solve façade the engine's policy cache drains on miss.

:class:`BatchPolicySolver` is the seam between the serving layer and the
array kernels: the engine collects every campaign signature that missed
the :class:`~repro.engine.cache.PolicyCache` during one admission tick and
hands the whole miss set here, which dispatches deadline instances to
:func:`~repro.core.batch.deadline.solve_deadline_batch` and budget
instances to :func:`~repro.core.batch.budget.solve_budget_batch` — one
array pass per tick instead of one solve per campaign.  Counters record
how much batching actually happened (batch calls, instances per call)
for the benchmark reports.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.core.batch.budget import BudgetRequest, solve_budget_batch
from repro.core.batch.deadline import solve_deadline_batch
from repro.core.budget.static_lp import StaticAllocation
from repro.core.deadline.model import DeadlineProblem
from repro.core.deadline.policy import DeadlinePolicy

__all__ = ["BatchPolicySolver", "BatchSolveStats"]


@dataclasses.dataclass(frozen=True)
class BatchSolveStats:
    """Counters for one :class:`BatchPolicySolver`.

    Attributes
    ----------
    batches:
        Batch-solve calls issued (deadline and budget combined).
    instances:
        Total instances solved across all calls.
    largest_batch:
        Size of the widest single batch — how much stacking the workload
        actually offered.
    """

    batches: int
    instances: int
    largest_batch: int

    @property
    def mean_batch_size(self) -> float:
        """Average instances per batch call (0.0 before any call)."""
        return self.instances / self.batches if self.batches else 0.0

    def since(self, baseline: "BatchSolveStats") -> "BatchSolveStats":
        """Counters accumulated after ``baseline`` was snapshotted.

        Used by the engines to report per-session batch stats: a serving
        session resets (or snapshots) the solver's counters when it
        starts, so reruns don't report cumulative cross-run numbers.
        ``largest_batch`` is a running maximum, not a counter — it is
        reported as-is, which is exact whenever the baseline is a
        session-start reset (the only way the engines use it).
        """
        return BatchSolveStats(
            batches=self.batches - baseline.batches,
            instances=self.instances - baseline.instances,
            largest_batch=self.largest_batch,
        )


class BatchPolicySolver:
    """Solves outstanding deadline/budget instances in stacked array passes.

    Stateless apart from its counters; one instance can serve any number
    of engines, but it is not thread-safe (the engines drain it from the
    coordinator thread only).
    """

    def __init__(self) -> None:
        self._batches = 0
        self._instances = 0
        self._largest = 0

    def _count(self, size: int) -> None:
        if size == 0:
            return
        self._batches += 1
        self._instances += size
        self._largest = max(self._largest, size)

    def solve_deadline_many(
        self, problems: Sequence[DeadlineProblem]
    ) -> list[DeadlinePolicy]:
        """Solve deadline MDP instances via the batched tensor kernel."""
        self._count(len(problems))
        return solve_deadline_batch(problems)

    def solve_budget_many(
        self, requests: Sequence[BudgetRequest]
    ) -> list[StaticAllocation]:
        """Solve fixed-budget instances via the shared-hull batch kernel."""
        self._count(len(requests))
        return solve_budget_batch(requests)

    @property
    def stats(self) -> BatchSolveStats:
        """Current counters as an immutable snapshot."""
        return BatchSolveStats(
            batches=self._batches,
            instances=self._instances,
            largest_batch=self._largest,
        )

    def reset(self) -> None:
        """Zero the counters (the engines call this at serving-session start)."""
        self._batches = self._instances = self._largest = 0

    def counters(self) -> tuple[int, int, int]:
        """The raw ``(batches, instances, largest)`` counters (checkpointing)."""
        return (self._batches, self._instances, self._largest)

    def restore_counters(self, batches: int, instances: int, largest: int) -> None:
        """Overwrite the counters (checkpoint restore only).

        A resume replays admissions through the solver — bumping these as
        a side effect — then resets them to the interrupted session's
        recorded values so per-session stats stay exact.
        """
        self._batches = int(batches)
        self._instances = int(instances)
        self._largest = int(largest)

    def __repr__(self) -> str:
        s = self.stats
        return (
            f"BatchPolicySolver(batches={s.batches}, instances={s.instances}, "
            f"largest={s.largest_batch})"
        )
