"""Batched fixed-budget allocation: one convex hull, many budgets.

Algorithm 3 (:func:`repro.core.budget.static_lp.solve_budget_hull`) spends
its time on the acceptance probabilities and the lower convex hull of
``(c, 1/p(c))`` — both of which depend only on the *marketplace*, not on
any single campaign's ``(N, B)``.  :func:`solve_budget_batch` therefore
groups requests by ``(acceptance signature, price grid)``, builds each
group's hull once, and resolves every instance against it with the same
segment-search and rounding arithmetic as the scalar solver — so the
returned :class:`~repro.core.budget.static_lp.StaticAllocation` objects
are identical to what per-instance Algorithm 3 produces.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Sequence

import numpy as np

from repro.core.batch import kernels
from repro.core.budget.static_lp import StaticAllocation, budget_signature
from repro.market.acceptance import AcceptanceModel
from repro.util.convexhull import hull_segment_for

__all__ = ["BudgetRequest", "solve_budget_batch"]


@dataclasses.dataclass(frozen=True)
class BudgetRequest:
    """One fixed-budget instance queued for a batch solve.

    Attributes
    ----------
    num_tasks:
        Batch size ``N``.
    budget:
        Total budget ``B`` in price units.
    acceptance:
        The marketplace ``p(c)`` model.
    price_grid:
        Candidate prices, ascending.
    """

    num_tasks: int
    budget: float
    acceptance: AcceptanceModel
    price_grid: np.ndarray

    def __post_init__(self) -> None:
        if self.num_tasks <= 0:
            raise ValueError(f"num_tasks must be positive, got {self.num_tasks}")
        if self.budget < 0:
            raise ValueError(f"budget must be non-negative, got {self.budget}")
        grid = np.asarray(self.price_grid, dtype=float)
        if grid.ndim != 1 or grid.size == 0:
            raise ValueError("price_grid must be a non-empty 1-D array")
        if np.any(np.diff(grid) <= 0):
            raise ValueError("price_grid must be strictly ascending")
        object.__setattr__(self, "price_grid", grid)

    def signature(self, precision: int = 9) -> tuple:
        """The cache key this request resolves under (see ``budget_signature``)."""
        return budget_signature(
            self.num_tasks, self.budget, self.acceptance, self.price_grid, precision
        )


class _HullGroup:
    """The per-(acceptance, grid) work shared by every instance in a group."""

    def __init__(self, request: BudgetRequest):
        grid = request.price_grid
        probs = request.acceptance.probabilities(grid)
        viable = probs > 0
        if not np.any(viable):
            raise ValueError("no grid price has positive acceptance probability")
        self.grid = grid[viable]
        self.inv_p = 1.0 / probs[viable]
        hull = kernels.lower_hull_indices(self.grid, self.inv_p)
        self.hull_prices = self.grid[hull]
        self.hull_inv_p = self.inv_p[hull]

    def solve(self, num_tasks: int, budget: float) -> StaticAllocation:
        """Algorithm 3's per-instance tail, against the shared hull."""
        if budget < num_tasks * self.grid[0]:
            raise ValueError(
                f"budget {budget} cannot cover {num_tasks} tasks even at the "
                f"cheapest viable price {self.grid[0]}"
            )
        per_task = budget / num_tasks
        i1, i2 = hull_segment_for(self.hull_prices.tolist(), per_task)
        if i1 == i2:
            price = float(self.hull_prices[i1])
            ew = num_tasks * float(self.hull_inv_p[i1])
            return StaticAllocation(
                prices=(price,),
                counts=(num_tasks,),
                expected_arrivals=ew,
                total_cost=num_tasks * price,
                rounding_gap_bound=0.0,
            )
        c1, c2 = float(self.hull_prices[i1]), float(self.hull_prices[i2])
        n1 = math.ceil((c2 * num_tasks - budget) / (c2 - c1))
        n1 = min(max(n1, 0), num_tasks)
        n2 = num_tasks - n1
        ew = n1 * float(self.hull_inv_p[i1]) + n2 * float(self.hull_inv_p[i2])
        exact = (c2 * num_tasks - budget) / (c2 - c1)
        gap = 0.0 if exact == n1 else float(self.hull_inv_p[i1] - self.hull_inv_p[i2])
        return StaticAllocation(
            prices=(c1, c2),
            counts=(n1, n2),
            expected_arrivals=ew,
            total_cost=n1 * c1 + n2 * c2,
            rounding_gap_bound=gap,
        )


def _marketplace_key(request: BudgetRequest, precision: int = 9) -> tuple:
    """Grouping key: instances over the same hull share one build."""
    return (
        request.acceptance.signature(),
        tuple(round(float(c), precision) for c in request.price_grid),
    )


def solve_budget_batch(
    requests: Sequence[BudgetRequest],
) -> list[StaticAllocation]:
    """Run Algorithm 3 for many instances, building each hull only once.

    Parameters
    ----------
    requests:
        Fixed-budget instances; any mix of marketplaces.  Requests over
        the same ``(acceptance, price_grid)`` reuse one probability
        evaluation and one convex hull.

    Returns
    -------
    list[StaticAllocation]
        Allocations in request order, identical to running
        :func:`~repro.core.budget.static_lp.solve_budget_hull` per
        instance.

    Raises
    ------
    ValueError
        If any instance's budget cannot cover its batch at the cheapest
        viable price (same contract as the scalar solver).
    """
    groups: dict[tuple, _HullGroup] = {}
    out: list[StaticAllocation] = []
    for request in requests:
        key = _marketplace_key(request)
        group = groups.get(key)
        if group is None:
            group = groups[key] = _HullGroup(request)
        out.append(group.solve(request.num_tasks, request.budget))
    return out
