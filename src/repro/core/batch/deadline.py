"""Batched fixed-deadline solver: many MDP instances, one backward sweep.

:func:`solve_deadline_batch` groups instances by shape
``(num_tasks, num_intervals, num_prices, truncation_eps)`` and solves each
group as one stacked tensor computation.  Per time layer ``t`` it builds

* the Poisson-mean matrix ``M[b, j] = lam[b, t] * p_b(c_j)``,
* the completion-count pmf tensor ``P[b, j, s]`` (same multiplicative
  recurrence and Section 3.2 truncation cut-offs as
  :func:`repro.util.poisson.truncated_pmf`, applied elementwise), and
* the continuation values as **one batched matrix product**
  ``P @ T_b`` against a Toeplitz view of the next layer's value vectors —
  replacing the ``batch x prices`` individual ``np.convolve`` calls of
  :func:`repro.core.deadline.vectorized.solve_deadline` with a single BLAS
  call per layer.

The recurrence, truncation lengths, absorbing-tail payment, and
lowest-price tie-breaking all mirror the scalar solvers, so the produced
tables agree with :func:`~repro.core.deadline.vectorized.solve_deadline`
and :func:`~repro.core.deadline.simple_dp.solve_deadline_simple` to float
tolerance; the test suite asserts this on randomized instances.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.batch import kernels
from repro.core.deadline.model import DeadlineProblem
from repro.core.deadline.policy import DeadlinePolicy

__all__ = ["solve_deadline_batch", "group_key"]

#: Above this Poisson mean the pmf recurrence underflows at ``s = 0``; the
#: scalar path (:func:`repro.util.poisson.poisson_pmf_vector`) switches to
#: log-space there, and the batch kernel mirrors the switch exactly.
_LOG_SPACE_MEAN = kernels.LOG_SPACE_MEAN


def group_key(problem: DeadlineProblem) -> tuple:
    """Batching key: instances sharing it stack into one tensor solve."""
    return (
        problem.num_tasks,
        problem.num_intervals,
        problem.num_prices,
        problem.truncation_eps,
    )


def _solve_group(problems: Sequence[DeadlineProblem]) -> list[DeadlinePolicy]:
    """Solve one same-shaped group of instances as stacked tensors.

    Each backward-induction layer is delegated to
    :func:`repro.core.batch.kernels.deadline_layer` — the numpy reference
    by default, the numba-compiled twin under ``REPRO_KERNELS=numba``;
    the two are exact-equality-tested, so the selection never changes the
    produced tables.
    """
    first = problems[0]
    n_tasks = first.num_tasks
    n_intervals = first.num_intervals
    eps = first.truncation_eps
    size = n_tasks + 1  # states 0..N, also the pmf head length
    batch = len(problems)
    lam = np.stack([p.arrival_means for p in problems])  # (B, T)
    prices = np.stack([p.price_grid for p in problems])  # (B, C)
    probs = np.stack([p.acceptance_probabilities() for p in problems])
    opt = np.zeros((batch, size, n_intervals + 1))
    price_index = np.zeros((batch, size, n_intervals), dtype=int)
    opt[:, :, n_intervals] = np.stack(
        [p.penalty.terminal_costs(n_tasks) for p in problems]
    )
    for t in range(n_intervals - 1, -1, -1):
        opt_t, best = kernels.deadline_layer(
            lam[:, t], probs, prices, opt[:, :, t + 1], eps
        )
        opt[:, :, t] = opt_t
        price_index[:, 1:, t] = best[:, 1:]
    return [
        DeadlinePolicy(
            problem=problem,
            opt=opt[b],
            price_index=price_index[b],
            solver="batch",
        )
        for b, problem in enumerate(problems)
    ]


def solve_deadline_batch(
    problems: Sequence[DeadlineProblem],
) -> list[DeadlinePolicy]:
    """Solve many fixed-deadline MDP instances in stacked array passes.

    Parameters
    ----------
    problems:
        Deadline instances of any mix of shapes.  Instances sharing
        ``(num_tasks, num_intervals, num_prices, truncation_eps)`` are
        solved together in one tensor sweep; singleton shapes degrade to
        a batch of one (still the batched kernel, still correct).

    Returns
    -------
    list[DeadlinePolicy]
        Solved policies in the same order as ``problems``, each tagged
        ``solver="batch"``.
    """
    if not problems:
        return []
    groups: dict[tuple, list[int]] = {}
    for i, problem in enumerate(problems):
        groups.setdefault(group_key(problem), []).append(i)
    out: list[DeadlinePolicy | None] = [None] * len(problems)
    for indices in groups.values():
        solved = _solve_group([problems[i] for i in indices])
        for i, policy in zip(indices, solved):
            out[i] = policy
    return out  # type: ignore[return-value]
