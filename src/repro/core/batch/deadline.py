"""Batched fixed-deadline solver: many MDP instances, one backward sweep.

:func:`solve_deadline_batch` groups instances by shape
``(num_tasks, num_intervals, num_prices, truncation_eps)`` and solves each
group as one stacked tensor computation.  Per time layer ``t`` it builds

* the Poisson-mean matrix ``M[b, j] = lam[b, t] * p_b(c_j)``,
* the completion-count pmf tensor ``P[b, j, s]`` (same multiplicative
  recurrence and Section 3.2 truncation cut-offs as
  :func:`repro.util.poisson.truncated_pmf`, applied elementwise), and
* the continuation values as **one batched matrix product**
  ``P @ T_b`` against a Toeplitz view of the next layer's value vectors —
  replacing the ``batch x prices`` individual ``np.convolve`` calls of
  :func:`repro.core.deadline.vectorized.solve_deadline` with a single BLAS
  call per layer.

The recurrence, truncation lengths, absorbing-tail payment, and
lowest-price tie-breaking all mirror the scalar solvers, so the produced
tables agree with :func:`~repro.core.deadline.vectorized.solve_deadline`
and :func:`~repro.core.deadline.simple_dp.solve_deadline_simple` to float
tolerance; the test suite asserts this on randomized instances.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view
from scipy import special

from repro.core.deadline.model import DeadlineProblem
from repro.core.deadline.policy import DeadlinePolicy

__all__ = ["solve_deadline_batch", "group_key"]

#: Above this Poisson mean the pmf recurrence underflows at ``s = 0``; the
#: scalar path (:func:`repro.util.poisson.poisson_pmf_vector`) switches to
#: log-space there, and the batch kernel mirrors the switch exactly.
_LOG_SPACE_MEAN = 700.0


def group_key(problem: DeadlineProblem) -> tuple:
    """Batching key: instances sharing it stack into one tensor solve."""
    return (
        problem.num_tasks,
        problem.num_intervals,
        problem.num_prices,
        problem.truncation_eps,
    )


def _pmf_tensor(means: np.ndarray, s_max: int) -> np.ndarray:
    """Poisson pmf ``P[..., s] = Pr(Pois(means) = s)`` for ``s = 0..s_max``.

    Applies :func:`repro.util.poisson.poisson_pmf_vector`'s scheme
    elementwise over the leading axes: the stable multiplicative recurrence
    below mean 700, log space (``gammaln``) above it.
    """
    shape = means.shape + (s_max + 1,)
    pmf = np.empty(shape)
    pmf[..., 0] = np.exp(-means)
    for s in range(1, s_max + 1):
        pmf[..., s] = pmf[..., s - 1] * means / s
    big = means >= _LOG_SPACE_MEAN
    if np.any(big):
        s_range = np.arange(s_max + 1, dtype=float)
        m = means[big][:, None]
        pmf[big] = np.exp(
            s_range * np.log(m) - m - special.gammaln(s_range + 1.0)
        )
    return pmf


def _truncation_lengths(
    means: np.ndarray, pmf: np.ndarray, eps: float | None, s_max: int
) -> np.ndarray:
    """Per-(instance, price) kept pmf length, matching ``truncated_pmf``.

    The scalar rule: with the Gaussian band ``hi = mean + 12 sqrt(mean) + 20``
    covering the whole head (``s_max + 1 <= hi``) nothing is cut; otherwise
    the head is cut at the smallest ``s0`` with ``Pr(Pois >= s0) < eps``
    (at least 1, at most ``s_max + 1``).
    """
    full = s_max + 1
    if eps is None:
        return np.full(means.shape, full, dtype=int)
    hi = np.floor(means + 12.0 * np.sqrt(means) + 20.0).astype(int)
    cums = np.cumsum(pmf, axis=-1)
    # s0 = 1 + #{s' in 0..s_max-1 : Pr(Pois >= s'+1) = 1 - cdf(s') >= eps}.
    s0 = 1 + np.sum(1.0 - cums[..., : s_max] >= eps, axis=-1)
    s0 = np.clip(s0, 1, full)
    return np.where(full <= hi, full, s0)


def _solve_group(problems: Sequence[DeadlineProblem]) -> list[DeadlinePolicy]:
    """Solve one same-shaped group of instances as stacked tensors."""
    first = problems[0]
    n_tasks = first.num_tasks
    n_intervals = first.num_intervals
    eps = first.truncation_eps
    size = n_tasks + 1  # states 0..N, also the pmf head length
    batch = len(problems)
    lam = np.stack([p.arrival_means for p in problems])  # (B, T)
    prices = np.stack([p.price_grid for p in problems])  # (B, C)
    probs = np.stack([p.acceptance_probabilities() for p in problems])
    opt = np.zeros((batch, size, n_intervals + 1))
    price_index = np.zeros((batch, size, n_intervals), dtype=int)
    opt[:, :, n_intervals] = np.stack(
        [p.penalty.terminal_costs(n_tasks) for p in problems]
    )
    n_range = np.arange(size)
    for t in range(n_intervals - 1, -1, -1):
        means = lam[:, t : t + 1] * probs  # (B, C)
        pmf = _pmf_tensor(means, n_tasks)  # (B, C, S)
        lengths = _truncation_lengths(means, pmf, eps, n_tasks)
        pmf[n_range[None, None, :] >= lengths[:, :, None]] = 0.0
        prob_cum = np.cumsum(pmf, axis=-1)
        paid_cum = np.cumsum(pmf * n_range, axis=-1)
        # Toeplitz view T[b, s, n] = opt_next[b, n - s] (0 for n < s): the
        # continuation of every (instance, price) is then one batched
        # matmul pmf @ T instead of B*C separate convolutions.
        opt_next = opt[:, :, t + 1]
        padded = np.concatenate([np.zeros((batch, n_tasks)), opt_next], axis=1)
        toeplitz = sliding_window_view(padded, size, axis=1)[:, ::-1, :]
        conv = pmf @ toeplitz  # (B, C, S)
        # Head of the payment term covers s = 0 .. min(n-1, length-1); the
        # Poisson tail completes all n remaining tasks (absorbing state).
        k = np.minimum(n_range[None, None, :] - 1, lengths[:, :, None] - 1)
        k_safe = np.maximum(k, 0)
        head_prob = np.where(
            k >= 0, np.take_along_axis(prob_cum, k_safe, axis=-1), 0.0
        )
        head_paid = np.where(
            k >= 0, np.take_along_axis(paid_cum, k_safe, axis=-1), 0.0
        )
        tail = np.maximum(0.0, 1.0 - head_prob)
        costs = prices[:, :, None] * (head_paid + n_range * tail) + conv
        costs[:, :, 0] = 0.0
        best = np.argmin(costs, axis=1)  # first minimum = lowest price
        opt[:, :, t] = np.take_along_axis(costs, best[:, None, :], axis=1)[:, 0, :]
        opt[:, 0, t] = 0.0
        price_index[:, 1:, t] = best[:, 1:]
    return [
        DeadlinePolicy(
            problem=problem,
            opt=opt[b],
            price_index=price_index[b],
            solver="batch",
        )
        for b, problem in enumerate(problems)
    ]


def solve_deadline_batch(
    problems: Sequence[DeadlineProblem],
) -> list[DeadlinePolicy]:
    """Solve many fixed-deadline MDP instances in stacked array passes.

    Parameters
    ----------
    problems:
        Deadline instances of any mix of shapes.  Instances sharing
        ``(num_tasks, num_intervals, num_prices, truncation_eps)`` are
        solved together in one tensor sweep; singleton shapes degrade to
        a batch of one (still the batched kernel, still correct).

    Returns
    -------
    list[DeadlinePolicy]
        Solved policies in the same order as ``problems``, each tagged
        ``solver="batch"``.
    """
    if not problems:
        return []
    groups: dict[tuple, list[int]] = {}
    for i, problem in enumerate(problems):
        groups.setdefault(group_key(problem), []).append(i)
    out: list[DeadlinePolicy | None] = [None] * len(problems)
    for indices in groups.values():
        solved = _solve_group([problems[i] for i in indices])
        for i, policy in zip(indices, solved):
            out[i] = policy
    return out  # type: ignore[return-value]
