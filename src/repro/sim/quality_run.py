"""End-to-end simulation of quality-controlled filtering under a deadline.

Composes the Section 6 pieces at runtime: a batch of binary filtering items
runs under a majority-vote quality-control strategy while a Section 3
pricing policy (trained on the worst-case-questions reduction,
Approximation 2) sets the per-question reward each interval.  Each arriving
worker who accepts answers one question on a random undecided item; answers
are correct with the worker-pool accuracy; items retire as soon as their
lattice point decides.

The simulation reports both the pricing outcomes (spend, questions asked,
leftovers) and the statistical outcome the quality-control strategy exists
for — the fraction of items decided correctly.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.deadline.policy import DeadlinePolicy
from repro.core.quality import MajorityVoteStrategy, worst_case_questions_outstanding
from repro.util.validation import require_in_range

__all__ = ["FilteringRunResult", "simulate_filtering_run"]


@dataclasses.dataclass(frozen=True)
class FilteringRunResult:
    """Outcome of one quality-controlled filtering run.

    Attributes
    ----------
    num_items:
        Batch size.
    decided:
        Items whose lattice point reached a PASS/FAIL decision in time.
    correct:
        Decided items whose decision matches the ground truth.
    questions_asked:
        Total answers collected (what the requester paid for).
    total_cost:
        Total rewards paid (price units).
    questions_per_interval:
        Answers collected in each interval.
    prices_per_interval:
        Per-question reward posted each interval.
    """

    num_items: int
    decided: int
    correct: int
    questions_asked: int
    total_cost: float
    questions_per_interval: np.ndarray
    prices_per_interval: np.ndarray

    @property
    def undecided(self) -> int:
        return self.num_items - self.decided

    @property
    def decision_accuracy(self) -> float:
        """Fraction of decided items adjudicated correctly."""
        return self.correct / self.decided if self.decided else float("nan")

    @property
    def questions_per_item(self) -> float:
        return self.questions_asked / self.num_items


def simulate_filtering_run(
    strategy: MajorityVoteStrategy,
    policy: DeadlinePolicy,
    num_items: int,
    worker_accuracy: float,
    rng: np.random.Generator,
    item_prior: float = 0.5,
) -> FilteringRunResult:
    """Simulate one deadline run of the quality-controlled batch.

    Parameters
    ----------
    strategy:
        The per-item quality-control lattice.
    policy:
        A Section 3 policy over *question units* (from
        :func:`repro.core.quality.reduce_to_deadline_problem`); its problem
        supplies the arrival means and acceptance model.
    num_items:
        Filtering items in the batch; the policy's ``num_tasks`` must be at
        least ``num_items * worst_case(origin)``.
    worker_accuracy:
        Probability a worker answers a question correctly.
    rng:
        Randomness source.
    item_prior:
        Probability an item's ground truth is positive.
    """
    if num_items <= 0:
        raise ValueError(f"num_items must be positive, got {num_items}")
    require_in_range("worker_accuracy", worker_accuracy, 0.0, 1.0)
    require_in_range("item_prior", item_prior, 0.0, 1.0)
    worst_origin = strategy.worst_case_additional(0, 0)
    if policy.problem.num_tasks < num_items * worst_origin:
        raise ValueError(
            f"policy covers {policy.problem.num_tasks} question units but the "
            f"batch needs up to {num_items * worst_origin}"
        )
    problem = policy.problem
    truth = rng.random(num_items) < item_prior
    points = [(0, 0)] * num_items
    undecided = list(range(num_items))
    decisions: dict[int, str] = {}
    n_intervals = problem.num_intervals
    questions = np.zeros(n_intervals, dtype=int)
    prices = np.zeros(n_intervals)
    total_cost = 0.0
    for t in range(n_intervals):
        if not undecided:
            break
        outstanding = worst_case_questions_outstanding(
            strategy, [points[i] for i in undecided]
        )
        outstanding = max(1, min(outstanding, problem.num_tasks))
        price = policy.price(outstanding, t)
        prices[t] = price
        arrived = int(rng.poisson(problem.arrival_means[t]))
        if arrived == 0:
            continue
        p = problem.acceptance.probability(price)
        answers = int(rng.binomial(arrived, p)) if p > 0 else 0
        for _ in range(answers):
            if not undecided:
                break
            slot = int(rng.integers(len(undecided)))
            item = undecided[slot]
            correct_answer = rng.random() < worker_accuracy
            answered_yes = truth[item] == correct_answer
            x, y = points[item]
            points[item] = (x, y + 1) if answered_yes else (x + 1, y)
            questions[t] += 1
            total_cost += price
            decision = strategy.decision(*points[item])
            if decision != "continue":
                decisions[item] = decision
                undecided[slot] = undecided[-1]
                undecided.pop()
    correct = sum(
        1
        for item, decision in decisions.items()
        if (decision == "pass") == bool(truth[item])
    )
    return FilteringRunResult(
        num_items=num_items,
        decided=len(decisions),
        correct=correct,
        questions_asked=int(questions.sum()),
        total_cost=total_cost,
        questions_per_interval=questions,
        prices_per_interval=prices,
    )
