"""Live-experiment simulator: the Section 5.4 Mechanical-Turk deployment.

The paper's live study posts 5,000 entity-resolution tasks with a fixed HIT
price of $0.02 and expresses the *per-task* price through the number of
tasks bundled per HIT (grouping sizes 10-50), because MTurk groups
same-price HITs together.  Five fixed-grouping trials (Section 5.4.1)
estimate per-group acceptance rates; the dynamic trial (Section 5.4.2)
re-chooses the grouping size every hour from an MDP trained on those
estimates.

This module simulates that deployment agent-by-agent: NHPP worker arrivals
over the 8am-10pm posting window, per-HIT acceptance by grouping size,
worker sessions with price-dependent stickiness (Fig. 15), and per-worker
answer accuracy (Tables 3-4).  The default calibration reproduces the
qualitative Fig. 12 structure: sizes 10 and 20 finish before the 14-hour
deadline, sizes 30-50 do not, and size 50's *work* completion overtakes
30/40 through stickiness.

Planner note: the dynamic policy plans in units of ``planning_unit`` tasks
(default 10) so the Section 3 machinery runs on a 500-state batch instead
of 5,000; the per-unit "price" is the requester's marginal cost
``planning_unit * hit_price / g`` and the per-unit "acceptance" is the
measured effective task throughput per marketplace arrival — both read off
the fixed-trial estimates exactly as the paper does.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.deadline.model import DeadlineProblem, PenaltyScheme
from repro.core.deadline.policy import DeadlinePolicy
from repro.core.deadline.vectorized import solve_deadline
from repro.market.acceptance import EmpiricalAcceptance
from repro.market.nhpp import NHPP, interval_means
from repro.market.rates import PiecewiseConstantRate
from repro.sim.workers import WorkerPool, WorkerSessionModel
from repro.util.validation import require_positive

__all__ = [
    "LiveExperimentConfig",
    "HitCompletion",
    "LiveTrialResult",
    "estimate_unit_throughput",
    "build_planner",
    "run_fixed_trial",
    "run_dynamic_trial",
]

# Default 14-hour (8am-10pm) arrival profile, workers/hour reaching the
# relevant task listings; midday peak, evening tail.
_DEFAULT_HOURLY_RATES = (
    600.0, 700.0, 800.0, 900.0, 950.0, 950.0, 900.0,
    850.0, 800.0, 750.0, 700.0, 650.0, 600.0, 550.0,
)

# First-acceptance probability per grouping size, calibrated so the fixed
# trials reproduce the Fig. 12 completion structure (see module docstring).
_DEFAULT_HIT_ACCEPTANCE = {
    10: 0.0428,
    20: 0.0269,
    30: 0.00558,
    40: 0.00496,
    50: 0.00467,
}


@dataclasses.dataclass(frozen=True)
class LiveExperimentConfig:
    """Parameters of the simulated Section 5.4 deployment.

    Attributes
    ----------
    total_tasks:
        Photo pairs to label (5,000 in the paper).
    hit_price_cents:
        Fixed reward per HIT ($0.02).
    group_sizes:
        Available tasks-per-HIT bundlings.
    deadline_hours:
        Posting window length (8am-10pm = 14 hours).
    task_seconds:
        Working time per photo pair.
    hourly_arrival_rates:
        Worker arrivals/hour reaching our listings, one value per hour of
        the window.
    hit_acceptance:
        First-acceptance probability of one arriving worker per grouping
        size (estimated from the fixed trials in the paper's pipeline).
    session:
        Worker behaviour model (stickiness + accuracy).
    planning_unit:
        Task granularity of the dynamic planner.
    decision_interval_hours:
        How often the dynamic strategy may re-choose the grouping size.
    """

    total_tasks: int = 5000
    hit_price_cents: float = 2.0
    group_sizes: tuple[int, ...] = (10, 20, 30, 40, 50)
    deadline_hours: float = 14.0
    task_seconds: float = 30.0
    hourly_arrival_rates: tuple[float, ...] = _DEFAULT_HOURLY_RATES
    hit_acceptance: Mapping[int, float] = dataclasses.field(
        default_factory=lambda: dict(_DEFAULT_HIT_ACCEPTANCE)
    )
    session: WorkerSessionModel = dataclasses.field(default_factory=WorkerSessionModel)
    planning_unit: int = 10
    decision_interval_hours: float = 1.0

    def __post_init__(self) -> None:
        require_positive("total_tasks", self.total_tasks)
        require_positive("hit_price_cents", self.hit_price_cents)
        require_positive("deadline_hours", self.deadline_hours)
        require_positive("task_seconds", self.task_seconds)
        require_positive("planning_unit", self.planning_unit)
        require_positive("decision_interval_hours", self.decision_interval_hours)
        if not self.group_sizes:
            raise ValueError("need at least one grouping size")
        for g in self.group_sizes:
            if g not in self.hit_acceptance:
                raise ValueError(f"no acceptance estimate for grouping size {g}")

    def per_task_price_cents(self, group_size: int) -> float:
        """Implicit per-task reward at a grouping size (Section 5.4)."""
        if group_size <= 0:
            raise ValueError(f"group_size must be positive, got {group_size}")
        return self.hit_price_cents / group_size

    def per_unit_price_cents(self, group_size: int) -> float:
        """Requester's marginal cost of one planning unit of tasks."""
        return self.planning_unit * self.hit_price_cents / group_size

    def arrival_rate_function(self, factor: float = 1.0) -> PiecewiseConstantRate:
        """The posting-window arrival rate, optionally scaled by ``factor``.

        ``factor`` models day-to-day marketplace drift between the pilot
        (fixed) trials the planner was trained on and the live (dynamic)
        days — Section 5.4.2's rates were averages over five earlier days.
        """
        values = np.asarray(self.hourly_arrival_rates, dtype=float) * factor
        width = self.deadline_hours / len(self.hourly_arrival_rates)
        return PiecewiseConstantRate.from_uniform_bins(width, values)

    def effective_unit_throughput(self, group_size: int) -> float:
        """Expected planning units completed per arriving worker.

        First acceptance times the expected session length (Fig. 15
        stickiness) times the tasks per HIT, rescaled to planning units —
        the quantity the fixed-trial pipeline estimates per grouping size.
        """
        p_hit = float(self.hit_acceptance[group_size])
        expected_hits = self.session.expected_hits_per_session(
            self.per_task_price_cents(group_size)
        )
        return p_hit * expected_hits * group_size / self.planning_unit

    def planner_price_grid(self) -> tuple[np.ndarray, dict[float, int]]:
        """Ascending per-unit price grid and its price -> grouping-size map."""
        pairs = sorted(
            (self.per_unit_price_cents(g), g) for g in self.group_sizes
        )
        grid = np.array([price for price, _ in pairs])
        mapping = {price: g for price, g in pairs}
        return grid, mapping


@dataclasses.dataclass(frozen=True)
class HitCompletion:
    """One completed HIT: when, at what grouping, by whom, how accurately."""

    time_hours: float
    group_size: int
    num_tasks: int
    worker_id: int
    num_correct: int

    @property
    def accuracy(self) -> float:
        return self.num_correct / self.num_tasks if self.num_tasks else 0.0


@dataclasses.dataclass(frozen=True)
class LiveTrialResult:
    """Everything one simulated trial observed.

    Attributes
    ----------
    completions:
        Completed HITs in time order.
    total_tasks:
        Batch size of the trial.
    cost_dollars:
        ``hits_completed * hit_price`` — what the requester paid.
    group_schedule:
        For dynamic trials, the grouping size chosen at each decision
        interval; a single-entry tuple for fixed trials.
    """

    completions: tuple[HitCompletion, ...]
    total_tasks: int
    cost_dollars: float
    group_schedule: tuple[int, ...]

    @property
    def hits_completed(self) -> int:
        return len(self.completions)

    @property
    def tasks_completed(self) -> int:
        return int(sum(c.num_tasks for c in self.completions))

    @property
    def tasks_remaining(self) -> int:
        return self.total_tasks - self.tasks_completed

    @property
    def finished(self) -> bool:
        return self.tasks_remaining == 0

    @property
    def completion_time_hours(self) -> float | None:
        """When the last task finished, or ``None`` if unfinished."""
        if not self.finished or not self.completions:
            return None
        return max(c.time_hours for c in self.completions)

    def hits_completed_by(self, times_hours: Sequence[float]) -> np.ndarray:
        """Cumulative HIT count at each query time (Fig. 12(a) series)."""
        completion_times = np.sort([c.time_hours for c in self.completions])
        return np.searchsorted(
            completion_times, np.asarray(times_hours, dtype=float), side="right"
        )

    def work_fraction_by(self, times_hours: Sequence[float]) -> np.ndarray:
        """Cumulative fraction of tasks done at each time (Fig. 12(b-c))."""
        order = np.argsort([c.time_hours for c in self.completions])
        times = np.array([self.completions[i].time_hours for i in order])
        tasks = np.array([self.completions[i].num_tasks for i in order], dtype=float)
        cumulative = np.concatenate([[0.0], np.cumsum(tasks)])
        idx = np.searchsorted(times, np.asarray(times_hours, dtype=float), side="right")
        return cumulative[idx] / self.total_tasks

    def accuracies(self, group_size: int | None = None) -> np.ndarray:
        """Per-HIT accuracy values, optionally for one grouping size."""
        values = [
            c.accuracy
            for c in self.completions
            if group_size is None or c.group_size == group_size
        ]
        return np.asarray(values, dtype=float)

    def mean_accuracy(self, group_size: int | None = None) -> float:
        """Task-weighted mean accuracy (the Tables 3-4 statistic)."""
        correct = sum(
            c.num_correct
            for c in self.completions
            if group_size is None or c.group_size == group_size
        )
        attempted = sum(
            c.num_tasks
            for c in self.completions
            if group_size is None or c.group_size == group_size
        )
        return correct / attempted if attempted else float("nan")

    def hits_per_worker(self) -> np.ndarray:
        """HIT counts per distinct worker (the Fig. 15 statistic)."""
        counts: dict[int, int] = {}
        for c in self.completions:
            counts[c.worker_id] = counts.get(c.worker_id, 0) + 1
        return np.asarray(sorted(counts.values()), dtype=float)


def _simulate_trial(
    config: LiveExperimentConfig,
    group_at: Callable[[float, int], int],
    rng: np.random.Generator,
    rate_factor: float,
    schedule: tuple[int, ...],
) -> LiveTrialResult:
    """Shared agent-level simulation loop.

    ``group_at(time_hours, tasks_in_pool)`` returns the grouping size in
    force at a given time; fixed trials return a constant, dynamic trials
    consult the planner.
    """
    rate = config.arrival_rate_function(rate_factor)
    arrivals = NHPP(rate).sample_arrivals(0.0, config.deadline_hours, rng)
    pool = config.total_tasks
    completions: list[HitCompletion] = []
    workers = WorkerPool(config.session, rng)
    task_hours = config.task_seconds / 3600.0
    for arrival_time in arrivals:
        if pool <= 0:
            break
        group = group_at(float(arrival_time), pool)
        if rng.random() >= float(config.hit_acceptance[group]):
            continue
        worker = workers.arrive(float(arrival_time))
        clock = float(arrival_time)
        while pool > 0:
            group = group_at(clock, pool)
            hit_size = min(group, pool)
            finish = clock + hit_size * task_hours
            if finish > config.deadline_hours:
                break  # would not finish in time; worker moves on
            pool -= hit_size
            correct = worker.answer_correctly(hit_size, rng)
            completions.append(
                HitCompletion(
                    time_hours=finish,
                    group_size=group,
                    num_tasks=hit_size,
                    worker_id=worker.worker_id,
                    num_correct=correct,
                )
            )
            clock = finish
            q = config.session.continue_probability(
                config.per_task_price_cents(group)
            )
            if rng.random() >= q:
                break
    cost = len(completions) * config.hit_price_cents / 100.0
    return LiveTrialResult(
        completions=tuple(completions),
        total_tasks=config.total_tasks,
        cost_dollars=cost,
        group_schedule=schedule,
    )


def run_fixed_trial(
    config: LiveExperimentConfig,
    group_size: int,
    rng: np.random.Generator,
    rate_factor: float = 1.0,
) -> LiveTrialResult:
    """Simulate one Section 5.4.1 fixed-grouping trial."""
    if group_size not in config.group_sizes:
        raise ValueError(f"grouping size {group_size} not in {config.group_sizes}")
    return _simulate_trial(
        config,
        group_at=lambda _time, _pool: group_size,
        rng=rng,
        rate_factor=rate_factor,
        schedule=(group_size,),
    )


def estimate_unit_throughput(
    trials: Mapping[int, LiveTrialResult],
    config: LiveExperimentConfig,
    censor_tail_hours: float = 2.0,
) -> dict[int, float]:
    """Estimate per-unit throughput per grouping size from pilot trials.

    This is the Section 5.4.2 pipeline: "the corresponding HIT acceptance
    rates are estimated from the fixed pricing experiment".  The requester
    observes completions over time and knows the marketplace arrival
    profile; the effective units-per-arrival rate for grouping ``g`` is

        tasks completed / arrivals during the trial's active window

    rescaled to planning units.  Trials that finish early are censored at
    their completion time; trials that run out the clock drop the last
    ``censor_tail_hours`` (work started near the deadline cannot finish, so
    the raw tail underestimates the steady-state rate).

    Returns
    -------
    dict
        grouping size -> units completed per marketplace arrival — the
        quantity :func:`build_planner` consumes as ``estimates``.
    """
    if censor_tail_hours < 0:
        raise ValueError("censor_tail_hours must be non-negative")
    rate = config.arrival_rate_function()
    estimates: dict[int, float] = {}
    for g, trial in trials.items():
        done = trial.completion_time_hours
        if done is not None:
            window_end = done
        else:
            window_end = max(
                config.deadline_hours - censor_tail_hours,
                config.deadline_hours / 2.0,
            )
        tasks_by_end = float(trial.work_fraction_by([window_end])[0]) * trial.total_tasks
        arrivals = rate.integral(0.0, window_end)
        if arrivals <= 0:
            raise ValueError(f"no arrivals in the observation window for size {g}")
        estimates[g] = tasks_by_end / arrivals / config.planning_unit
    return estimates


def build_planner(
    config: LiveExperimentConfig,
    penalty_per_unit: float = 500.0,
    truncation_eps: float | None = 1e-9,
    final_interval_discount: float = 0.5,
    estimates: Mapping[int, float] | None = None,
) -> tuple[DeadlinePolicy, dict[float, int]]:
    """Train the Section 5.4.2 dynamic grouping policy.

    Plans over units of ``config.planning_unit`` tasks with the per-unit
    price grid implied by the grouping sizes and per-unit throughputs read
    off the fixed-trial estimates.  Returns the solved policy plus the
    per-unit-price -> grouping-size decoder.

    ``estimates`` (grouping size -> units per arrival, e.g. from
    :func:`estimate_unit_throughput` on pilot trials) overrides the
    config's analytic throughputs — the honest pilot -> train -> deploy
    loop of Section 5.4.2.

    ``final_interval_discount`` shrinks the last interval's expected
    arrivals in the planner's model: HITs have a working time the MDP does
    not represent, so arrivals just before the deadline cannot finish —
    discounting them makes the policy escalate one interval earlier instead
    of discovering the dead zone live.
    """
    if not 0.0 <= final_interval_discount <= 1.0:
        raise ValueError("final_interval_discount must lie in [0, 1]")
    if estimates is not None:
        missing = [g for g in config.group_sizes if g not in estimates]
        if missing:
            raise ValueError(f"estimates missing grouping sizes {missing}")
    grid, price_to_group = config.planner_price_grid()
    throughput = {
        config.per_unit_price_cents(g): (
            float(estimates[g])
            if estimates is not None
            else config.effective_unit_throughput(g)
        )
        for g in config.group_sizes
    }
    acceptance = EmpiricalAcceptance(
        {price: throughput[price] for price in grid}
    )
    num_units = math.ceil(config.total_tasks / config.planning_unit)
    num_intervals = int(
        round(config.deadline_hours / config.decision_interval_hours)
    )
    means = interval_means(
        config.arrival_rate_function(),
        config.deadline_hours,
        num_intervals,
    )
    means[-1] *= 1.0 - final_interval_discount
    problem = DeadlineProblem(
        num_tasks=num_units,
        arrival_means=means,
        acceptance=acceptance,
        price_grid=grid,
        penalty=PenaltyScheme(per_task=penalty_per_unit),
        truncation_eps=truncation_eps,
    )
    return solve_deadline(problem), price_to_group


def run_dynamic_trial(
    config: LiveExperimentConfig,
    rng: np.random.Generator,
    planner: tuple[DeadlinePolicy, dict[float, int]] | None = None,
    rate_factor: float = 1.0,
) -> LiveTrialResult:
    """Simulate one Section 5.4.2 dynamic-grouping trial.

    The grouping size is re-chosen at each decision interval from the
    planner trained on the fixed-trial estimates; ``rate_factor`` scales
    the live day's true arrival rate relative to those estimates.
    """
    policy, price_to_group = planner if planner is not None else build_planner(config)
    problem = policy.problem
    num_intervals = problem.num_intervals
    chosen: dict[int, int] = {}

    def group_at(time_hours: float, pool: int) -> int:
        t = min(int(time_hours / config.decision_interval_hours), num_intervals - 1)
        units = max(1, min(math.ceil(pool / config.planning_unit), problem.num_tasks))
        price = policy.price(units, t)
        group = price_to_group[float(price)]
        chosen.setdefault(t, group)  # first query in the interval = posted size
        return group

    result = _simulate_trial(
        config,
        group_at=group_at,
        rng=rng,
        rate_factor=rate_factor,
        schedule=(),
    )
    schedule = tuple(chosen[t] for t in sorted(chosen))
    return dataclasses.replace(result, group_schedule=schedule)
