"""Runtime pricing-policy interface for the simulator.

A runtime policy answers one question each decision interval: *with ``n``
tasks still open at interval ``t``, what reward do we post?*  The solved
:class:`~repro.core.deadline.policy.DeadlinePolicy` tables, the fixed-price
baseline, and the budget solutions all adapt to this interface, so the
simulator treats them uniformly.
"""

from __future__ import annotations

import abc

from repro.core.budget.semi_static import SemiStaticStrategy
from repro.core.deadline.policy import DeadlinePolicy

__all__ = [
    "PricingRuntime",
    "FixedPriceRuntime",
    "TablePolicyRuntime",
    "SemiStaticRuntime",
]


class PricingRuntime(abc.ABC):
    """Callable pricing rule consulted once per decision interval."""

    @abc.abstractmethod
    def price(self, remaining: int, interval: int) -> float:
        """Reward to post with ``remaining`` open tasks at ``interval``."""


class FixedPriceRuntime(PricingRuntime):
    """The Faridani baseline at runtime: one price, never changed."""

    def __init__(self, fixed_price: float):
        if fixed_price < 0:
            raise ValueError(f"price must be non-negative, got {fixed_price}")
        self.fixed_price = float(fixed_price)

    def price(self, remaining: int, interval: int) -> float:
        return self.fixed_price

    def __repr__(self) -> str:
        return f"FixedPriceRuntime({self.fixed_price})"


class TablePolicyRuntime(PricingRuntime):
    """Adapter exposing a solved ``Price(n, t)`` table to the simulator.

    When the realized horizon outruns the table (the simulator is asked for
    an interval beyond ``N_T - 1``, which cannot happen in a deadline run
    but can in open-ended what-if runs), the last column is reused.
    """

    def __init__(self, policy: DeadlinePolicy):
        self.policy = policy

    def price(self, remaining: int, interval: int) -> float:
        n_intervals = self.policy.problem.num_intervals
        t = min(interval, n_intervals - 1)
        n = min(max(remaining, 1), self.policy.problem.num_tasks)
        return self.policy.price(n, t)

    def __repr__(self) -> str:
        return f"TablePolicyRuntime({self.policy.solver})"


class SemiStaticRuntime(PricingRuntime):
    """A semi-static / static price sequence at runtime (Section 4).

    The posted price depends only on how many tasks have completed: with
    ``N`` tasks and ``remaining`` open, the sequence position is
    ``N - remaining``.
    """

    def __init__(self, strategy: SemiStaticStrategy):
        self.strategy = strategy

    def price(self, remaining: int, interval: int) -> float:
        n = self.strategy.num_tasks
        if remaining <= 0:
            return self.strategy.prices[-1]
        completed = min(max(n - remaining, 0), n - 1)
        return self.strategy.price_at(completed)

    def __repr__(self) -> str:
        return f"SemiStaticRuntime({self.strategy.num_tasks} prices)"
