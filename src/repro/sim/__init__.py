"""Monte-Carlo simulation substrate.

* :mod:`repro.sim.policies` — runtime pricing-policy interface shared by
  the simulator and the solvers' outputs.
* :mod:`repro.sim.simulator` — interval-level marketplace simulation of a
  deadline run: NHPP arrivals, Bernoulli acceptance, policy consultation,
  cost accounting.
* :mod:`repro.sim.stream` — the marketplace-wide worker-arrival stream the
  simulator (and the multi-campaign engine) draw from.
* :mod:`repro.sim.runner` — replication management with seeds and summary
  statistics.
* :mod:`repro.sim.workers` — worker-session and answer-accuracy models for
  the live-experiment simulator (Fig. 15 stickiness, Tables 3-4 accuracy).
* :mod:`repro.sim.live` — the Section 5.4 Mechanical-Turk deployment
  simulator: HIT groups, grouping-size pricing, fixed and dynamic runs.
"""

from repro.sim.policies import (
    FixedPriceRuntime,
    PricingRuntime,
    SemiStaticRuntime,
    TablePolicyRuntime,
)
from repro.sim.runner import ReplicationSummary, run_replications, summarize
from repro.sim.simulator import DeadlineSimulation, SimulationResult
from repro.sim.stream import SharedArrivalStream
from repro.sim.workers import WorkerPool, WorkerSessionModel
from repro.sim.live import (
    LiveExperimentConfig,
    LiveTrialResult,
    run_dynamic_trial,
    run_fixed_trial,
)

__all__ = [
    "PricingRuntime",
    "FixedPriceRuntime",
    "TablePolicyRuntime",
    "SemiStaticRuntime",
    "DeadlineSimulation",
    "SimulationResult",
    "SharedArrivalStream",
    "run_replications",
    "summarize",
    "ReplicationSummary",
    "WorkerSessionModel",
    "WorkerPool",
    "LiveExperimentConfig",
    "LiveTrialResult",
    "run_fixed_trial",
    "run_dynamic_trial",
]
