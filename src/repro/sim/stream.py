"""One marketplace-wide worker-arrival stream, sampled interval by interval.

The paper's simulations give every batch its own Poisson draw of the
marketplace; a *multi-campaign* marketplace (``repro.engine``) instead has
one NHPP worker stream that all live campaigns compete over.
:class:`SharedArrivalStream` factors the interval-level sampling step out of
:class:`~repro.sim.simulator.DeadlineSimulation` so both the single-batch
simulator and the engine draw arrivals from the same mechanics: interval
``t`` delivers ``Pois(lambda_t)`` workers (Eq. 4), where ``lambda_t`` comes
from integrating a rate function over the interval.
"""

from __future__ import annotations

import numpy as np

from repro.market.nhpp import interval_means
from repro.market.rates import RateFunction

__all__ = ["SharedArrivalStream"]


class SharedArrivalStream:
    """Interval-discretized NHPP worker arrivals for one marketplace.

    Parameters
    ----------
    arrival_means:
        ``lambda_t`` for every interval of the stream's horizon: expected
        marketplace-wide worker arrivals per interval (Eq. 4).
    """

    def __init__(self, arrival_means: np.ndarray):
        means = np.asarray(arrival_means, dtype=float)
        if means.ndim != 1 or means.size == 0:
            raise ValueError("arrival_means must be a non-empty 1-D array")
        if np.any(means < 0):
            raise ValueError("arrival_means must be non-negative")
        self.arrival_means = means

    @classmethod
    def from_rate_function(
        cls,
        rate: RateFunction,
        horizon_hours: float,
        num_intervals: int,
        start_hour: float = 0.0,
    ) -> "SharedArrivalStream":
        """Build a stream by integrating ``rate`` over a discretized horizon."""
        return cls(interval_means(rate, horizon_hours, num_intervals, start=start_hour))

    @property
    def num_intervals(self) -> int:
        """Number of intervals the stream covers."""
        return int(self.arrival_means.size)

    @property
    def total_mean(self) -> float:
        """Expected arrivals over the whole horizon, ``sum_t lambda_t``."""
        return float(self.arrival_means.sum())

    def mean(self, interval: int) -> float:
        """Expected arrivals ``lambda_t`` in one interval."""
        if not 0 <= interval < self.num_intervals:
            raise ValueError(
                f"interval must lie in 0..{self.num_intervals - 1}, got {interval}"
            )
        return float(self.arrival_means[interval])

    def sample(
        self, interval: int, rng: np.random.Generator, scale: float = 1.0
    ) -> int:
        """Draw the realized worker-arrival count for one interval.

        ``scale`` modulates the interval's rate without touching the
        stream itself — scaling a Poisson rate yields a Poisson process at
        the scaled rate, which is how the engine applies scenario-driven
        demand shocks (:mod:`repro.scenario`) to one tick at a time while
        campaign *planning* keeps seeing the unmodulated forecast.
        """
        if scale < 0:
            raise ValueError(f"scale must be non-negative, got {scale}")
        return int(rng.poisson(self.mean(interval) * scale))

    def scaled(self, factor: float) -> "SharedArrivalStream":
        """A copy with every interval mean multiplied by ``factor``.

        Models marketplace-level surges and droughts (the Fig. 10 holiday)
        without touching what any campaign *planned* against.
        """
        if factor < 0:
            raise ValueError(f"factor must be non-negative, got {factor}")
        return SharedArrivalStream(self.arrival_means * factor)

    def split(self, num_shards: int) -> list["SharedArrivalStream"]:
        """Split the stream into ``num_shards`` independent thinned streams.

        Uniformly thinning a Poisson process into ``num_shards`` parts
        yields *independent* Poisson processes, each with mean
        ``lambda_t / num_shards`` per interval (the classical
        Poisson-splitting property), and their superposition is
        distributed exactly like the original stream.  This is the
        stream-level form of the splitting primitive; note that
        :class:`~repro.engine.sharding.ShardedEngine` does **not** call
        it — it applies the same property one level finer, thinning by
        the router's per-campaign choice fractions
        (:meth:`~repro.engine.routing.ArrivalRouter.fractions`) so each
        campaign draws its own acceptances directly.
        """
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        thinned = self.arrival_means / num_shards
        return [SharedArrivalStream(thinned.copy()) for _ in range(num_shards)]

    def __repr__(self) -> str:
        return (
            f"SharedArrivalStream({self.num_intervals} intervals, "
            f"E[total]={self.total_mean:,.0f})"
        )
