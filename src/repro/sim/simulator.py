"""Interval-level Monte-Carlo simulation of a deadline pricing run.

One replication walks the discretized horizon exactly as the MDP models it
(Section 3.1): at the start of interval ``t`` the policy posts a reward for
the ``n`` open tasks; the marketplace delivers ``Pois(lambda_t)`` worker
arrivals, each of which independently accepts at probability ``p(c)``
(sampled as a Binomial over the realized arrival count — the thinned-NHPP
composition of Section 2.1, sampled compositionally rather than collapsed,
so arrival randomness and choice randomness can be studied separately);
completions are capped at ``n`` and each pays the posted reward.

For completion-*time* questions at sub-interval resolution (the budget
experiments), see :func:`repro.core.budget.latency.completion_time_distribution`,
which samples actual arrival times.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.market.acceptance import AcceptanceModel
from repro.sim.policies import PricingRuntime
from repro.sim.stream import SharedArrivalStream

__all__ = ["SimulationResult", "DeadlineSimulation"]


@dataclasses.dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulated deadline run.

    Attributes
    ----------
    completed:
        Tasks finished before the deadline.
    remaining:
        Tasks still open at the deadline.
    total_cost:
        Sum of rewards paid.
    completion_interval:
        Index of the interval during which the last task finished, or
        ``None`` if the batch did not finish.
    completions_per_interval:
        Completions in each interval.
    prices_per_interval:
        Reward posted in each interval (the last posted price is carried
        for intervals after completion, for plotting continuity).
    arrivals_per_interval:
        Realized marketplace arrivals in each interval.
    """

    completed: int
    remaining: int
    total_cost: float
    completion_interval: int | None
    completions_per_interval: np.ndarray
    prices_per_interval: np.ndarray
    arrivals_per_interval: np.ndarray

    @property
    def finished(self) -> bool:
        """True when every task completed before the deadline."""
        return self.remaining == 0

    @property
    def average_reward(self) -> float:
        """Cost per task over the whole batch (paper's Fig. 7(a) metric)."""
        batch = self.completed + self.remaining
        return self.total_cost / batch if batch else 0.0


class DeadlineSimulation:
    """Simulator for a batch of tasks priced per interval until a deadline.

    Parameters
    ----------
    num_tasks:
        Batch size ``N``.
    arrival_means:
        Expected marketplace arrivals per interval (Eq. 4) — the *true*
        dynamics, which may differ from what the policy was trained on.
    acceptance:
        The *true* ``p(c)`` model.
    """

    def __init__(
        self,
        num_tasks: int,
        arrival_means: np.ndarray,
        acceptance: AcceptanceModel,
    ):
        if num_tasks <= 0:
            raise ValueError(f"num_tasks must be positive, got {num_tasks}")
        self.stream = SharedArrivalStream(arrival_means)
        self.num_tasks = num_tasks
        self.acceptance = acceptance

    @property
    def arrival_means(self) -> np.ndarray:
        """Expected marketplace arrivals per interval (the stream's means)."""
        return self.stream.arrival_means

    @property
    def num_intervals(self) -> int:
        return self.stream.num_intervals

    def run(self, policy: PricingRuntime, rng: np.random.Generator) -> SimulationResult:
        """Simulate one replication under ``policy``."""
        n = self.num_tasks
        n_intervals = self.num_intervals
        completions = np.zeros(n_intervals, dtype=int)
        prices = np.zeros(n_intervals)
        arrivals = np.zeros(n_intervals, dtype=int)
        total_cost = 0.0
        completion_interval: int | None = None
        last_price = 0.0
        observe = getattr(policy, "observe", None)
        for t in range(n_intervals):
            if n > 0:
                last_price = float(policy.price(n, t))
            prices[t] = last_price
            arrived = self.stream.sample(t, rng)
            arrivals[t] = arrived
            if observe is not None:
                # Adaptive policies see realized arrivals *after* pricing
                # the interval (they cannot peek at the future).
                observe(t, arrived)
            if n == 0 or arrived == 0:
                continue
            p = self.acceptance.probability(last_price)
            accepted = int(rng.binomial(arrived, p)) if p > 0 else 0
            done = min(accepted, n)
            completions[t] = done
            total_cost += done * last_price
            n -= done
            if n == 0 and completion_interval is None:
                completion_interval = t
        return SimulationResult(
            completed=self.num_tasks - n,
            remaining=n,
            total_cost=total_cost,
            completion_interval=completion_interval,
            completions_per_interval=completions,
            prices_per_interval=prices,
            arrivals_per_interval=arrivals,
        )
