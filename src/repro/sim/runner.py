"""Replication management: seeds, fan-out, summary statistics.

Every Monte-Carlo number in the experiment suite flows through
:func:`run_replications`, which derives independent child generators from a
single seed (via :meth:`numpy.random.Generator.spawn`-style seeding through
``SeedSequence``), so any reported statistic is reproducible from one
integer.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Sequence, TypeVar

import numpy as np

T = TypeVar("T")

__all__ = ["run_replications", "summarize", "ReplicationSummary"]


def run_replications(
    simulate: Callable[[np.random.Generator], T],
    num_replications: int,
    seed: int,
) -> list[T]:
    """Run ``simulate`` under ``num_replications`` independent generators."""
    if num_replications <= 0:
        raise ValueError(f"num_replications must be positive, got {num_replications}")
    seeds = np.random.SeedSequence(seed).spawn(num_replications)
    return [simulate(np.random.default_rng(s)) for s in seeds]


@dataclasses.dataclass(frozen=True)
class ReplicationSummary:
    """Summary statistics of a scalar metric across replications.

    Attributes
    ----------
    mean, std:
        Sample mean and standard deviation (ddof=1 when possible).
    minimum, maximum:
        Range of the metric.
    q05, q50, q95:
        5th/50th/95th percentiles.
    count:
        Number of replications summarized.
    stderr:
        Standard error of the mean.
    """

    mean: float
    std: float
    minimum: float
    maximum: float
    q05: float
    q50: float
    q95: float
    count: int

    @property
    def stderr(self) -> float:
        return self.std / np.sqrt(self.count) if self.count else float("nan")

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation CI for the mean."""
        half = z * self.stderr
        return (self.mean - half, self.mean + half)


def summarize(values: Sequence[float]) -> ReplicationSummary:
    """Summarize a sequence of scalar replication outcomes."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sequence")
    q05, q50, q95 = np.percentile(arr, [5, 50, 95])
    return ReplicationSummary(
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        q05=float(q05),
        q50=float(q50),
        q95=float(q95),
        count=int(arr.size),
    )
