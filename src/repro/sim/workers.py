"""Worker-session and accuracy models for the live-experiment simulator.

The Section 5.4 deployment surfaced two behaviours the plain NHPP model does
not capture, both of which this module reproduces:

* **Session stickiness** (Fig. 15) — having completed a HIT, a worker
  continues to the next HIT of the same kind with a probability that
  *increases with the per-task price*: at low prices workers leave after
  one or two HITs, at higher prices some keep going.
* **Price-insensitive accuracy** (Tables 3-4, Figs. 13-14) — answer
  accuracy is a per-worker trait (drawn once per worker from a Beta
  distribution with mean ≈ 0.9) and does not vary with the price, matching
  the paper's finding that "pricing mainly affects whether workers choose
  to work on the HIT", not the quality of what they submit.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.util.validation import require_in_range, require_positive

__all__ = ["WorkerSessionModel", "Worker", "WorkerPool"]


@dataclasses.dataclass(frozen=True)
class WorkerSessionModel:
    """Behavioural parameters of the simulated worker population.

    Attributes
    ----------
    accuracy_mean:
        Mean of the per-worker accuracy Beta distribution.
    accuracy_concentration:
        Beta concentration (``alpha + beta``); higher = tighter around the
        mean.
    continue_base:
        Continuation probability at a per-task price of zero.
    continue_slope:
        Increase in continuation probability per cent of per-task price
        (the Fig. 15 stickiness gradient).
    continue_cap:
        Hard ceiling on the continuation probability.
    """

    accuracy_mean: float = 0.905
    accuracy_concentration: float = 80.0
    continue_base: float = 0.30
    continue_slope: float = 1.6
    continue_cap: float = 0.85

    def __post_init__(self) -> None:
        require_in_range("accuracy_mean", self.accuracy_mean, 0.0, 1.0)
        require_positive("accuracy_concentration", self.accuracy_concentration)
        require_in_range("continue_base", self.continue_base, 0.0, 1.0)
        require_in_range("continue_cap", self.continue_cap, 0.0, 1.0)
        if self.continue_slope < 0:
            raise ValueError("continue_slope must be non-negative")

    def continue_probability(self, per_task_price_cents: float) -> float:
        """Chance a worker starts another HIT after finishing one."""
        if per_task_price_cents < 0:
            raise ValueError("per-task price must be non-negative")
        return float(
            min(
                self.continue_cap,
                self.continue_base + self.continue_slope * per_task_price_cents,
            )
        )

    def expected_hits_per_session(self, per_task_price_cents: float) -> float:
        """Expected HITs per accepting worker: geometric mean ``1/(1-q)``."""
        q = self.continue_probability(per_task_price_cents)
        return 1.0 / (1.0 - q)

    def sample_accuracy(self, rng: np.random.Generator) -> float:
        """Draw one worker's answer accuracy from the Beta distribution."""
        a = self.accuracy_mean * self.accuracy_concentration
        b = (1.0 - self.accuracy_mean) * self.accuracy_concentration
        return float(rng.beta(a, b))


@dataclasses.dataclass
class Worker:
    """One simulated worker: identity, arrival time, and accuracy trait."""

    worker_id: int
    arrival_time: float
    accuracy: float

    def answer_correctly(self, num_tasks: int, rng: np.random.Generator) -> int:
        """Number of correct answers among ``num_tasks`` attempted tasks."""
        if num_tasks < 0:
            raise ValueError("num_tasks must be non-negative")
        if num_tasks == 0:
            return 0
        return int(rng.binomial(num_tasks, self.accuracy))


class WorkerPool:
    """Factory stamping out workers with sampled accuracy traits."""

    def __init__(self, model: WorkerSessionModel, rng: np.random.Generator):
        self.model = model
        self._rng = rng
        self._next_id = 0

    def arrive(self, arrival_time: float) -> Worker:
        """Create the next arriving worker."""
        worker = Worker(
            worker_id=self._next_id,
            arrival_time=arrival_time,
            accuracy=self.model.sample_accuracy(self._rng),
        )
        self._next_id += 1
        return worker
