"""Event-log kill -9 recovery drill: SIGKILL a served run, recover, compare.

This is the ``make obs-smoke`` target (wired into CI): it spawns the
drill child (:mod:`repro.obs.drill`) — a served run with a durable event
log, checkpointing every few ticks — waits for a checkpoint marker on
its stdout, then sends it an honest ``SIGKILL`` (no atexit, no cleanup,
no warning).  Recovery then has to stand on the surviving artifacts
alone:

* :func:`repro.obs.recovery.recover_serve_run` resumes the last bundle
  and replays the post-checkpoint request tail out of the event log;
* the baseline is a **fresh** gateway replaying the full
  log-reconstructed trace from scratch (no checkpoint involved).

The two deterministic telemetry dicts must match **bit-for-bit** —
requests that never reached the durable log are absent from both sides
by construction, which is exactly the durability contract
(docs/observability.md).  Exits non-zero on any divergence.  Usage::

    python scripts/obs_recovery_smoke.py
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
REPO_SRC = REPO_ROOT / "src"
if str(REPO_SRC) not in sys.path:  # allow running without an install step
    sys.path.insert(0, str(REPO_SRC))

from repro.obs.drill import BUNDLE_NAME, LOG_NAME, scratch_baseline  # noqa: E402
from repro.obs.eventlog import EventLog  # noqa: E402
from repro.obs.recovery import recover_serve_run  # noqa: E402

#: Kill after this many CHECKPOINT markers — late enough that the bundle
#: is mid-run, early enough that requests are still flowing after it.
KILL_AFTER_MARKERS = 2

#: Per-tick child slowdown; widens the window between the marker and the
#: kill so the log usually holds a post-checkpoint tail.
TICK_SLEEP = 0.05


def _spawn_child(workdir: Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.obs.drill", str(workdir),
            "--tick-sleep", str(TICK_SLEEP),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )


def main() -> int:
    """Run the drill once; return a process exit code."""
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        child = _spawn_child(workdir)
        markers = 0
        finished = False
        assert child.stdout is not None
        for line in child.stdout:
            if line.startswith("CHECKPOINT"):
                markers += 1
                if markers >= KILL_AFTER_MARKERS:
                    break
            if line.startswith("DONE"):
                finished = True
                break
        if finished or child.poll() is not None:
            print("obs smoke FAILED: child finished before the kill landed "
                  "(drill too short for this machine?)")
            child.wait()
            return 1
        # A breath after the marker so the kill lands mid-tick, between
        # checkpoints — the interesting place.
        time.sleep(3 * TICK_SLEEP)
        child.send_signal(signal.SIGKILL)
        child.wait()

        bundle = workdir / BUNDLE_NAME
        log_path = workdir / LOG_NAME
        if not bundle.exists() or not log_path.exists():
            print("obs smoke FAILED: kill landed before any bundle/log "
                  "existed despite the checkpoint marker")
            return 1
        reader = EventLog.read(log_path)
        total_events = reader.last_seq
        logged_requests = reader.count("request")

        recovered = recover_serve_run(bundle, log_path)
        recovered_telemetry = recovered.telemetry.to_dict()
        recovered.close()
        baseline = scratch_baseline(log_path)

        if recovered_telemetry == baseline:
            ticks = len(recovered_telemetry["serve"]["interval"])
            print(f"ok    killed after {markers} checkpoints; log held "
                  f"{total_events} events / {logged_requests} requests; "
                  f"recovered run ({ticks} ticks) is bit-identical to the "
                  "from-scratch replay")
            print("\nobs recovery smoke passed: checkpoint + event log "
                  "reproduced the run bit-for-bit")
            return 0
        print("FAIL  recovered telemetry diverged from the from-scratch "
              "replay of the logged trace")
        for key in ("serve", "responses", "reads_served", "engine"):
            same = recovered_telemetry.get(key) == baseline.get(key)
            print(f"      {key:<12} {'match' if same else 'DIVERGED'}")
        print("\nobs recovery smoke FAILED")
        return 1


if __name__ == "__main__":
    sys.exit(main())
