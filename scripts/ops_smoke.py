"""Live ops-plane drill: scrape a running loadtest through ``--ops-port``.

This is the ``make ops-smoke`` target (wired into CI): it launches a real
``repro engine loadtest --ops-port 0`` child — open-mode, multi-tenant,
with a durable event log — parses the bound address off its stdout, and
scrapes every ops endpoint **while the run is live**:

* ``/metrics`` must be well-formed Prometheus text exposition (every
  sample line parses, every family has HELP + TYPE) and must carry the
  serving counters, the per-tick phase timers, and — once ticks have
  drained — the per-tenant ``serve_tenant_*_total`` series;
* ``/healthz`` must answer alive with the clock the run stands at;
* ``/readyz`` must report ``ready: true`` with every check green;
* ``/tenants`` must name the configured tenants once traffic flowed;
* ``/slo`` must report both-window burn rates in the live shape.

The child must then exit 0 on its own — proving the scrapes never
perturbed the run.  Exits non-zero on any failed assertion.  Usage::

    python scripts/ops_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
REPO_SRC = REPO_ROOT / "src"

#: Loadtest shape: open mode so the trace is deterministic, a rate high
#: enough that the replay stays live for a while after the server binds.
LOADTEST_ARGS = [
    "engine", "loadtest", "--mode", "open", "--rate", "48",
    "--horizon-hours", "48", "--tenants", "acme,globex,initech",
    "--ops-port", "0",
]

_ADDRESS = re.compile(r"ops server\s*:\s*http://([\d.]+):(\d+)")

#: One Prometheus text-format sample: name{labels} value — labels optional.
_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$"
)


def _fail(message: str) -> None:
    print(f"FAIL: {message}")
    sys.exit(1)


def _get(base: str, path: str, retries: int = 20):
    """GET one endpoint, returning ``(status, body)`` (retry on refusal)."""
    last: Exception | None = None
    for _ in range(retries):
        try:
            with urllib.request.urlopen(base + path, timeout=5) as response:
                return response.status, response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:  # non-2xx still has a body
            return exc.code, exc.read().decode("utf-8")
        except (urllib.error.URLError, ConnectionError, OSError) as exc:
            last = exc
            time.sleep(0.05)
    raise AssertionError(f"GET {path} never answered: {last}")


def _check_prometheus(body: str) -> dict[str, str]:
    """Validate the exposition format; returns family -> TYPE."""
    types: dict[str, str] = {}
    helps: set[str] = set()
    for line in body.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            helps.add(line.split()[2])
        elif line.startswith("# TYPE "):
            parts = line.split()
            types[parts[2]] = parts[3]
        elif line.startswith("#"):
            _fail(f"unknown comment line in /metrics: {line!r}")
        elif not _SAMPLE.match(line):
            _fail(f"malformed sample line in /metrics: {line!r}")
    for family in types:
        if family not in helps:
            _fail(f"/metrics family {family} has TYPE but no HELP")
    return types


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    with tempfile.TemporaryDirectory(prefix="repro-ops-smoke-") as tmp:
        log_path = Path(tmp) / "ops-smoke.sqlite"
        child = subprocess.Popen(
            [
                sys.executable, "-c",
                "from repro.cli import main; raise SystemExit(main())",
            ] + LOADTEST_ARGS + ["--event-log", str(log_path)],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=str(REPO_ROOT),
        )
        try:
            base = None
            assert child.stdout is not None
            head = []
            for line in child.stdout:
                head.append(line)
                match = _ADDRESS.search(line)
                if match:
                    base = f"http://{match.group(1)}:{match.group(2)}"
                    break
            if base is None:
                _fail("child never printed the ops-server address:\n"
                      + "".join(head))
            print(f"scraping      : {base} (child pid {child.pid})")

            status, body = _get(base, "/healthz")
            health = json.loads(body)
            if status != 200 or health["status"] != "alive":
                _fail(f"/healthz answered {status}: {body}")
            if not health["started"]:
                _fail(f"/healthz reports an unstarted gateway: {body}")
            print(f"healthz       : alive at clock {health['clock']}")

            status, body = _get(base, "/readyz")
            ready = json.loads(body)
            if status != 200 or ready["ready"] is not True:
                _fail(f"/readyz not ready ({status}): {body}")
            bad = [k for k, check in ready["checks"].items() if not check["ok"]]
            if bad:
                _fail(f"/readyz checks failed: {bad}")
            print(f"readyz        : ready, checks {sorted(ready['checks'])}")

            # Per-tenant series appear once a tick boundary drained tagged
            # traffic — poll /metrics while the run is still live.
            deadline = time.monotonic() + 30.0
            types: dict[str, str] = {}
            while True:
                status, body = _get(base, "/metrics")
                if status != 200:
                    _fail(f"/metrics answered {status}")
                types = _check_prometheus(body)
                if "serve_tenant_admitted_total" in types:
                    break
                if child.poll() is not None or time.monotonic() > deadline:
                    _fail("per-tenant series never appeared in /metrics")
                time.sleep(0.05)
            for family in (
                "serve_requests_total",
                "serve_responses_total",
                "serve_queue_depth",
                "engine_tick_phase_seconds",
                "engine_clock_interval",
                "eventlog_buffered_events",
            ):
                if family not in types:
                    _fail(f"/metrics is missing the {family} family")
            print(f"metrics       : {len(types)} well-formed families, "
                  "per-tenant series present")

            status, body = _get(base, "/tenants")
            tenants = json.loads(body)["tenants"]
            missing = {"acme", "globex", "initech"} - set(tenants)
            if status != 200 or missing:
                _fail(f"/tenants missing {sorted(missing)}: {body[:300]}")
            print(f"tenants       : {sorted(tenants)}")

            status, body = _get(base, "/slo")
            slo = json.loads(body)
            if status != 200:
                _fail(f"/slo answered {status}")
            for objective in ("availability", "latency"):
                windows = slo.get(objective, {}).get("windows")
                if not windows:
                    _fail(f"/slo carries no {objective} windows: {body[:300]}")
                for row in windows.values():
                    if "burn_rate" not in row or "total" not in row:
                        _fail(f"/slo window row malformed: {row}")
            print("slo           : availability + latency burn rates present")

            tail = child.stdout.read()
            rc = child.wait(timeout=120)
            if rc != 0:
                _fail(f"loadtest child exited {rc}:\n{tail}")
            print("child         : loadtest finished clean (exit 0)")
        finally:
            if child.poll() is None:
                child.kill()
                child.wait()
    print("OPS SMOKE PASSED")
    return 0


if __name__ == "__main__":
    sys.exit(main())
