"""Checkpoint/resume smoke drill: run, kill mid-run, resume, compare.

This is the ``make checkpoint-smoke`` target (wired into CI): for each
engine flavour it runs a workload to completion, then re-runs it with a
simulated kill at a mid-run tick — snapshotting to a bundle, discarding
the engine, restoring from disk, and finishing — and requires the
stitched result to be **bit-identical** to the uninterrupted run (same
outcomes, counters, and per-session stats; wall-clock excluded).

Exits non-zero on any divergence.  Usage::

    python scripts/checkpoint_smoke.py
"""

from __future__ import annotations

import dataclasses
import sys
import tempfile
from pathlib import Path

import numpy as np

REPO_SRC = Path(__file__).resolve().parents[1] / "src"
if str(REPO_SRC) not in sys.path:  # allow running without an install step
    sys.path.insert(0, str(REPO_SRC))

from repro.engine import (  # noqa: E402  (path bootstrap above)
    MarketplaceEngine,
    ShardedEngine,
    generate_workload,
    restore_engine,
    save_checkpoint,
)
from repro.market.acceptance import paper_acceptance_model  # noqa: E402
from repro.sim.stream import SharedArrivalStream  # noqa: E402

SEED = 11
NUM_INTERVALS = 60
STOP_TICKS = (3, 17)

FLAVOURS = {
    "marketplace": lambda: MarketplaceEngine(
        _stream(), paper_acceptance_model(), planning="stationary"
    ),
    "sharded-1-serial": lambda: ShardedEngine(
        _stream(), paper_acceptance_model(), num_shards=1,
        executor="serial", planning="stationary",
    ),
    "sharded-3-thread": lambda: ShardedEngine(
        _stream(), paper_acceptance_model(), num_shards=3,
        executor="thread", planning="stationary",
    ),
}


def _stream() -> SharedArrivalStream:
    means = 1300.0 + 450.0 * np.sin(np.linspace(0.0, 4.0 * np.pi, NUM_INTERVALS))
    return SharedArrivalStream(means)


def _build(flavour: str):
    engine = FLAVOURS[flavour]()
    engine.submit(
        generate_workload(14, NUM_INTERVALS, seed=3, adaptive_fraction=0.4)
    )
    return engine


def _strip(result):
    return dataclasses.replace(result, elapsed_seconds=0.0)


def main() -> int:
    """Run the drill over every flavour; return a process exit code."""
    failures = 0
    for flavour in FLAVOURS:
        baseline = _build(flavour).run(seed=SEED)
        for stop in STOP_TICKS:
            engine = _build(flavour)
            core = engine.start(seed=SEED)
            for _ in range(stop):
                if core.done:
                    break
                core.tick()
            with tempfile.TemporaryDirectory() as tmp:
                bundle = Path(tmp) / "ck"
                save_checkpoint(engine, bundle)
                engine.close()
                del engine, core  # the resume must stand on the bundle alone
                resumed = restore_engine(bundle)
                result = resumed.run_to_completion()
                resumed.close()
            if _strip(result) == _strip(baseline):
                print(f"ok    {flavour:<18} kill@tick {stop:>3}: "
                      f"{result.num_campaigns} campaigns, "
                      f"{result.total_completed} tasks — bit-identical")
            else:
                failures += 1
                print(f"FAIL  {flavour:<18} kill@tick {stop:>3}: "
                      "resumed run diverged from the uninterrupted run")
    if failures:
        print(f"\ncheckpoint smoke FAILED: {failures} divergent resume(s)")
        return 1
    print("\ncheckpoint smoke passed: every resume matched bit-for-bit")
    return 0


if __name__ == "__main__":
    sys.exit(main())
