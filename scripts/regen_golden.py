"""Regenerate the golden scenario traces under tests/golden/.

This is the ``make regen-golden`` target.  Run it after an *intentional*
engine-behaviour change (new draw order, different routing, changed
accounting), then review the JSON diff like any other code change —
unreviewed regeneration defeats the point of a golden trace.

Usage::

    PYTHONPATH=src python scripts/regen_golden.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
for entry in (REPO_ROOT / "src", REPO_ROOT):
    if str(entry) not in sys.path:  # allow running without an install step
        sys.path.insert(0, str(entry))

from tests.golden.cases import (  # noqa: E402
    CASES,
    SERVE_CASES,
    analytics_path,
    run_analytics_case,
    run_any_case,
    trace_path,
)


def main() -> int:
    """Recompute every canonical case and rewrite its committed trace."""
    for case in sorted(CASES) + sorted(SERVE_CASES):
        payload = run_any_case(case)
        path = trace_path(case)
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        telemetry = payload["telemetry"]
        series = telemetry["engine"]["series"] if "engine" in telemetry else telemetry["series"]
        print(
            f"{path.relative_to(REPO_ROOT)}: "
            f"{len(payload['result']['outcomes'])} outcomes, "
            f"{len(series['interval'])} telemetry ticks"
        )
    # The analytics golden derives from the freshly rewritten serve trace,
    # so it must regenerate after the case loop.
    analytics = run_analytics_case()
    path = analytics_path()
    path.write_text(json.dumps(analytics, indent=1, sort_keys=True) + "\n")
    print(
        f"{path.relative_to(REPO_ROOT)}: "
        f"{len(analytics['queries'])} canned queries at window "
        f"{analytics['window']}"
    )
    print("review the diff before committing (git diff tests/golden/)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
