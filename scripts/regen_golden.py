"""Regenerate the golden scenario traces under tests/golden/.

This is the ``make regen-golden`` target.  Run it after an *intentional*
engine-behaviour change (new draw order, different routing, changed
accounting), then review the JSON diff like any other code change —
unreviewed regeneration defeats the point of a golden trace.

Before writing anything, the script verifies the executor/kernel/memory
invariance contract on the *candidate* traces: the sharded cases re-run
under ``executor="process"`` and under the numba kernel path, and every
case re-run in streaming mode (lazy source + spill-backed sink), must be
byte-identical to the serial/numpy/materialized recomputation.  A
divergence means the engine change broke the determinism contract —
regeneration would only bake the bug into the goldens — so the script
refuses and points at the first differing cell instead (the matrix
suite, ``tests/engine/test_executor_matrix.py``, localizes it further).

Usage::

    PYTHONPATH=src python scripts/regen_golden.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
for entry in (REPO_ROOT / "src", REPO_ROOT):
    if str(entry) not in sys.path:  # allow running without an install step
        sys.path.insert(0, str(entry))

from tests.golden.cases import (  # noqa: E402
    CASES,
    SERVE_CASES,
    analytics_path,
    run_analytics_case,
    run_any_case,
    run_case,
    run_serve_case,
    trace_path,
)
from tests.kernel_modes import kernel_mode  # noqa: E402


def verify_invariance() -> str | None:
    """Prove the candidate traces hold across executors and kernels.

    Returns ``None`` when every re-run is byte-identical, else a message
    naming the first diverging (case, executor, kernels) cell.
    """
    for case in sorted(CASES):
        baseline = run_case(case)
        sharded = bool(CASES[case]["num_shards"])
        executors = ("process",) if sharded else ("serial",)
        for executor in executors:
            for kernels_name in ("numpy", "numba"):
                with kernel_mode(kernels_name):
                    candidate = run_case(case, executor=executor)
                if candidate != baseline:
                    return (
                        f"case {case!r} diverged under executor="
                        f"{executor!r}, kernels={kernels_name!r}; the "
                        "determinism contract is broken — fix the engine "
                        "(see tests/engine/test_executor_matrix.py) "
                        "before regenerating goldens"
                    )
        # Memory-mode arm: the same workload fed through a lazy source
        # into a streaming (aggregate + spill) sink must reproduce the
        # trace byte-for-byte — goldens are only ever rewritten when
        # materialized and streaming runs agree.
        if run_case(case, streaming=True) != baseline:
            return (
                f"case {case!r} diverged between materialized and "
                "streaming outcome modes; the streaming memory core is "
                "not bit-identical (see tests/engine/"
                "test_streaming_core.py) — fix the engine before "
                "regenerating goldens"
            )
    # Tenant-mode arm: the served goldens are recorded single-tenant, so
    # (a) the default-tenant payload must never leak tenant keys (the
    # byte-identity convention for pre-tenant readers), (b) replaying the
    # tenant-tagged twin under fair scheduling must leave the engine
    # result identical, and (c) a 2-gateway fleet must reproduce the solo
    # gateway's payload exactly.
    for case in sorted(SERVE_CASES):
        baseline = run_serve_case(case)
        if '"tenant"' in json.dumps(baseline):
            return (
                f"served case {case!r} leaks tenant keys from a "
                "default-tenant run; the single-tenant byte-identity "
                "convention is broken (see tests/serve/test_tenants.py) "
                "— fix the serve layer before regenerating goldens"
            )
        tenanted = run_serve_case(case, tenants=("gold", "silver"))
        if tenanted["result"] != baseline["result"]:
            return (
                f"served case {case!r} changed engine outcomes when the "
                "trace was tenant-tagged; fair scheduling must not alter "
                "what the engine computes (see tests/serve/"
                "test_fleet.py) — fix the serve layer before "
                "regenerating goldens"
            )
        fleet = run_serve_case(case, num_gateways=2)
        if (
            fleet["result"] != baseline["result"]
            or fleet["telemetry"] != baseline["telemetry"]
        ):
            return (
                f"served case {case!r} diverged between a solo gateway "
                "and a 2-gateway fleet; the fleet determinism contract "
                "is broken (see tests/serve/test_fleet.py) — fix the "
                "serve layer before regenerating goldens"
            )
        # Instrumented arm: the full observability stack — event log,
        # tracer, metrics + phase timings, and a live ops server scraped
        # at tick boundaries — must be serialization-inert.
        instrumented = run_serve_case(case, instrumented=True)
        if json.dumps(instrumented, sort_keys=True) != json.dumps(
            baseline, sort_keys=True
        ):
            return (
                f"served case {case!r} diverged when the observability "
                "stack (event log, tracer, metrics, live ops scrapes) "
                "was wired; the serialization-inert contract is broken "
                "(see tests/obs/test_ops_invariance.py) — fix the obs "
                "layer before regenerating goldens"
            )
    return None


def main() -> int:
    """Recompute every canonical case and rewrite its committed trace."""
    failure = verify_invariance()
    if failure is not None:
        print(f"refusing to regenerate: {failure}", file=sys.stderr)
        return 1
    print("invariance verified: traces byte-identical under "
          "executor='process', the numba kernel path, streaming "
          "outcome mode, tenant tagging, a 2-gateway fleet, and a "
          "fully-instrumented run with live ops scrapes")
    for case in sorted(CASES) + sorted(SERVE_CASES):
        payload = run_any_case(case)
        path = trace_path(case)
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        telemetry = payload["telemetry"]
        series = telemetry["engine"]["series"] if "engine" in telemetry else telemetry["series"]
        print(
            f"{path.relative_to(REPO_ROOT)}: "
            f"{len(payload['result']['outcomes'])} outcomes, "
            f"{len(series['interval'])} telemetry ticks"
        )
    # The analytics golden derives from the freshly rewritten serve trace,
    # so it must regenerate after the case loop.
    analytics = run_analytics_case()
    path = analytics_path()
    path.write_text(json.dumps(analytics, indent=1, sort_keys=True) + "\n")
    print(
        f"{path.relative_to(REPO_ROOT)}: "
        f"{len(analytics['queries'])} canned queries at window "
        f"{analytics['window']}"
    )
    print("review the diff before committing (git diff tests/golden/)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
