# Developer entry points.  Everything runs from the repo root with no
# install step: PYTHONPATH=src is injected here (pyproject's pytest
# config does the same for bare pytest invocations).

PYTHON ?= python
PYTEST  = PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: test bench docs-check checkpoint-smoke lint-docs all

## Tier-1 test suite (what CI gates on).
test:
	$(PYTEST) -x -q

## Engine benchmarks: cache ablation, batch-vs-scalar solve speedup,
## shard scaling.  Regenerates BENCH_engine.json at the repo root.
bench:
	$(PYTEST) benchmarks/bench_engine.py -q -p no:cacheprovider

## Documentation contract: docs pages exist and are linked, relative
## links resolve, the tracked benchmark record has its fields, and every
## public symbol carries a docstring.
docs-check:
	$(PYTEST) tests/test_docs.py tests/test_documentation.py -q

## Durability drill: run each engine flavour, kill it at a mid-run tick,
## resume from the checkpoint bundle, and require the stitched run to be
## bit-identical to an uninterrupted one.
checkpoint-smoke:
	PYTHONPATH=src $(PYTHON) scripts/checkpoint_smoke.py

all: test docs-check checkpoint-smoke
