# Developer entry points.  Everything runs from the repo root with no
# install step: PYTHONPATH=src is injected here (pyproject's pytest
# config does the same for bare pytest invocations).

PYTHON ?= python
PYTEST  = PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: test bench bench-kernels kernels-smoke bench-scenario bench-serve \
	serve-smoke bench-obs obs-smoke ops-smoke bench-scale scale-smoke cov \
	regen-golden docs-check checkpoint-smoke lint-docs all

## Tier-1 test suite (what CI gates on).
test:
	$(PYTEST) -x -q

## Engine benchmarks: cache ablation, batch-vs-scalar solve speedup,
## shard scaling.  Regenerates BENCH_engine.json at the repo root.
bench:
	$(PYTEST) benchmarks/bench_engine.py -q -p no:cacheprovider

## Compiled-kernel microbenchmark: scalar vs kernel DP-solve throughput
## under the resolved REPRO_KERNELS backend (>= 5x bar with numba, the
## numpy fallback holds 3x; recorded under BENCH_engine.json's
## "kernels" key).
bench-kernels:
	$(PYTEST) benchmarks/bench_kernels.py -q -p no:cacheprovider

## Kernel smoke (CI): the kernel bench on a tiny workload — same code
## paths, seconds of wall-clock, hang-guard bar only.
kernels-smoke:
	REPRO_BENCH_SMOKE=1 $(PYTEST) benchmarks/bench_kernels.py -q -p no:cacheprovider

## Scenario-engine benchmarks: driver overhead vs the raw clock, and
## stress throughput under churn + shock + cancellation at 1/3 shards.
## CI runs this with REPRO_BENCH_SMOKE=1 (tiny horizon, same code paths).
bench-scenario:
	$(PYTEST) benchmarks/bench_scenario.py -q -p no:cacheprovider

## Serving-gateway benchmarks: sustained requests/sec through the
## gateway (>= 12k bar, recorded under BENCH_engine.json's "serve" key),
## closed-loop latency percentiles, and the noisy-neighbor fairness
## drill (victim p99 gated at <= 2x its isolated baseline).
bench-serve:
	$(PYTEST) benchmarks/bench_serve.py -q -p no:cacheprovider

## Serving smoke (CI): the serve bench on a tiny horizon — same code
## paths (fairness arm included), seconds of wall-clock, scaled-down
## throughput bar.
serve-smoke:
	REPRO_BENCH_SMOKE=1 $(PYTEST) benchmarks/bench_serve.py -q -p no:cacheprovider

## Observability benchmark: the scenario tick loop with and without an
## event log attached (< 5% overhead bar, recorded under
## BENCH_engine.json's "obs" key).  CI runs it with REPRO_BENCH_SMOKE=1.
bench-obs:
	$(PYTEST) benchmarks/bench_obs.py -q -p no:cacheprovider

## Event-log durability drill (CI): SIGKILL a live served run mid-tick,
## recover from checkpoint bundle + event log, and require telemetry
## bit-identical to an uninterrupted run over the same logged trace.
obs-smoke:
	PYTHONPATH=src $(PYTHON) scripts/obs_recovery_smoke.py

## Live ops-plane drill (CI): launch 'engine loadtest --ops-port 0' and
## scrape /metrics /healthz /readyz /tenants /slo mid-run — well-formed
## Prometheus exposition, ready=true, per-tenant series present, and a
## clean child exit (scrapes never perturb the run).
ops-smoke:
	PYTHONPATH=src $(PYTHON) scripts/ops_smoke.py

## Streaming scale benchmark: >= 1M campaigns through a scenario with a
## lazy source + aggregate-only sink, under hard tracemalloc/peak-RSS
## ceilings (recorded under BENCH_engine.json's "scale" key).
bench-scale:
	$(PYTEST) benchmarks/bench_scale.py -q -p no:cacheprovider

## Scale smoke (CI): the scale bench at 20k campaigns — same streaming
## code paths and the same memory assertions, seconds of wall-clock.
scale-smoke:
	REPRO_BENCH_SMOKE=1 $(PYTEST) benchmarks/bench_scale.py -q -p no:cacheprovider

## Coverage gate (CI): line coverage over src/repro with a ratcheted
## fail-under floor — raise the threshold when coverage rises, never
## lower it.  Needs pytest-cov (installed via `pip install -e '.[test]'`).
cov:
	$(PYTEST) -q --cov=repro --cov-report=term --cov-fail-under=80

## Regenerate the golden scenario traces (tests/golden/*.json) after an
## *intentional* engine-behaviour change; review the diff like code.
regen-golden:
	PYTHONPATH=src $(PYTHON) scripts/regen_golden.py

## Documentation contract: docs pages exist and are linked, relative
## links resolve, the tracked benchmark record has its fields, and every
## public symbol carries a docstring.
docs-check:
	$(PYTEST) tests/test_docs.py tests/test_documentation.py -q

## Durability drill: run each engine flavour, kill it at a mid-run tick,
## resume from the checkpoint bundle, and require the stitched run to be
## bit-identical to an uninterrupted one.
checkpoint-smoke:
	PYTHONPATH=src $(PYTHON) scripts/checkpoint_smoke.py

all: test docs-check checkpoint-smoke
