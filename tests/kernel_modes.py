"""Kernel-backend activation for the differential suites.

The matrix and equivalence tests sweep ``REPRO_KERNELS`` backends; this
helper makes the ``"numba"`` cell runnable on *every* environment:

* with numba installed, :func:`kernel_mode` simply activates the real
  compiled kernels (``kernels.use_kernels("numba")``);
* without numba, it substitutes the **un-jitted loop implementations**
  (the exact functions ``numba.njit`` would compile) for the jitted
  slots and marks the backend active — so the numba dispatch path and
  its loop arithmetic are differentially tested against numpy even
  where the compiler is absent, and the suite proves the fallback
  machinery green rather than silently skipping.

Because the process executor's workers inherit the coordinator's module
state under ``fork`` (and skip re-resolving when it already matches),
the substitution crosses the process boundary too.
"""

from __future__ import annotations

import contextlib

from repro.core.batch import kernels

#: The kernel cells every differential sweep covers.
KERNEL_MODES = ("numpy", "numba")

_JIT_SLOTS = (
    ("_deadline_layer_jit", "_deadline_layer_loops"),
    ("_lower_hull_jit", "_lower_hull_loops"),
    ("_shard_tick_jit", "_shard_tick_loops"),
)


@contextlib.contextmanager
def kernel_mode(name: str):
    """Activate kernel backend ``name`` for the enclosed block."""
    if name == "numpy" or kernels.HAVE_NUMBA:
        with kernels.use_kernels(name):
            yield
        return
    saved = [getattr(kernels, jit) for jit, _ in _JIT_SLOTS]
    saved_active = kernels._active
    for jit, loops in _JIT_SLOTS:
        setattr(kernels, jit, getattr(kernels, loops))
    kernels._active = "numba"
    try:
        yield
    finally:
        for (jit, _), value in zip(_JIT_SLOTS, saved):
            setattr(kernels, jit, value)
        kernels._active = saved_active
