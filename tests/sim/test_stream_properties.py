"""Property-based arrival-splitting invariants (hypothesis).

Two guarantees underpin the executor matrix's bit-identical contract:

* **Stream level** — :meth:`SharedArrivalStream.split` is a faithful
  Poisson split: for arbitrary mean vectors and shard counts, the
  per-interval means are conserved (superposition of the parts is
  distributed like the whole) and every part carries the same thinned
  rate.  Asserted for arbitrary inputs, not hand-picked cases.

* **Draw level** — the engine's finer-grained splitting
  (:meth:`repro.engine.sharding._Shard.step`) consumes **exactly two
  Poisson draws per live campaign per tick from that campaign's private
  generator**, whatever the routed fractions (including zero-mass edge
  cases) and however campaigns are laid out across shards.  This draw
  discipline is *why* the executor choice can never shift any random
  stream: workers re-derive the same per-campaign generators and consume
  them at the same rate, so shard layout and process boundaries are
  invisible.  Extends the PR 3 counting-generator pattern from the
  router to the shard tick.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.engine import CampaignSpec
from repro.engine.planning import _LiveCampaign
from repro.engine.sharding import _Shard, _ShardCampaign, shard_of
from repro.sim.stream import SharedArrivalStream

means_vectors = st.lists(
    st.floats(min_value=0.0, max_value=1e6,
              allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=50,
)
shard_counts = st.integers(min_value=1, max_value=9)


class TestSplitProperties:
    @settings(max_examples=200, deadline=None)
    @given(means=means_vectors, num_shards=shard_counts)
    def test_split_conserves_per_interval_means(self, means, num_shards):
        stream = SharedArrivalStream(np.array(means))
        parts = stream.split(num_shards)
        assert len(parts) == num_shards
        total = sum(p.arrival_means for p in parts)
        # atol floor: hypothesis finds subnormal rates (~1e-313) where
        # division can't round-trip; far below any physical arrival rate.
        np.testing.assert_allclose(
            total, stream.arrival_means, rtol=1e-12, atol=1e-300
        )

    @settings(max_examples=200, deadline=None)
    @given(means=means_vectors, num_shards=shard_counts)
    def test_split_parts_share_one_thinned_rate(self, means, num_shards):
        stream = SharedArrivalStream(np.array(means))
        parts = stream.split(num_shards)
        expected = stream.arrival_means / num_shards
        for part in parts:
            assert np.array_equal(part.arrival_means, expected)
            assert part.num_intervals == stream.num_intervals

    @settings(max_examples=100, deadline=None)
    @given(means=means_vectors)
    def test_split_one_is_the_identity(self, means):
        stream = SharedArrivalStream(np.array(means))
        (only,) = stream.split(1)
        assert np.array_equal(only.arrival_means, stream.arrival_means)
        # ...and an independent copy, not an alias into the original.
        assert only.arrival_means is not stream.arrival_means


class _CountingPoisson:
    """Duck-typed generator proxy counting a campaign's Poisson draws."""

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)
        self.calls = 0

    def poisson(self, lam):
        self.calls += 1
        return self._rng.poisson(lam)


class _InertRuntime:
    """Minimal non-semi-static runtime; step() only isinstance-checks it."""


def _shard_with(campaign_ids, num_tasks=1_000_000):
    """One shard owning fresh campaigns with counting generators."""
    shard = _Shard(0)
    counters = {}
    for cid in campaign_ids:
        spec = CampaignSpec(
            campaign_id=cid, kind="deadline", num_tasks=num_tasks,
            submit_interval=0, horizon_intervals=64,
        )
        live = _LiveCampaign(
            spec, _InertRuntime(), cache_hit=False, initial_solves=0
        )
        counters[cid] = _CountingPoisson(seed=hash(cid) & 0xFFFF)
        shard.campaigns.append(_ShardCampaign(live, counters[cid]))
    return shard, counters


fraction_pairs = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=0.5,
                  allow_nan=False, allow_infinity=False),
        st.floats(min_value=0.0, max_value=0.5,
                  allow_nan=False, allow_infinity=False),
    ),
    min_size=1,
    max_size=12,
)


class TestShardDrawDiscipline:
    @settings(max_examples=150, deadline=None)
    @given(pairs=fraction_pairs,
           mean=st.floats(min_value=0.0, max_value=5e4,
                          allow_nan=False, allow_infinity=False),
           ticks=st.integers(min_value=1, max_value=4))
    def test_exactly_two_draws_per_campaign_per_tick(self, pairs, mean, ticks):
        # accept <= consider by construction (accept, accept + slack).
        cids = [f"prop-{i:02d}" for i in range(len(pairs))]
        shard, counters = _shard_with(cids)
        fractions = {
            cid: (a, min(a + slack, 1.0))
            for cid, (a, slack) in zip(cids, pairs)
        }
        prices = {cid: 10.0 for cid in cids}
        for t in range(ticks):
            shard.step(t, mean, fractions, prices)
        for cid in cids:
            assert counters[cid].calls == 2 * ticks, (
                f"{cid}: draw discipline broken — random streams would "
                "shift with the routed fractions"
            )

    @settings(max_examples=50, deadline=None)
    @given(num_shards=st.integers(min_value=1, max_value=7))
    def test_draw_count_is_independent_of_shard_layout(self, num_shards):
        # The same 12 campaigns, dealt across any number of shards, consume
        # the same two draws each — layout only changes *which* shard makes
        # them.
        cids = [f"layout-{i:02d}" for i in range(12)]
        shards = {}
        counters = {}
        for cid in cids:
            index = shard_of(cid, num_shards)
            if index not in shards:
                shards[index], _ = _shard_with([])
            shard, owned = _shard_with([cid])
            shards[index].campaigns.extend(shard.campaigns)
            counters.update(owned)
        fractions = {cid: (0.01, 0.02) for cid in cids}
        prices = {cid: 10.0 for cid in cids}
        for shard in shards.values():
            shard.step(0, 1000.0, fractions, prices)
        assert all(counters[cid].calls == 2 for cid in cids)

    def test_zero_fraction_campaign_still_draws_twice(self):
        # The regression this guards: skipping "pointless" zero-rate draws
        # would silently decorrelate runs that differ only in one
        # campaign's routed mass.
        shard, counters = _shard_with(["zero", "busy"])
        fractions = {"zero": (0.0, 0.0), "busy": (0.2, 0.4)}
        prices = {"zero": 5.0, "busy": 5.0}
        considered, accepted = shard.step(0, 2000.0, fractions, prices)
        assert counters["zero"].calls == 2
        assert counters["busy"].calls == 2
        assert accepted <= considered

    def test_empty_shard_draws_nothing(self):
        shard, _ = _shard_with([])
        assert shard.step(0, 1000.0, {}, {}) == (0, 0)
