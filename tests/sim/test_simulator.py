"""Tests for the interval-level deadline simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.deadline.policy import fixed_price_policy
from repro.core.deadline.vectorized import solve_deadline
from repro.sim.policies import FixedPriceRuntime, TablePolicyRuntime
from repro.sim.simulator import DeadlineSimulation

from tests.conftest import make_problem


@pytest.fixture
def simulation(small_problem):
    return DeadlineSimulation(
        num_tasks=small_problem.num_tasks,
        arrival_means=small_problem.arrival_means,
        acceptance=small_problem.acceptance,
    )


class TestBasicInvariants:
    def test_conservation(self, simulation, rng):
        result = simulation.run(FixedPriceRuntime(8.0), rng)
        assert result.completed + result.remaining == simulation.num_tasks
        assert result.completions_per_interval.sum() == result.completed

    def test_cost_accounting(self, simulation, rng):
        result = simulation.run(FixedPriceRuntime(8.0), rng)
        assert result.total_cost == pytest.approx(
            float(np.dot(result.completions_per_interval, result.prices_per_interval))
        )

    def test_finished_flag(self, simulation, rng):
        result = simulation.run(FixedPriceRuntime(8.0), rng)
        assert result.finished == (result.remaining == 0)
        if result.finished:
            assert result.completion_interval is not None
            last_active = np.nonzero(result.completions_per_interval)[0][-1]
            assert result.completion_interval == last_active

    def test_average_reward(self, simulation, rng):
        result = simulation.run(FixedPriceRuntime(8.0), rng)
        assert result.average_reward == pytest.approx(
            result.total_cost / simulation.num_tasks
        )

    def test_deterministic_under_seed(self, simulation):
        a = simulation.run(FixedPriceRuntime(8.0), np.random.default_rng(9))
        b = simulation.run(FixedPriceRuntime(8.0), np.random.default_rng(9))
        assert a.total_cost == b.total_cost
        assert np.array_equal(a.completions_per_interval, b.completions_per_interval)


class TestStatisticalAgreement:
    def test_mean_outcomes_match_exact_evaluation(self, rng):
        # Monte-Carlo means must track the exact forward evaluation.
        problem = make_problem(
            num_tasks=8, arrival_means=[900.0, 700.0, 1100.0], max_price=12.0
        )
        price = 8.0
        exact = fixed_price_policy(problem, price).evaluate()
        sim = DeadlineSimulation(
            problem.num_tasks, problem.arrival_means, problem.acceptance
        )
        results = [sim.run(FixedPriceRuntime(price), rng) for _ in range(800)]
        mc_cost = np.mean([r.total_cost for r in results])
        mc_remaining = np.mean([r.remaining for r in results])
        assert mc_cost == pytest.approx(exact.expected_cost, rel=0.05)
        assert mc_remaining == pytest.approx(exact.expected_remaining, abs=0.25)

    def test_dynamic_policy_statistics(self, rng):
        problem = make_problem(
            num_tasks=8, arrival_means=[900.0, 700.0, 1100.0], max_price=12.0,
            penalty=80.0,
        )
        policy = solve_deadline(problem)
        exact = policy.evaluate()
        sim = DeadlineSimulation(
            problem.num_tasks, problem.arrival_means, problem.acceptance
        )
        runtime = TablePolicyRuntime(policy)
        results = [sim.run(runtime, rng) for _ in range(800)]
        assert np.mean([r.total_cost for r in results]) == pytest.approx(
            exact.expected_cost, rel=0.05
        )
        assert np.mean([r.remaining == 0 for r in results]) == pytest.approx(
            exact.prob_all_done, abs=0.05
        )


class TestEdgeCases:
    def test_zero_arrivals(self, rng):
        sim = DeadlineSimulation(4, np.array([0.0, 0.0]), make_problem().acceptance)
        result = sim.run(FixedPriceRuntime(5.0), rng)
        assert result.completed == 0
        assert result.total_cost == 0.0

    def test_validation(self):
        acceptance = make_problem().acceptance
        with pytest.raises(ValueError):
            DeadlineSimulation(0, np.array([1.0]), acceptance)
        with pytest.raises(ValueError):
            DeadlineSimulation(2, np.array([]), acceptance)
        with pytest.raises(ValueError):
            DeadlineSimulation(2, np.array([-1.0]), acceptance)
