"""Tests for the shared marketplace arrival stream."""

from __future__ import annotations

import numpy as np
import pytest

from repro.market.rates import ConstantRate
from repro.sim.simulator import DeadlineSimulation
from repro.sim.stream import SharedArrivalStream


class TestConstruction:
    def test_validates_means(self):
        with pytest.raises(ValueError):
            SharedArrivalStream(np.array([]))
        with pytest.raises(ValueError):
            SharedArrivalStream(np.array([1.0, -2.0]))

    def test_from_rate_function(self):
        stream = SharedArrivalStream.from_rate_function(
            ConstantRate(600.0), horizon_hours=4.0, num_intervals=12
        )
        assert stream.num_intervals == 12
        assert stream.mean(0) == pytest.approx(200.0)
        assert stream.total_mean == pytest.approx(2400.0)

    def test_scaled(self):
        stream = SharedArrivalStream(np.array([100.0, 200.0])).scaled(0.5)
        assert stream.arrival_means.tolist() == [50.0, 100.0]
        with pytest.raises(ValueError):
            stream.scaled(-1.0)


class TestSampling:
    def test_sample_matches_mean(self, rng):
        stream = SharedArrivalStream(np.array([1000.0]))
        draws = [stream.sample(0, rng) for _ in range(200)]
        assert np.mean(draws) == pytest.approx(1000.0, rel=0.05)

    def test_interval_bounds_checked(self, rng):
        stream = SharedArrivalStream(np.array([10.0]))
        with pytest.raises(ValueError):
            stream.sample(1, rng)
        with pytest.raises(ValueError):
            stream.mean(-1)

    def test_simulator_exposes_stream(self, paper_acceptance):
        """DeadlineSimulation now draws from a SharedArrivalStream."""
        means = np.array([300.0, 400.0])
        sim = DeadlineSimulation(5, means, paper_acceptance)
        assert isinstance(sim.stream, SharedArrivalStream)
        assert np.array_equal(sim.arrival_means, means)
        assert sim.num_intervals == 2
