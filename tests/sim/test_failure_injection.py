"""Failure-injection tests: bad inputs surface loudly, never silently.

Errors should never pass silently — a misbehaving policy or degenerate
deployment must raise or produce an explicitly empty result, not corrupt
the accounting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.live import LiveExperimentConfig, run_fixed_trial
from repro.sim.policies import PricingRuntime
from repro.sim.simulator import DeadlineSimulation

from tests.conftest import make_problem


class ExplodingPolicy(PricingRuntime):
    """Raises after a configurable number of pricing calls."""

    def __init__(self, after: int):
        self.after = after
        self.calls = 0

    def price(self, remaining: int, interval: int) -> float:
        self.calls += 1
        if self.calls > self.after:
            raise RuntimeError("policy backend lost connection")
        return 5.0


class NegativePricePolicy(PricingRuntime):
    """Always returns an invalid negative price."""

    def price(self, remaining: int, interval: int) -> float:
        return -3.0


@pytest.fixture
def simulation():
    problem = make_problem(num_tasks=5, arrival_means=[400.0, 400.0, 400.0])
    return DeadlineSimulation(
        problem.num_tasks, problem.arrival_means, problem.acceptance
    )


class TestSimulatorFailurePropagation:
    def test_policy_exception_propagates(self, simulation, rng):
        with pytest.raises(RuntimeError, match="lost connection"):
            simulation.run(ExplodingPolicy(after=1), rng)

    def test_negative_price_rejected_by_acceptance_model(self, simulation, rng):
        with pytest.raises(ValueError, match="non-negative"):
            simulation.run(NegativePricePolicy(), rng)

    def test_no_partial_state_leaks(self, simulation):
        # A failed run must not affect a subsequent clean run (the
        # simulator is stateless across run() calls).
        try:
            simulation.run(ExplodingPolicy(after=1), np.random.default_rng(1))
        except RuntimeError:
            pass
        from repro.sim.policies import FixedPriceRuntime

        result = simulation.run(FixedPriceRuntime(5.0), np.random.default_rng(1))
        assert result.completed + result.remaining == 5


class TestLiveDegenerateDeployments:
    def test_partial_final_hit(self, rng):
        # 15 tasks at grouping 10: the second HIT holds only 5 tasks but
        # still costs one HIT price.
        config = LiveExperimentConfig(total_tasks=15)
        result = run_fixed_trial(config, 10, rng)
        sizes = sorted(c.num_tasks for c in result.completions)
        assert all(s <= 10 for s in sizes)
        if result.finished:
            assert 5 in sizes
            assert result.cost_dollars == pytest.approx(0.02 * len(sizes))

    def test_dead_market_completes_nothing(self):
        config = LiveExperimentConfig(
            total_tasks=100,
            hit_acceptance={g: 0.0 for g in (10, 20, 30, 40, 50)},
        )
        result = run_fixed_trial(config, 20, np.random.default_rng(2))
        assert result.tasks_completed == 0
        assert result.cost_dollars == 0.0
        assert result.completion_time_hours is None

    def test_tiny_deadline_rejects_unfinishable_hits(self):
        # With a 0.05h (3-minute) window, a 50-task HIT (25 min of work)
        # can never finish; nothing should complete or be paid.
        config = LiveExperimentConfig(
            total_tasks=100,
            deadline_hours=0.05,
            hourly_arrival_rates=(800.0,),
        )
        result = run_fixed_trial(config, 50, np.random.default_rng(3))
        assert result.tasks_completed == 0
        assert result.cost_dollars == 0.0
