"""Tests for replication management and summaries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.runner import run_replications, summarize


class TestRunReplications:
    def test_reproducible(self):
        a = run_replications(lambda rng: rng.random(), 5, seed=3)
        b = run_replications(lambda rng: rng.random(), 5, seed=3)
        assert a == b

    def test_independent_streams(self):
        values = run_replications(lambda rng: rng.random(), 20, seed=3)
        assert len(set(values)) == 20

    def test_different_seed_different_values(self):
        a = run_replications(lambda rng: rng.random(), 5, seed=3)
        b = run_replications(lambda rng: rng.random(), 5, seed=4)
        assert a != b

    def test_count_validated(self):
        with pytest.raises(ValueError):
            run_replications(lambda rng: 0.0, 0, seed=1)


class TestSummarize:
    def test_known_values(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.q50 == pytest.approx(2.5)
        assert summary.count == 4

    def test_stderr_and_ci(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.stderr == pytest.approx(summary.std / 2.0)
        lo, hi = summary.confidence_interval()
        assert lo < summary.mean < hi

    def test_single_value(self):
        summary = summarize([5.0])
        assert summary.std == 0.0
        assert summary.mean == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])
