"""Tests for the live-experiment simulator (Section 5.4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.live import (
    LiveExperimentConfig,
    build_planner,
    run_dynamic_trial,
    run_fixed_trial,
)


@pytest.fixture(scope="module")
def config():
    return LiveExperimentConfig()


@pytest.fixture(scope="module")
def small_config():
    # A shrunken deployment for cheap tests (same mechanics).
    return LiveExperimentConfig(total_tasks=600, planning_unit=10)


class TestConfig:
    def test_per_task_prices(self, config):
        assert config.per_task_price_cents(10) == pytest.approx(0.2)
        assert config.per_task_price_cents(50) == pytest.approx(0.04)

    def test_per_unit_prices(self, config):
        assert config.per_unit_price_cents(10) == pytest.approx(2.0)
        assert config.per_unit_price_cents(50) == pytest.approx(0.4)

    def test_planner_price_grid_ascending(self, config):
        grid, mapping = config.planner_price_grid()
        assert np.all(np.diff(grid) > 0)
        assert mapping[float(grid[0])] == 50  # cheapest unit = largest group
        assert mapping[float(grid[-1])] == 10

    def test_arrival_rate_scaled(self, config):
        base = config.arrival_rate_function(1.0)
        scaled = config.arrival_rate_function(2.0)
        assert scaled.integral(0.0, 14.0) == pytest.approx(
            2.0 * base.integral(0.0, 14.0)
        )

    def test_effective_throughput_includes_stickiness(self, config):
        p_hit = config.hit_acceptance[20]
        expected_hits = config.session.expected_hits_per_session(0.1)
        assert config.effective_unit_throughput(20) == pytest.approx(
            p_hit * expected_hits * 20 / config.planning_unit
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            LiveExperimentConfig(total_tasks=0)
        with pytest.raises(ValueError):
            LiveExperimentConfig(group_sizes=())
        with pytest.raises(ValueError):
            LiveExperimentConfig(group_sizes=(10, 99))  # no estimate for 99
        with pytest.raises(ValueError):
            LiveExperimentConfig().per_task_price_cents(0)


class TestFixedTrial:
    def test_conservation_and_cost(self, small_config, rng):
        result = run_fixed_trial(small_config, 20, rng)
        assert result.tasks_completed + result.tasks_remaining == 600
        assert result.cost_dollars == pytest.approx(
            result.hits_completed * 0.02
        )
        assert all(c.num_tasks <= 20 for c in result.completions)

    def test_completion_times_within_deadline(self, small_config, rng):
        result = run_fixed_trial(small_config, 10, rng)
        assert all(c.time_hours <= small_config.deadline_hours for c in result.completions)

    def test_unknown_group_rejected(self, small_config, rng):
        with pytest.raises(ValueError):
            run_fixed_trial(small_config, 99, rng)

    def test_monitoring_series(self, small_config, rng):
        result = run_fixed_trial(small_config, 10, rng)
        hits = result.hits_completed_by([2.0, 8.0, 14.0])
        assert np.all(np.diff(hits) >= 0)
        work = result.work_fraction_by([2.0, 8.0, 14.0])
        assert np.all((work >= 0) & (work <= 1))
        assert work[-1] == pytest.approx(result.tasks_completed / 600)

    def test_accuracy_statistics(self, small_config, rng):
        result = run_fixed_trial(small_config, 10, rng)
        acc = result.mean_accuracy()
        assert 0.8 <= acc <= 1.0
        per_hit = result.accuracies()
        assert per_hit.size == result.hits_completed
        assert result.accuracies(group_size=10).size == result.hits_completed

    def test_hits_per_worker_positive(self, small_config, rng):
        result = run_fixed_trial(small_config, 10, rng)
        counts = result.hits_per_worker()
        assert np.all(counts >= 1)


class TestPlanner:
    def test_grid_and_mapping_consistent(self, config):
        policy, mapping = build_planner(config)
        for price in policy.problem.price_grid:
            assert float(price) in mapping

    def test_escalates_when_behind(self, config):
        # Far behind schedule near the deadline, the planner posts smaller
        # groups (higher per-task price) than when on schedule.
        policy, mapping = build_planner(config)
        late = policy.problem.num_intervals - 2
        behind = mapping[policy.price(policy.problem.num_tasks, late)]
        ahead = mapping[policy.price(10, late)]
        assert behind <= ahead  # smaller group = pricier per task

    def test_discount_validated(self, config):
        with pytest.raises(ValueError):
            build_planner(config, final_interval_discount=1.5)


class TestEstimateUnitThroughput:
    def test_estimates_near_analytic(self, config):
        # One pilot per size: measured throughput tracks the session-model
        # analytic expectation the config encodes.
        from repro.sim.live import estimate_unit_throughput

        trials = {
            g: run_fixed_trial(config, g, np.random.default_rng(7700 + g))
            for g in config.group_sizes
        }
        estimates = estimate_unit_throughput(trials, config)
        for g in config.group_sizes:
            analytic = config.effective_unit_throughput(g)
            assert estimates[g] == pytest.approx(analytic, rel=0.5)
        # The separation that drives the planner is preserved: the two
        # fast groupings sit far above the slow three (10 vs 20 are
        # genuinely close and may swap under sampling noise).
        assert min(estimates[10], estimates[20]) > 2 * max(
            estimates[30], estimates[40], estimates[50]
        )

    def test_planner_accepts_measured_estimates(self, config):
        from repro.sim.live import build_planner, estimate_unit_throughput

        trials = {
            g: run_fixed_trial(config, g, np.random.default_rng(8800 + g))
            for g in config.group_sizes
        }
        estimates = estimate_unit_throughput(trials, config)
        policy, mapping = build_planner(config, estimates=estimates)
        assert policy.problem.num_tasks == 500
        assert set(mapping.values()) == set(config.group_sizes)

    def test_missing_estimate_rejected(self, config):
        from repro.sim.live import build_planner

        with pytest.raises(ValueError, match="missing grouping sizes"):
            build_planner(config, estimates={10: 0.1})

    def test_negative_censor_rejected(self, config, rng):
        from repro.sim.live import estimate_unit_throughput

        trial = run_fixed_trial(
            LiveExperimentConfig(total_tasks=300), 10, rng
        )
        with pytest.raises(ValueError):
            estimate_unit_throughput({10: trial}, config, censor_tail_hours=-1.0)


class TestDynamicTrial:
    def test_runs_and_accounts(self, small_config, rng):
        result = run_dynamic_trial(small_config, rng)
        assert result.tasks_completed + result.tasks_remaining == 600
        assert result.cost_dollars == pytest.approx(result.hits_completed * 0.02)
        assert len(result.group_schedule) >= 1
        assert set(result.group_schedule) <= set(small_config.group_sizes)

    def test_full_deployment_structure(self, config):
        # The Fig. 12 qualitative structure on the full configuration:
        # sizes 10 and 20 finish, sizes 30-50 do not.
        finish = {}
        for g in (10, 20, 30, 50):
            result = run_fixed_trial(config, g, np.random.default_rng(5000 + g))
            finish[g] = result.finished
        assert finish[10] and finish[20]
        assert not finish[30] and not finish[50]
