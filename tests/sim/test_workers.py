"""Tests for the worker-session and accuracy models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.workers import Worker, WorkerPool, WorkerSessionModel


class TestWorkerSessionModel:
    def test_continue_probability_increases_with_price(self):
        model = WorkerSessionModel()
        low = model.continue_probability(0.04)
        high = model.continue_probability(0.2)
        assert high > low

    def test_continue_probability_capped(self):
        model = WorkerSessionModel(continue_cap=0.6)
        assert model.continue_probability(100.0) == 0.6

    def test_expected_hits_geometric(self):
        model = WorkerSessionModel(continue_base=0.5, continue_slope=0.0)
        assert model.expected_hits_per_session(1.0) == pytest.approx(2.0)

    def test_negative_price_rejected(self):
        with pytest.raises(ValueError):
            WorkerSessionModel().continue_probability(-0.1)

    def test_accuracy_distribution(self, rng):
        model = WorkerSessionModel(accuracy_mean=0.905, accuracy_concentration=80.0)
        draws = [model.sample_accuracy(rng) for _ in range(2000)]
        assert np.mean(draws) == pytest.approx(0.905, abs=0.01)
        assert all(0.0 <= a <= 1.0 for a in draws)

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerSessionModel(accuracy_mean=1.5)
        with pytest.raises(ValueError):
            WorkerSessionModel(accuracy_concentration=0.0)
        with pytest.raises(ValueError):
            WorkerSessionModel(continue_slope=-1.0)
        with pytest.raises(ValueError):
            WorkerSessionModel(continue_base=2.0)


class TestWorker:
    def test_answer_counts(self, rng):
        worker = Worker(worker_id=0, arrival_time=0.0, accuracy=0.9)
        correct = worker.answer_correctly(1000, rng)
        assert 0 <= correct <= 1000
        assert correct / 1000 == pytest.approx(0.9, abs=0.05)

    def test_zero_tasks(self, rng):
        worker = Worker(worker_id=0, arrival_time=0.0, accuracy=0.9)
        assert worker.answer_correctly(0, rng) == 0

    def test_negative_rejected(self, rng):
        worker = Worker(worker_id=0, arrival_time=0.0, accuracy=0.9)
        with pytest.raises(ValueError):
            worker.answer_correctly(-1, rng)


class TestWorkerPool:
    def test_sequential_ids(self, rng):
        pool = WorkerPool(WorkerSessionModel(), rng)
        first = pool.arrive(1.0)
        second = pool.arrive(2.0)
        assert (first.worker_id, second.worker_id) == (0, 1)
        assert second.arrival_time == 2.0

    def test_accuracies_vary(self, rng):
        pool = WorkerPool(WorkerSessionModel(), rng)
        accuracies = {pool.arrive(0.0).accuracy for _ in range(10)}
        assert len(accuracies) > 1
