"""Tests for the quality-controlled filtering simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.deadline.model import PenaltyScheme
from repro.core.deadline.vectorized import solve_deadline
from repro.core.quality import MajorityVoteStrategy, reduce_to_deadline_problem
from repro.market.acceptance import paper_acceptance_model
from repro.sim.quality_run import simulate_filtering_run


@pytest.fixture(scope="module")
def strategy():
    return MajorityVoteStrategy(3)


@pytest.fixture(scope="module")
def policy(strategy):
    problem = reduce_to_deadline_problem(
        strategy,
        num_filter_tasks=30,
        arrival_means=np.full(6, 20_000.0),
        acceptance=paper_acceptance_model(),
        price_grid=np.arange(1.0, 16.0),
        penalty=PenaltyScheme(per_task=60.0),
    )
    return solve_deadline(problem)


class TestFilteringRun:
    def test_accounting_invariants(self, strategy, policy, rng):
        result = simulate_filtering_run(strategy, policy, 30, 0.9, rng)
        assert result.decided + result.undecided == 30
        assert result.questions_asked == result.questions_per_interval.sum()
        assert result.total_cost == pytest.approx(
            float(
                np.dot(result.questions_per_interval, result.prices_per_interval)
            )
        )
        assert result.questions_per_item <= strategy.worst_case_additional(0, 0)

    def test_decisions_mostly_correct(self, strategy, policy, rng):
        # Majority-of-3 with 90% workers decides ~ 1 - (3*0.1^2*0.9 + 0.1^3)
        # = 97.2% of items correctly.
        results = [
            simulate_filtering_run(
                strategy, policy, 30, 0.9, np.random.default_rng(seed)
            )
            for seed in range(10)
        ]
        correct = sum(r.correct for r in results)
        decided = sum(r.decided for r in results)
        assert decided > 0
        assert correct / decided > 0.9

    def test_questions_bounded_by_worst_case(self, strategy, policy, rng):
        result = simulate_filtering_run(strategy, policy, 30, 0.9, rng)
        assert result.questions_asked <= 30 * strategy.worst_case_additional(0, 0)

    def test_early_stopping_saves_questions(self, strategy, policy):
        # With perfect workers every item decides after exactly 2 answers.
        rng = np.random.default_rng(3)
        result = simulate_filtering_run(strategy, policy, 30, 0.999, rng)
        if result.decided == 30:
            assert result.questions_asked <= 30 * 2 + 2

    def test_accuracy_property_nan_when_undecided(self, strategy, policy, rng):
        # A dead market decides nothing.
        dead_problem = policy.problem.with_arrival_means(
            np.zeros_like(policy.problem.arrival_means)
        )
        dead_policy = solve_deadline(dead_problem)
        result = simulate_filtering_run(strategy, dead_policy, 30, 0.9, rng)
        assert result.decided == 0
        assert np.isnan(result.decision_accuracy)

    def test_validation(self, strategy, policy, rng):
        with pytest.raises(ValueError):
            simulate_filtering_run(strategy, policy, 0, 0.9, rng)
        with pytest.raises(ValueError):
            simulate_filtering_run(strategy, policy, 30, 1.5, rng)
        with pytest.raises(ValueError, match="question units"):
            simulate_filtering_run(strategy, policy, 1000, 0.9, rng)
