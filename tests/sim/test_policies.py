"""Tests for the runtime pricing-policy adapters."""

from __future__ import annotations

import pytest

from repro.core.budget.semi_static import SemiStaticStrategy
from repro.core.deadline.vectorized import solve_deadline
from repro.sim.policies import FixedPriceRuntime, SemiStaticRuntime, TablePolicyRuntime


class TestFixedPriceRuntime:
    def test_constant(self):
        runtime = FixedPriceRuntime(7.0)
        assert runtime.price(5, 0) == 7.0
        assert runtime.price(1, 99) == 7.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            FixedPriceRuntime(-1.0)

    def test_repr(self):
        assert "7.0" in repr(FixedPriceRuntime(7.0))


class TestTablePolicyRuntime:
    def test_delegates_to_table(self, small_problem):
        policy = solve_deadline(small_problem)
        runtime = TablePolicyRuntime(policy)
        assert runtime.price(3, 1) == policy.price(3, 1)

    def test_clamps_out_of_range(self, small_problem):
        policy = solve_deadline(small_problem)
        runtime = TablePolicyRuntime(policy)
        last_t = small_problem.num_intervals - 1
        assert runtime.price(3, 10_000) == policy.price(3, last_t)
        assert runtime.price(10_000, 0) == policy.price(small_problem.num_tasks, 0)

    def test_repr(self, small_problem):
        assert "vectorized" in repr(TablePolicyRuntime(solve_deadline(small_problem)))


class TestSemiStaticRuntime:
    def test_price_by_completed_count(self):
        strategy = SemiStaticStrategy((9.0, 7.0, 5.0))
        runtime = SemiStaticRuntime(strategy)
        assert runtime.price(3, 0) == 9.0  # 0 completed
        assert runtime.price(2, 5) == 7.0  # 1 completed
        assert runtime.price(1, 9) == 5.0  # 2 completed

    def test_degenerate_remaining(self):
        strategy = SemiStaticStrategy((9.0, 5.0))
        runtime = SemiStaticRuntime(strategy)
        assert runtime.price(0, 0) == 5.0

    def test_repr(self):
        assert "2 prices" in repr(SemiStaticRuntime(SemiStaticStrategy((1.0, 2.0))))
