"""Admission queue unit behaviour: tickets, bounds, drains, restore."""

from __future__ import annotations

import pytest

from repro.serve import AdmissionQueue, Cancel, Response, Ticket


def response(status: str = "ok") -> Response:
    return Response(kind="cancel", status=status, tick=0)


def test_offer_assigns_sequential_seqs_and_fifo_drain():
    queue = AdmissionQueue(max_depth=None)
    tickets = [queue.offer(f"c{i % 2}", Cancel(f"x{i}"))[0] for i in range(5)]
    assert [t.seq for t in tickets] == [0, 1, 2, 3, 4]
    drained = queue.drain()
    assert drained == tickets
    assert queue.depth == 0
    assert queue.stats.drained == 5


def test_depth_bound_rejects_without_queueing():
    queue = AdmissionQueue(max_depth=2)
    (_, ok1), (_, ok2) = queue.offer("a", Cancel("1")), queue.offer("a", Cancel("2"))
    bounced, ok3 = queue.offer("a", Cancel("3"))
    assert (ok1, ok2, ok3) == (True, True, False)
    assert queue.depth == 2
    assert bounced.seq == 2  # the bounced offer still consumed its seq
    assert queue.stats.rejected_full == 1
    # The next drain sees only the accepted two.
    assert [t.request.campaign_id for t in queue.drain()] == ["1", "2"]


def test_zero_or_negative_depth_is_rejected():
    with pytest.raises(ValueError, match="max_depth"):
        AdmissionQueue(max_depth=0)


def test_pop_keeps_order_and_snapshot_sees_the_tail():
    queue = AdmissionQueue()
    for i in range(4):
        queue.offer("c", Cancel(str(i)))
    first = queue.pop()
    assert first.request.campaign_id == "0"
    assert [t.request.campaign_id for t in queue.snapshot()] == ["1", "2", "3"]
    assert queue.pop().request.campaign_id == "1"


def test_restore_reloads_tickets_and_seq():
    queue = AdmissionQueue()
    restored = [Ticket(7, "c", Cancel("a"), 0.0), Ticket(9, "c", Cancel("b"), 0.0)]
    queue.restore(10, restored)
    assert queue.next_seq == 10
    assert queue.depth == 2
    assert queue.pop().seq == 7


def test_ticket_resolves_exactly_once():
    ticket = Ticket(0, "c", Cancel("x"), 0.0)
    with pytest.raises(RuntimeError, match="still queued"):
        _ = ticket.response
    ticket.resolve(response())
    assert ticket.done and ticket.response.ok
    with pytest.raises(RuntimeError, match="already resolved"):
        ticket.resolve(response())


def test_ticket_callbacks_fire_on_and_after_resolution():
    ticket = Ticket(0, "c", Cancel("x"), 0.0)
    seen: list[str] = []
    ticket.add_done_callback(lambda t: seen.append("before"))
    ticket.resolve(response())
    ticket.add_done_callback(lambda t: seen.append("after"))
    assert seen == ["before", "after"]


def test_make_ticket_shares_numbering_without_queueing():
    queue = AdmissionQueue()
    queue.offer("c", Cancel("0"))
    read_ticket = queue.make_ticket("c", Cancel("read"))
    queue.offer("c", Cancel("2"))
    assert read_ticket.seq == 1
    assert queue.depth == 2  # the read ticket never entered the queue
