"""Property-based admission-queue invariants (hypothesis).

The serving determinism contract stands on three queue guarantees, so
they are asserted for *arbitrary* offer/drain interleavings rather than
hand-picked cases:

* **FIFO per client**: however offers and tick drains interleave, one
  client's requests come out of the drains in exactly the order that
  client issued them (and the global drain order is arrival order).
* **No loss, no duplication**: every offered request is either drained
  exactly once or bounced exactly once at offer time; sequence numbers
  never repeat and nothing vanishes across drain boundaries.
* **Deterministic backpressure**: which offers bounce is a pure function
  of the offer/drain sequence — replaying the same schedule (same seed)
  bounces exactly the same requests.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.serve import AdmissionQueue, Cancel

#: A schedule: True = offer (with a client index), None = tick drain.
schedules = st.lists(
    st.one_of(st.integers(min_value=0, max_value=4), st.none()),
    min_size=0,
    max_size=200,
)
depths = st.one_of(st.none(), st.integers(min_value=1, max_value=8))


def run_schedule(schedule, max_depth):
    """Execute one offer/drain schedule; returns (tickets, drains, bounced)."""
    queue = AdmissionQueue(max_depth=max_depth)
    tickets = []
    drains = []
    bounced = []
    for step in schedule:
        if step is None:
            drains.append(queue.drain())
            continue
        client = f"c{step}"
        ticket, accepted = queue.offer(client, Cancel(f"{client}-{len(tickets)}"))
        tickets.append(ticket)
        if not accepted:
            bounced.append(ticket)
    drains.append(queue.drain())  # final boundary flushes the rest
    return tickets, drains, bounced


@settings(max_examples=200, deadline=None)
@given(schedule=schedules, max_depth=depths)
def test_fifo_per_client_across_drains(schedule, max_depth):
    tickets, drains, bounced = run_schedule(schedule, max_depth)
    drained = [t for batch in drains for t in batch]
    # Global drain order is arrival order...
    assert [t.seq for t in drained] == sorted(t.seq for t in drained)
    # ...which implies per-client FIFO.
    for client in {t.client for t in drained}:
        ours = [t.seq for t in drained if t.client == client]
        assert ours == sorted(ours)


@settings(max_examples=200, deadline=None)
@given(schedule=schedules, max_depth=depths)
def test_no_request_lost_or_duplicated(schedule, max_depth):
    tickets, drains, bounced = run_schedule(schedule, max_depth)
    drained = [t for batch in drains for t in batch]
    # Exactly once: every offer is either drained or bounced, never both,
    # never twice.
    seen = [t.seq for t in drained] + [t.seq for t in bounced]
    assert sorted(seen) == [t.seq for t in tickets]
    assert len(set(seen)) == len(seen)


@settings(max_examples=200, deadline=None)
@given(schedule=schedules, max_depth=depths)
def test_backpressure_is_deterministic(schedule, max_depth):
    _, _, bounced_a = run_schedule(schedule, max_depth)
    _, _, bounced_b = run_schedule(schedule, max_depth)
    assert [t.seq for t in bounced_a] == [t.seq for t in bounced_b]


@settings(max_examples=100, deadline=None)
@given(schedule=schedules)
def test_unbounded_queue_never_bounces(schedule):
    _, _, bounced = run_schedule(schedule, None)
    assert bounced == []


@settings(max_examples=100, deadline=None)
@given(schedule=schedules, max_depth=st.integers(min_value=1, max_value=8))
def test_depth_never_exceeds_bound(schedule, max_depth):
    queue = AdmissionQueue(max_depth=max_depth)
    for i, step in enumerate(schedule):
        if step is None:
            queue.drain()
        else:
            queue.offer(f"c{step}", Cancel(str(i)))
        assert queue.depth <= max_depth
    assert queue.stats.max_depth_seen <= max_depth
