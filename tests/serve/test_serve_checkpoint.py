"""Durability of served sessions: snapshot mid-serve, resume bit-identically.

The contract mirrors the engine/scenario checkpoint suites: a served run
that snapshots at any tick boundary — through a queued ``Snapshot``
request or an external :meth:`Gateway.save` — and resumes from the
bundle must finish with telemetry and outcomes bit-identical to the
uninterrupted run, including the requests that were still queued when
the snapshot was taken.
"""

from __future__ import annotations

import pytest

from repro.engine.checkpoint import CheckpointError
from repro.serve import (
    Cancel,
    Gateway,
    LoadGenerator,
    RequestTrace,
    Snapshot,
    SubmitCampaign,
    TimedRequest,
)
from tests.serve.conftest import NUM_INTERVALS, make_engine

SEED = 5
BASE_TRACE = LoadGenerator(
    NUM_INTERVALS, seed=11, clients=3, rate=2.0, think=1,
).trace("open")


def outcome_map(core):
    return {
        o.spec.campaign_id: (o.completed, o.remaining, o.total_cost,
                             o.penalty, o.cancelled)
        for o in core.outcomes
    }


@pytest.mark.parametrize("num_shards", [0, 3], ids=["pooled", "sharded3"])
@pytest.mark.parametrize("snapshot_tick", [0, 14, 30])
def test_snapshot_request_resumes_bit_identically(
    tmp_path, num_shards, snapshot_tick
):
    bundle = str(tmp_path / "bundle")
    trace = BASE_TRACE.merge(
        RequestTrace(
            "snap",
            (TimedRequest(snapshot_tick, "ops", Snapshot(bundle)),),
        )
    )
    uninterrupted = Gateway(make_engine(num_shards))
    uninterrupted.start(seed=SEED)
    tickets = uninterrupted.replay(trace)
    snapshot_response = next(
        t.response for t in tickets if isinstance(t.request, Snapshot)
    )
    assert snapshot_response.ok
    assert snapshot_response.payload["path"] == bundle

    resumed = Gateway.resume(bundle)
    assert resumed.replay_remaining is not None
    resumed.resume_replay()

    assert resumed.telemetry == uninterrupted.telemetry
    assert outcome_map(resumed.core) == outcome_map(uninterrupted.core)


def test_external_save_preserves_the_queue(tmp_path):
    """Requests still queued at the snapshot are answered after resume."""
    bundle = tmp_path / "bundle"
    gateway = Gateway(make_engine())
    gateway.start(seed=SEED)
    gateway.offer(SubmitCampaign(BASE_TRACE.requests[0].request.spec))
    gateway.step()
    queued = gateway.offer(Cancel("never-seen"), client="c9")
    gateway.save(bundle)
    assert not queued.done  # still queued in the saved bundle

    resumed = Gateway.resume(bundle)
    assert resumed.queue.depth == 1
    restored = resumed.queue.snapshot()[0]
    assert restored.seq == queued.seq and restored.client == "c9"
    resumed.step()
    assert restored.done  # answered at the first post-resume boundary
    assert restored.response.status == "error"  # unknown campaign


def test_save_requires_a_started_session(tmp_path):
    gateway = Gateway(make_engine())
    with pytest.raises(CheckpointError, match="not started"):
        gateway.save(tmp_path / "bundle")


def test_resume_rejects_foreign_bundles(tmp_path):
    """An engine-only bundle (no gateway extras) fails loudly."""
    from repro.engine.checkpoint import save_checkpoint

    engine = make_engine()
    engine.submit([BASE_TRACE.requests[0].request.spec])
    engine.start(seed=SEED)
    save_checkpoint(engine, tmp_path / "plain")
    with pytest.raises(CheckpointError, match="serving-gateway state"):
        Gateway.resume(tmp_path / "plain")


def test_resume_rejects_missing_bundle(tmp_path):
    with pytest.raises(CheckpointError, match="no checkpoint bundle"):
        Gateway.resume(tmp_path / "nothing-here")


def test_resume_replay_without_trace_fails():
    gateway = Gateway(make_engine())
    gateway.start(seed=SEED)
    with pytest.raises(RuntimeError, match="no replay to resume"):
        gateway.resume_replay()


def test_double_hop_resume(tmp_path):
    """Snapshot -> resume -> snapshot -> resume still matches end to end."""
    first = str(tmp_path / "first")
    second = str(tmp_path / "second")
    trace = BASE_TRACE.merge(
        RequestTrace(
            "snaps",
            (
                TimedRequest(8, "ops", Snapshot(first)),
                TimedRequest(22, "ops", Snapshot(second)),
            ),
        )
    )
    uninterrupted = Gateway(make_engine())
    uninterrupted.start(seed=SEED)
    uninterrupted.replay(trace)

    hop1 = Gateway.resume(first)
    hop1.resume_replay()
    assert hop1.telemetry == uninterrupted.telemetry

    hop2 = Gateway.resume(second)  # written again during hop1's replay
    hop2.resume_replay()
    assert hop2.telemetry == uninterrupted.telemetry
    assert outcome_map(hop2.core) == outcome_map(uninterrupted.core)
