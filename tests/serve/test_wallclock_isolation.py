"""Wall-clock isolation: ``ticket.offered_at`` never reaches the artifacts.

Tickets stamp ``time.perf_counter()`` at offer time for *in-memory*
latency accounting only.  Every serialized artifact a served run emits —
telemetry ``to_dict``, checkpoint bundle extras, the durable event log —
must be a pure function of the arrival sequence, or replays and
cross-host comparisons silently diverge.  The regression: run the same
trace under two wildly different wall clocks and require the artifacts
byte-identical.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.engine.checkpoint import load_extras
from repro.obs.eventlog import EventLog
from repro.serve import Gateway, LoadGenerator
from tests.serve.conftest import NUM_INTERVALS, make_engine

SEED = 5
TRACE = LoadGenerator(
    NUM_INTERVALS, seed=11, clients=3, rate=2.0, think=1,
    tenants=("acme", "beta"),
).trace("open")


def run_skewed(tmp_path, monkeypatch, skew: float):
    """Replay TRACE with every perf_counter reading offset by ``skew``."""
    real = time.perf_counter
    with monkeypatch.context() as patch:
        patch.setattr(time, "perf_counter", lambda: real() + skew)
        log = EventLog(tmp_path / "events.sqlite")
        gateway = Gateway(make_engine(), event_log=log)
        gateway.start(seed=SEED)
        gateway.replay(TRACE)
        bundle = gateway.save(tmp_path / "bundle")
        log.close()
    # The run directory differs per run by construction; normalize it so
    # the only *allowed* difference (the bundle's own path) cancels out.
    base = str(tmp_path)
    rows = [
        (e.seq, e.tick, e.kind, e.campaign_id, e.client, e.trace_id,
         json.dumps(e.payload, sort_keys=True).replace(base, "<run>"))
        for e in EventLog.read(tmp_path / "events.sqlite").events()
    ]
    return {
        "telemetry": json.dumps(
            gateway.telemetry.to_dict(), sort_keys=True
        ),
        "extras": json.dumps(
            load_extras(bundle), sort_keys=True
        ).replace(base, "<run>"),
        "events": rows,
    }


def test_skewed_clock_leaves_artifacts_byte_identical(tmp_path, monkeypatch):
    baseline = run_skewed(tmp_path / "a", monkeypatch, skew=0.0)
    skewed = run_skewed(tmp_path / "b", monkeypatch, skew=86_400.0)
    assert skewed["telemetry"] == baseline["telemetry"]
    assert skewed["extras"] == baseline["extras"]
    assert skewed["events"] == baseline["events"]


def test_offered_at_is_wall_clock_but_stays_off_the_wire(monkeypatch):
    """The ticket really does carry the skewed clock — in memory only."""
    real = time.perf_counter
    monkeypatch.setattr(time, "perf_counter", lambda: real() + 1_000_000.0)
    gateway = Gateway(make_engine())
    gateway.start(seed=SEED)
    from repro.serve import QueryTelemetry

    ticket = gateway.offer(QueryTelemetry())
    assert ticket.offered_at >= 1_000_000.0
    state = gateway._frontier_state()
    assert "offered_at" not in json.dumps(state)
