"""CLI surface of the serving layer: ``engine serve`` / ``engine loadtest``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.serve import GatewayTelemetry, LoadGenerator

FAST = ["--horizon-hours", "6"]


def test_serve_canned_scenario(capsys):
    assert main(["engine", "serve", "--canned", "flash-crowd", *FAST]) == 0
    out = capsys.readouterr().out
    assert "serving       : trace 'flash-crowd'" in out
    assert "gateway       :" in out
    assert "campaigns     :" in out


def test_serve_requires_exactly_one_source(capsys):
    assert main(["engine", "serve", *FAST]) == 2
    assert "exactly one request source" in capsys.readouterr().err
    assert main([
        "engine", "serve", "--canned", "flash-crowd", "--trace", "x.json",
        *FAST,
    ]) == 2


def test_serve_unknown_canned_name_exits_2(capsys):
    assert main(["engine", "serve", "--canned", "nope", *FAST]) == 2
    assert "nope" in capsys.readouterr().err


def test_serve_bad_trace_file_exits_2(tmp_path, capsys):
    missing = tmp_path / "missing.json"
    assert main(["engine", "serve", "--trace", str(missing), *FAST]) == 2
    assert "could not load request trace" in capsys.readouterr().err
    mangled = tmp_path / "mangled.json"
    mangled.write_text("{not json")
    assert main(["engine", "serve", "--trace", str(mangled), *FAST]) == 2


def test_serve_flag_validation_exits_2(capsys):
    assert main([
        "engine", "serve", "--canned", "flash-crowd", "--shards", "-1", *FAST,
    ]) == 2
    assert main([
        "engine", "serve", "--canned", "flash-crowd", "--max-live", "-2",
        *FAST,
    ]) == 2
    assert main([
        "engine", "serve", "--canned", "flash-crowd", "--stop-after", "4",
        *FAST,
    ]) == 2  # needs --checkpoint-path
    err = capsys.readouterr().err
    assert "--checkpoint-path" in err


def test_serve_trace_with_telemetry_out_and_shards(tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    LoadGenerator(18, seed=3, rate=2.0).trace("open").save(trace_path)
    telemetry_path = tmp_path / "telemetry.json"
    assert main([
        "engine", "serve", "--trace", str(trace_path), *FAST,
        "--shards", "3", "--executor", "serial",
        "--telemetry-out", str(telemetry_path),
    ]) == 0
    telemetry = GatewayTelemetry.load(telemetry_path)
    assert telemetry.num_ticks > 0
    assert "telemetry     : written to" in capsys.readouterr().out


def test_serve_stop_resume_round_trip(tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    LoadGenerator(18, seed=3, rate=2.0).trace("open").save(trace_path)
    bundle = tmp_path / "bundle"
    full_out = tmp_path / "full.json"
    resumed_out = tmp_path / "resumed.json"

    assert main([
        "engine", "serve", "--trace", str(trace_path), *FAST,
        "--stop-after", "5", "--checkpoint-path", str(bundle),
    ]) == 0
    assert "stopped       : after 5 ticks" in capsys.readouterr().out

    assert main([
        "engine", "serve", "--resume", str(bundle),
        "--telemetry-out", str(resumed_out),
    ]) == 0
    assert "resume        :" in capsys.readouterr().out

    assert main([
        "engine", "serve", "--trace", str(trace_path), *FAST,
        "--telemetry-out", str(full_out),
    ]) == 0
    assert json.loads(resumed_out.read_text()) == json.loads(
        full_out.read_text()
    )


def test_serve_resume_of_non_gateway_bundle_exits_2(tmp_path, capsys):
    assert main([
        "engine", "serve", "--resume", str(tmp_path / "nothing"),
    ]) == 2
    assert "no checkpoint bundle" in capsys.readouterr().err


def test_loadtest_closed_mode(capsys):
    assert main([
        "engine", "loadtest", *FAST, "--clients", "3", "--requests", "5",
    ]) == 0
    out = capsys.readouterr().out
    assert "loadtest      : mode=closed" in out
    assert "requests/sec" in out
    assert "latency" in out


def test_loadtest_open_mode_writes_a_replayable_trace(tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    assert main([
        "engine", "loadtest", *FAST, "--mode", "open", "--rate", "2",
        "--trace-out", str(trace_path),
    ]) == 0
    assert "mode=open" in capsys.readouterr().out
    assert main(["engine", "serve", "--trace", str(trace_path), *FAST]) == 0


def test_loadtest_flag_validation_exits_2(capsys):
    assert main(["engine", "loadtest", *FAST, "--max-queue", "-1"]) == 2
    assert main(["engine", "loadtest", *FAST, "--clients", "0"]) == 2
    assert main([
        "engine", "loadtest", *FAST, "--mix", "0", "0", "0", "0",
    ]) == 2
    assert "positive" in capsys.readouterr().err
