"""Request vocabulary: serialization round trips, traces, scenario lowering."""

from __future__ import annotations

import pytest

from repro.engine.campaign import CampaignSpec
from repro.scenario import canned_scenario
from repro.serve import (
    Cancel,
    QueryTelemetry,
    Quote,
    RequestTrace,
    Snapshot,
    SubmitCampaign,
    TimedRequest,
    is_mutating,
    request_from_dict,
    request_to_dict,
)


def spec(cid: str = "c-000", submit: int = 0) -> CampaignSpec:
    return CampaignSpec(
        campaign_id=cid, kind="deadline", num_tasks=10,
        submit_interval=submit, horizon_intervals=6,
    )


ALL_REQUESTS = [
    SubmitCampaign(spec()),
    Quote(spec("q"), solve_on_miss=True),
    Cancel("c-000"),
    QueryTelemetry(last=5),
    Snapshot("/tmp/bundle"),
]


@pytest.mark.parametrize("request_", ALL_REQUESTS, ids=lambda r: type(r).__name__)
def test_request_round_trips_through_dict(request_):
    data = request_to_dict(request_)
    assert isinstance(data["type"], str)
    assert request_from_dict(data) == request_


def test_mutating_split():
    assert is_mutating(SubmitCampaign(spec()))
    assert is_mutating(Cancel("x"))
    assert is_mutating(Snapshot("p"))
    assert not is_mutating(Quote(spec()))
    assert not is_mutating(QueryTelemetry())


def test_unknown_request_types_fail_loudly():
    with pytest.raises(TypeError, match="unknown request type"):
        request_to_dict(object())
    with pytest.raises(ValueError, match="unknown request type"):
        request_from_dict({"type": "frobnicate"})


def test_timed_request_validation():
    with pytest.raises(ValueError, match="tick"):
        TimedRequest(-1, "c", Cancel("x"))
    with pytest.raises(ValueError, match="client"):
        TimedRequest(0, "", Cancel("x"))
    with pytest.raises(TypeError, match="unknown request type"):
        TimedRequest(0, "c", "not a request")


def test_trace_sorts_by_tick_stably():
    trace = RequestTrace(
        name="t",
        requests=(
            TimedRequest(5, "a", Cancel("x1")),
            TimedRequest(2, "a", Cancel("x2")),
            TimedRequest(5, "b", Cancel("x3")),
            TimedRequest(2, "b", Cancel("x4")),
        ),
    )
    assert [r.tick for r in trace.requests] == [2, 2, 5, 5]
    # Stable: same-tick requests keep their original relative order.
    assert [r.request.campaign_id for r in trace.requests] == [
        "x2", "x4", "x1", "x3",
    ]


def test_trace_json_round_trip(tmp_path):
    trace = RequestTrace(
        name="rt",
        requests=tuple(
            TimedRequest(i, f"c{i % 2}", r)
            for i, r in enumerate(ALL_REQUESTS)
        ),
    )
    path = trace.save(tmp_path / "trace.json")
    loaded = RequestTrace.load(path)
    assert loaded == trace


def test_trace_merge_interleaves_by_tick():
    a = RequestTrace("a", (TimedRequest(1, "a", Cancel("a1")),
                           TimedRequest(4, "a", Cancel("a2"))))
    b = RequestTrace("b", (TimedRequest(1, "b", Cancel("b1")),
                           TimedRequest(3, "b", Cancel("b2"))))
    merged = a.merge(b)
    assert merged.name == "a+b"
    assert [r.request.campaign_id for r in merged.requests] == [
        "a1", "b1", "b2", "a2",
    ]


def test_trace_name_required():
    with pytest.raises(ValueError, match="name"):
        RequestTrace(name="", requests=())


def test_from_scenario_lowers_waves_and_cancellations():
    scenario = canned_scenario("black-friday", 48, seed=3)
    timeline = scenario.compile(48)
    trace = RequestTrace.from_scenario(scenario, 48)
    submits = [r for r in trace.requests
               if isinstance(r.request, SubmitCampaign)]
    cancels = [r for r in trace.requests if isinstance(r.request, Cancel)]
    assert len(submits) == timeline.num_campaigns
    assert len(cancels) == sum(
        len(ids) for ids in timeline.cancellations.values()
    )
    # Every submission arrives at its spec's submit interval.
    assert all(r.tick == r.request.spec.submit_interval for r in submits)
    # Same-tick ordering: submissions before cancellations (driver order).
    by_tick: dict[int, list[str]] = {}
    for r in trace.requests:
        by_tick.setdefault(r.tick, []).append(type(r.request).__name__)
    for kinds in by_tick.values():
        if "SubmitCampaign" in kinds and "Cancel" in kinds:
            assert kinds.index("Cancel") > kinds.index("SubmitCampaign")
