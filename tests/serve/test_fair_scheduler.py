"""Property-based fair-scheduler invariants (hypothesis).

The deficit-round-robin drain order inside :class:`AdmissionQueue` is
load-bearing for tenant isolation, so its guarantees are asserted for
*arbitrary* weight vectors and arrival interleavings:

* **No starvation under any weight vector**: any tenant with queued
  requests is served at least once per full rotation, and a rotation
  drains at most ``sum(floor(quantum_u) + 1)`` requests — so a bounded
  prefix of the drain order contains every backlogged tenant no matter
  how lopsided the weights are.
* **Per-tenant FIFO**: restricted to one tenant, the drain order is
  exactly that tenant's arrival order, for any interleaving.
* **Equal-weight fairness**: with equal weights the scheduler is exact
  round-robin — draining ``rounds * num_tenants`` requests from tenants
  that each hold at least ``rounds`` takes precisely the first
  ``rounds`` requests of every tenant, invariant to how the arrivals
  interleaved.
* **Weighted shares**: integer weights give integer quanta (no deficit
  carryover), so over full rotations drain counts are *exactly*
  proportional to weights.
* **Single tenant degenerates to FIFO**: bit-identical to the pre-tenant
  queue (the back-compat half of the scheduler contract).
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.serve import AdmissionQueue, Cancel

#: Tenant names the strategies draw from.
TENANTS = ("t0", "t1", "t2", "t3")

weight_vectors = st.lists(
    st.floats(min_value=0.05, max_value=20.0, allow_nan=False),
    min_size=2,
    max_size=len(TENANTS),
)

#: An arrival interleaving: tenant indices, one per offered request.
interleavings = st.lists(
    st.integers(min_value=0, max_value=len(TENANTS) - 1),
    min_size=1,
    max_size=120,
)


def build_queue(weights):
    return AdmissionQueue(
        max_depth=None,
        weights={TENANTS[i]: w for i, w in enumerate(weights)},
    )


def offer_all(queue, arrivals):
    """Offer one request per arrival; returns per-tenant expected order."""
    per_tenant: dict[str, list[int]] = {}
    for seq, index in enumerate(arrivals):
        tenant = TENANTS[index]
        queue.offer(f"c{index}", Cancel(str(seq)), tenant=tenant)
        per_tenant.setdefault(tenant, []).append(seq)
    return per_tenant


@settings(max_examples=200, deadline=None)
@given(weights=weight_vectors, arrivals=interleavings)
def test_per_tenant_fifo_any_weights(weights, arrivals):
    queue = build_queue(weights)
    per_tenant = offer_all(queue, arrivals)
    drained: dict[str, list[int]] = {}
    for ticket in queue.drain():
        drained.setdefault(ticket.tenant, []).append(ticket.seq)
    assert drained == per_tenant


@settings(max_examples=200, deadline=None)
@given(weights=weight_vectors, arrivals=interleavings)
def test_no_request_lost_any_weights(weights, arrivals):
    queue = build_queue(weights)
    offer_all(queue, arrivals)
    drained = queue.drain()
    assert sorted(t.seq for t in drained) == list(range(len(arrivals)))


@settings(max_examples=150, deadline=None)
@given(
    weights=weight_vectors,
    backlog=st.integers(min_value=1, max_value=30),
)
def test_no_tenant_starves_under_any_weight_vector(weights, backlog):
    """Every backlogged tenant appears within one rotation's worth of drains.

    The bound: a tenant's per-rotation serve count is at most
    ``floor(quantum) + 1`` (deficit carryover is < 1), so a full rotation
    drains at most ``sum(floor(quantum_u) + 1)`` requests — and serves
    every non-empty tenant at least once.  ``backlog`` is made deep
    enough that no tenant empties inside the observed window.
    """
    queue = build_queue(weights)
    tenants = [TENANTS[i] for i in range(len(weights))]
    quanta = {t: queue.quantum_of(t) for t in tenants}
    rotation_bound = sum(int(math.floor(q)) + 1 for q in quanta.values())
    depth = rotation_bound * 2 + backlog
    seq = 0
    for tenant in tenants:
        for _ in range(depth):
            queue.offer("c", Cancel(str(seq)), tenant=tenant)
            seq += 1
    window = [queue.pop() for _ in range(rotation_bound)]
    served = {ticket.tenant for ticket in window}
    assert served == set(tenants), (
        f"tenants {set(tenants) - served} starved in a "
        f"{rotation_bound}-drain window under weights {quanta}"
    )


def test_floor_weight_quantum_is_exactly_one():
    """The smallest weight's quantum is 1.0 exactly, not 0.999....

    Quanta used to be computed as ``w * (1.0 / floor)``, and for this
    weight the reciprocal round-trip lands at 0.9999999999999999 —
    below the one-serve cost, starving the tenant for a whole rotation
    and breaking the ``floor(quantum) + 1`` no-starvation bound.  Direct
    division is exact for ``w == floor`` and >= 1.0 for every heavier
    weight.
    """
    queue = build_queue([1.0, 0.6488381242853758])
    assert queue.quantum_of(TENANTS[1]) == 1.0
    assert queue.quantum_of(TENANTS[0]) >= 1.0


@settings(max_examples=150, deadline=None)
@given(
    num_tenants=st.integers(min_value=2, max_value=4),
    rounds=st.integers(min_value=1, max_value=10),
    interleave_seed=st.randoms(use_true_random=False),
)
def test_equal_weight_drained_set_invariant_to_interleaving(
    num_tenants, rounds, interleave_seed
):
    """Equal weights: K full rounds drain each tenant's first K requests,
    whatever order the arrivals interleaved in."""
    tenants = [TENANTS[i] for i in range(num_tenants)]
    depth = rounds + 3  # deeper than the window: nobody empties
    arrivals = [(t, n) for t in tenants for n in range(depth)]
    interleave_seed.shuffle(arrivals)
    # Re-impose per-tenant order (shuffle decides only the interleaving).
    counters = {t: iter(range(depth)) for t in tenants}
    queue = AdmissionQueue(max_depth=None)
    for tenant, _ in arrivals:
        n = next(counters[tenant])
        queue.offer("c", Cancel(f"{tenant}-{n}"), tenant=tenant)
    window = [queue.pop() for _ in range(rounds * num_tenants)]
    drained = {(t.tenant, t.request.campaign_id) for t in window}
    expected = {
        (t, f"{t}-{n}") for t in tenants for n in range(rounds)
    }
    assert drained == expected


@settings(max_examples=100, deadline=None)
@given(
    weights=st.lists(
        st.integers(min_value=1, max_value=6), min_size=2, max_size=4
    ),
    rotations=st.integers(min_value=1, max_value=5),
)
def test_weighted_shares_exact_over_full_rotations(weights, rotations):
    """Integer quanta leave no deficit carryover, so full rotations give
    every tenant *exactly* its weight's share of the drains."""
    queue = build_queue([float(w) for w in weights])
    tenants = [TENANTS[i] for i in range(len(weights))]
    quanta = {t: int(queue.quantum_of(t)) for t in tenants}
    per_rotation = sum(quanta.values())
    depth = max(quanta.values()) * (rotations + 1)
    seq = 0
    for tenant in tenants:
        for _ in range(depth):
            queue.offer("c", Cancel(str(seq)), tenant=tenant)
            seq += 1
    counts = {t: 0 for t in tenants}
    for _ in range(rotations * per_rotation):
        counts[queue.pop().tenant] += 1
    assert counts == {t: rotations * quanta[t] for t in tenants}


@settings(max_examples=150, deadline=None)
@given(
    n=st.integers(min_value=0, max_value=60),
    max_depth=st.one_of(st.none(), st.integers(min_value=1, max_value=16)),
)
def test_single_tenant_is_exact_fifo(n, max_depth):
    """One tenant (the default): the DRR queue is the old global FIFO."""
    queue = AdmissionQueue(max_depth=max_depth)
    accepted = []
    for i in range(n):
        ticket, ok = queue.offer("c", Cancel(str(i)))
        if ok:
            accepted.append(ticket.seq)
    assert [t.seq for t in queue.drain()] == accepted
