"""Shared factories for the serving-gateway suites: small, fast engines."""

from __future__ import annotations

import numpy as np

from repro.engine import MarketplaceEngine, ShardedEngine
from repro.market.acceptance import paper_acceptance_model
from repro.sim.stream import SharedArrivalStream

NUM_INTERVALS = 36


def make_stream(num_intervals: int = NUM_INTERVALS) -> SharedArrivalStream:
    """A small diurnal-ish stream every serve test runs against."""
    means = 700.0 + 150.0 * np.sin(np.linspace(0.0, 2.0 * np.pi, num_intervals))
    return SharedArrivalStream(means)


def make_engine(
    num_shards: int = 0,
    executor: str = "serial",
    num_intervals: int = NUM_INTERVALS,
):
    """A pooled engine (``num_shards=0``) or a ShardedEngine."""
    if num_shards:
        return ShardedEngine(
            make_stream(num_intervals),
            paper_acceptance_model(),
            num_shards=num_shards,
            executor=executor,
            planning="stationary",
        )
    return MarketplaceEngine(
        make_stream(num_intervals), paper_acceptance_model(),
        planning="stationary",
    )
