"""Tenant quotas, the shared ledger, and typed backpressure end-to-end."""

from __future__ import annotations

import pytest

from repro.engine.campaign import CampaignSpec
from repro.serve import (
    Cancel,
    Gateway,
    SubmitCampaign,
    TenantLedger,
    TenantQuota,
    parse_tenant_quotas,
    parse_tenant_weights,
)
from tests.serve.conftest import make_engine


def spec(cid: str, submit: int = 0, tasks: int = 10) -> CampaignSpec:
    return CampaignSpec(
        campaign_id=cid, kind="deadline", num_tasks=tasks,
        submit_interval=submit, horizon_intervals=6, max_price=25,
    )


# ----------------------------------------------------------------------
# TenantQuota
# ----------------------------------------------------------------------
def test_quota_bounds_must_be_positive():
    with pytest.raises(ValueError, match="max_live"):
        TenantQuota(max_live=0)
    with pytest.raises(ValueError, match="admissions_per_tick"):
        TenantQuota(admissions_per_tick=-1)


def test_quota_dict_round_trip():
    quota = TenantQuota(max_live=3, admissions_per_tick=None)
    assert TenantQuota.from_dict(quota.to_dict()) == quota


# ----------------------------------------------------------------------
# TenantLedger bookkeeping
# ----------------------------------------------------------------------
def test_ledger_live_budget_blocks_and_releases():
    ledger = TenantLedger({"acme": TenantQuota(max_live=2)})
    assert ledger.blocked("acme") is None
    ledger.admitted("acme", "a")
    ledger.admitted("acme", "b")
    name, detail = ledger.blocked("acme")
    assert name == "max_live" and "2" in detail
    ledger.release("a")
    assert ledger.blocked("acme") is None
    assert ledger.live_count("acme") == 1


def test_ledger_rate_quota_resets_at_end_tick():
    ledger = TenantLedger({"acme": TenantQuota(admissions_per_tick=1)})
    ledger.admitted("acme", "a")
    name, _ = ledger.blocked("acme")
    assert name == "admissions_per_tick"
    ledger.end_tick(0)
    assert ledger.blocked("acme") is None
    # Live budget survives the tick reset: only the rate tally clears.
    assert ledger.live_count("acme") == 1


def test_ledger_unquotaed_tenant_is_never_blocked():
    ledger = TenantLedger({"acme": TenantQuota(max_live=1)})
    for i in range(10):
        assert ledger.blocked("beta") is None
        ledger.admitted("beta", f"b{i}")


def test_ledger_release_ignores_untracked_campaigns():
    ledger = TenantLedger()
    ledger.release("never-admitted")  # base-workload campaign: no-op
    assert ledger.live_count("anyone") == 0


def test_ledger_settle_is_idempotent_per_interval():
    ledger = TenantLedger({"acme": TenantQuota(max_live=2)})
    ledger.admitted("acme", "a")
    ledger.admitted("acme", "b")
    ledger.settle(5, ["a"])
    ledger.settle(5, ["b"])  # second member settling the same tick: no-op
    assert ledger.live_count("acme") == 1
    ledger.settle(6, ["b"])
    assert ledger.live_count("acme") == 0


def test_ledger_end_tick_is_idempotent_per_interval():
    ledger = TenantLedger({"acme": TenantQuota(admissions_per_tick=1)})
    ledger.end_tick(3)
    ledger.admitted("acme", "a")
    ledger.end_tick(3)  # same interval again must not clear the tally
    assert ledger.blocked("acme") is not None
    ledger.end_tick(4)
    assert ledger.blocked("acme") is None


def test_ledger_dict_round_trip():
    ledger = TenantLedger({"acme": TenantQuota(max_live=2)})
    ledger.admitted("acme", "a")
    ledger.admitted("beta", "b")
    ledger.settle(2, [])
    restored = TenantLedger({"acme": TenantQuota(max_live=2)})
    restored.restore(ledger.to_dict())
    assert restored.to_dict() == ledger.to_dict()
    assert restored.live_count("acme") == 1
    # Releasing through the restored ledger uses the restored ownership.
    restored.release("a")
    assert restored.blocked("acme") is None
    # A pre-tenant bundle (no ledger state) restores to a clean slate.
    fresh = TenantLedger()
    fresh.restore(None)
    assert fresh.to_dict()["live"] == {}


def test_ledger_rejects_non_quota_values():
    with pytest.raises(TypeError, match="TenantQuota"):
        TenantLedger({"acme": 3})


# ----------------------------------------------------------------------
# CLI parse helpers
# ----------------------------------------------------------------------
def test_parse_weights_defaults_and_errors():
    assert parse_tenant_weights(None, None) is None
    assert parse_tenant_weights("a,b", None) == {"a": 1.0, "b": 1.0}
    assert parse_tenant_weights("a, b", "3,1") == {"a": 3.0, "b": 1.0}
    with pytest.raises(ValueError, match="requires --tenants"):
        parse_tenant_weights(None, "3,1")
    with pytest.raises(ValueError, match="duplicate"):
        parse_tenant_weights("a,a", None)
    with pytest.raises(ValueError, match="2 entries for 3"):
        parse_tenant_weights("a,b,c", "1,2")
    with pytest.raises(ValueError, match="not a number"):
        parse_tenant_weights("a", "fast")
    with pytest.raises(ValueError, match="> 0"):
        parse_tenant_weights("a", "0")


def test_parse_quotas_forms_and_errors():
    assert parse_tenant_quotas(None) is None
    assert parse_tenant_quotas([]) is None
    quotas = parse_tenant_quotas(["acme=4/2", "beta=/3", "gamma=5"])
    assert quotas["acme"] == TenantQuota(max_live=4, admissions_per_tick=2)
    assert quotas["beta"] == TenantQuota(max_live=None, admissions_per_tick=3)
    assert quotas["gamma"] == TenantQuota(max_live=5, admissions_per_tick=None)
    with pytest.raises(ValueError, match="NAME=LIVE"):
        parse_tenant_quotas(["no-equals"])
    with pytest.raises(ValueError, match="not an\\s+integer"):
        parse_tenant_quotas(["acme=lots"])
    with pytest.raises(ValueError, match="max_live"):
        parse_tenant_quotas(["acme=0"])


# ----------------------------------------------------------------------
# Quotas through a gateway: typed backpressure, release, telemetry
# ----------------------------------------------------------------------
def tenant_gateway(**kwargs) -> Gateway:
    gateway = Gateway(make_engine(), **kwargs)
    gateway.start(seed=3)
    return gateway


def test_gateway_quota_backpressure_is_typed():
    gateway = tenant_gateway(
        tenant_quotas={"acme": TenantQuota(max_live=1)},
    )
    first = gateway.offer(SubmitCampaign(spec("a0")), tenant="acme")
    second = gateway.offer(SubmitCampaign(spec("a1")), tenant="acme")
    other = gateway.offer(SubmitCampaign(spec("b0")), tenant="beta")
    gateway.step()
    assert first.response.ok and other.response.ok
    assert second.response.status == "rejected"
    assert second.response.payload == {"tenant": "acme", "quota": "max_live"}
    assert "'acme'" in second.response.detail
    assert "backpressure" in second.response.detail


def test_gateway_rate_quota_recovers_next_tick():
    gateway = tenant_gateway(
        tenant_quotas={"acme": TenantQuota(admissions_per_tick=1)},
    )
    t0 = gateway.offer(SubmitCampaign(spec("a0")), tenant="acme")
    t1 = gateway.offer(SubmitCampaign(spec("a1", submit=2)), tenant="acme")
    gateway.step()
    assert t0.response.ok
    assert t1.response.payload["quota"] == "admissions_per_tick"
    retry = gateway.offer(SubmitCampaign(spec("a1", submit=2)), tenant="acme")
    gateway.step()
    assert retry.response.ok


def test_gateway_cancel_returns_quota_budget():
    gateway = tenant_gateway(
        tenant_quotas={"acme": TenantQuota(max_live=1)},
    )
    gateway.offer(SubmitCampaign(spec("a0")), tenant="acme")
    gateway.step()
    assert gateway.ledger.live_count("acme") == 1
    gateway.offer(Cancel("a0"), tenant="acme")
    gateway.step()
    assert gateway.ledger.live_count("acme") == 0
    again = gateway.offer(SubmitCampaign(spec("a1", submit=4)), tenant="acme")
    gateway.step()
    assert again.response.ok


def test_gateway_retirement_returns_quota_budget():
    gateway = tenant_gateway(
        tenant_quotas={"acme": TenantQuota(max_live=1)},
    )
    gateway.offer(SubmitCampaign(spec("a0", tasks=4)), tenant="acme")
    gateway.step()
    while gateway.ledger.live_count("acme"):
        assert gateway.step() is not None
    again = gateway.offer(
        SubmitCampaign(spec("a1", submit=12)), tenant="acme"
    )
    gateway.step()
    assert again.response.ok


def test_per_tenant_telemetry_series():
    gateway = tenant_gateway(
        tenant_quotas={"acme": TenantQuota(max_live=1)},
    )
    gateway.offer(SubmitCampaign(spec("a0")), tenant="acme")
    gateway.offer(SubmitCampaign(spec("a1")), tenant="acme")
    gateway.offer(SubmitCampaign(spec("b0")), tenant="beta")
    gateway.offer(SubmitCampaign(spec("d0")))  # default tenant: untracked
    gateway.step()
    tenants = gateway.telemetry.tenants
    assert set(tenants) == {"acme", "beta"}
    assert tenants["acme"]["drained"][-1] == 2
    assert tenants["acme"]["admitted"][-1] == 1
    assert tenants["acme"]["rejected"][-1] == 1
    assert tenants["beta"]["admitted"][-1] == 1
    gateway.offer(Cancel("b0"), tenant="beta")
    gateway.step()
    assert tenants["beta"]["cancels"][-1] == 1
    # Series stay aligned: both ticks present for both tenants.
    assert len(tenants["acme"]["drained"]) == 2
    summary = gateway.telemetry.summary()
    assert "acme" in summary and "beta" in summary
