"""The serving determinism contract (the PR's acceptance criterion).

A :class:`LoadGenerator` trace replayed through the :class:`Gateway`
must produce per-campaign outcomes **bit-identical** to the same
submissions and cancellations issued directly against the engine's
``submit()``/``cancel()`` API — on the pooled engine and on a 3-shard
:class:`ShardedEngine` — and the full serving telemetry must be
bit-identical across shard counts and across replays.  Scenarios lowered
into request traces must reproduce the :class:`ScenarioDriver`'s engine
telemetry exactly.
"""

from __future__ import annotations

import pytest

from repro.engine import generate_workload
from repro.scenario import ScenarioDriver, canned_scenario
from repro.serve import (
    Cancel,
    Gateway,
    LoadGenerator,
    RequestTrace,
    SubmitCampaign,
)
from tests.serve.conftest import NUM_INTERVALS, make_engine

TRACE = LoadGenerator(
    NUM_INTERVALS, seed=11, clients=3, rate=2.0, think=1,
).trace("open")
CLOSED_TRACE = LoadGenerator(
    NUM_INTERVALS, seed=4, clients=5, think=1, requests_per_client=10,
).trace("closed")
SEED = 5


def run_served(trace: RequestTrace, num_shards: int) -> Gateway:
    gateway = Gateway(make_engine(num_shards))
    gateway.start(seed=SEED)
    tickets = gateway.replay(trace)
    assert all(t.done for t in tickets)  # no request lost
    return gateway


def run_direct(trace: RequestTrace, num_shards: int):
    """The offline equivalent: the same mutations via the engine API."""
    engine = make_engine(num_shards)
    core = engine.start(seed=SEED)
    requests = trace.requests
    i = 0

    def apply(timed) -> None:
        if isinstance(timed.request, SubmitCampaign):
            try:
                engine.submit([timed.request.spec])
            except ValueError:
                pass  # the gateway answers a rejection; offline just skips
        elif isinstance(timed.request, Cancel):
            try:
                engine.cancel(timed.request.campaign_id)
            except KeyError:
                pass  # unknown/already-retired: tolerated either way

    while True:
        while i < len(requests) and requests[i].tick <= core.clock:
            apply(requests[i])
            i += 1
        if core.done:
            if i >= len(requests):
                break
            # Wake the idle clock exactly as the gateway does: queue up
            # to and including the next submission early.
            j = i
            while j < len(requests) and not isinstance(
                requests[j].request, SubmitCampaign
            ):
                j += 1
            for k in range(i, min(j + 1, len(requests))):
                apply(requests[k])
            i = min(j + 1, len(requests))
            continue
        core.tick()
    return core.result()


def outcome_map(result):
    return {
        o.spec.campaign_id: (
            o.completed, o.remaining, o.total_cost, o.penalty,
            o.finished_interval, o.cancelled, o.cache_hit, o.num_solves,
        )
        for o in result.outcomes
    }


@pytest.mark.parametrize("trace", [TRACE, CLOSED_TRACE],
                         ids=["open", "closed"])
@pytest.mark.parametrize("num_shards", [0, 3], ids=["pooled", "sharded3"])
def test_served_equals_direct_bit_for_bit(trace, num_shards):
    served = run_served(trace, num_shards)
    direct = run_direct(trace, num_shards)
    result = served.core.result()
    assert outcome_map(result) == outcome_map(direct)
    assert result.total_arrivals == direct.total_arrivals
    assert result.intervals_run == direct.intervals_run
    assert result.cache_stats == direct.cache_stats


def test_telemetry_invariant_across_shard_counts():
    one = run_served(TRACE, 1)
    three = run_served(TRACE, 3)
    assert one.telemetry == three.telemetry
    assert one.telemetry.to_dict() == three.telemetry.to_dict()


def test_replay_is_reproducible():
    first = run_served(TRACE, 0)
    second = run_served(TRACE, 0)
    assert first.telemetry == second.telemetry
    assert outcome_map(first.core.result()) == outcome_map(second.core.result())


def test_backpressure_rejections_are_deterministic():
    """Same trace, same budget -> the very same requests bounce."""
    runs = []
    for _ in range(2):
        gateway = Gateway(make_engine(), max_live=4, max_queue=3)
        gateway.start(seed=SEED)
        tickets = gateway.replay(TRACE)
        runs.append(
            [
                (t.seq, t.response.status)
                for t in tickets
                if t.response.status == "rejected"
            ]
        )
    assert runs[0] == runs[1]
    assert runs[0], "the tight budget should have bounced something"


@pytest.mark.parametrize("name", ["flash-crowd", "black-friday"])
@pytest.mark.parametrize("num_shards", [0, 3], ids=["pooled", "sharded3"])
def test_scenario_through_gateway_matches_driver(name, num_shards):
    """A scenario served as a request trace == the ScenarioDriver run."""
    scenario = canned_scenario(name, NUM_INTERVALS, seed=13)

    driver_engine = make_engine(num_shards)
    driver_engine.submit(generate_workload(4, NUM_INTERVALS, seed=2))
    driver = ScenarioDriver(driver_engine, scenario)
    driver.run()

    served_engine = make_engine(num_shards)
    served_engine.submit(generate_workload(4, NUM_INTERVALS, seed=2))
    timeline = scenario.compile(NUM_INTERVALS)
    gateway = Gateway(served_engine)
    gateway.start(
        seed=scenario.seed, rate_multipliers=timeline.rate_multipliers
    )
    gateway.replay(RequestTrace.from_scenario(scenario, NUM_INTERVALS))

    assert gateway.telemetry.engine.to_dict() == driver.telemetry.to_dict()
