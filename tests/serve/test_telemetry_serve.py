"""Serving telemetry: round trips, windows, latency percentiles."""

from __future__ import annotations

import pytest

from repro.serve import (
    DrainReport,
    GatewayTelemetry,
    LatencyRecorder,
    SERVE_SERIES_FIELDS,
    SubmitCampaign,
)
from repro.serve.gateway import Gateway
from tests.serve.conftest import make_engine
from tests.serve.test_gateway import spec


def recorded_telemetry() -> GatewayTelemetry:
    gateway = Gateway(make_engine())
    gateway.start(seed=3)
    gateway.offer(SubmitCampaign(spec("a")))
    gateway.offer(SubmitCampaign(spec("b", submit=4)))
    for _ in range(6):
        if gateway.step() is None:
            break
    return gateway.telemetry


def test_round_trip_is_bit_exact():
    telemetry = recorded_telemetry()
    clone = GatewayTelemetry.from_dict(telemetry.to_dict())
    assert clone == telemetry
    assert clone.to_dict() == telemetry.to_dict()
    # ...and keeps recording deltas from where it left off.
    assert clone.reads_served == telemetry.reads_served


def test_save_load(tmp_path):
    telemetry = recorded_telemetry()
    path = telemetry.save(tmp_path / "serve.json")
    assert GatewayTelemetry.load(path) == telemetry


def test_version_gate():
    with pytest.raises(ValueError, match="version"):
        GatewayTelemetry.from_dict({"version": 99})


def test_latency_stays_out_of_the_serialized_form():
    telemetry = recorded_telemetry()
    assert telemetry.latency.count > 0  # responses were observed
    data = telemetry.to_dict()
    assert "latency" not in data  # wall-clock never enters the contract
    restored = GatewayTelemetry.from_dict(data)
    assert restored.latency.count == 0


def test_window_bounds():
    telemetry = recorded_telemetry()
    empty = telemetry.window(0)
    assert all(empty["serve"][k] == [] for k in SERVE_SERIES_FIELDS)
    everything = telemetry.window(10_000)
    assert len(everything["serve"]["interval"]) == telemetry.num_ticks
    assert len(everything["engine"]["interval"]) == telemetry.num_ticks


def test_summary_mentions_the_counters():
    telemetry = recorded_telemetry()
    text = telemetry.summary()
    assert "responses" in text and "admission" in text and "latency" in text


def test_drain_report_defaults_to_an_empty_tally():
    report = DrainReport()
    assert (report.queue_depth, report.drained, report.admitted,
            report.rejected, report.cancels, report.snapshots) == (0,) * 6


class TestLatencyRecorder:
    def test_empty(self):
        recorder = LatencyRecorder()
        assert recorder.percentile(50) == 0.0
        assert recorder.summary() == {
            "count": 0, "mean_ms": 0.0, "p50_ms": 0.0, "p95_ms": 0.0,
            "p99_ms": 0.0,
        }

    def test_percentiles_nearest_rank(self):
        recorder = LatencyRecorder()
        for ms in range(1, 101):  # 1ms .. 100ms
            recorder.observe(ms / 1000.0)
        summary = recorder.summary()
        assert summary["count"] == 100
        assert summary["p50_ms"] == pytest.approx(50.0)
        assert summary["p95_ms"] == pytest.approx(95.0)
        assert summary["p99_ms"] == pytest.approx(99.0)
        assert summary["mean_ms"] == pytest.approx(50.5)

    def test_bounded_by_decimation(self):
        recorder = LatencyRecorder(max_samples=8)
        for i in range(40):
            recorder.observe(i / 1000.0)
        assert recorder.count < 8  # halved whenever the cap is reached
        assert recorder.total_observed == 40
        assert recorder.percentile(50) > 0.0  # distribution survives

    def test_bad_cap(self):
        with pytest.raises(ValueError, match="max_samples"):
            LatencyRecorder(max_samples=1)

    def test_order_independent(self):
        a, b = LatencyRecorder(), LatencyRecorder()
        samples = [0.005, 0.001, 0.009, 0.003]
        for s in samples:
            a.observe(s)
        for s in reversed(samples):
            b.observe(s)
        # Percentiles sort internally; the mean differs only by float
        # summation order.
        assert a.percentile(50) == b.percentile(50)
        assert a.percentile(99) == b.percentile(99)
        assert a.summary()["mean_ms"] == pytest.approx(b.summary()["mean_ms"])


class TestPercentileRegressions:
    """Edge cases from the nearest-rank audit; each pinned a past bug."""

    def test_single_sample_answers_every_quantile(self):
        recorder = LatencyRecorder()
        recorder.observe(0.007)
        for q in (0, 1, 50, 95, 99, 100):
            assert recorder.percentile(q) == 0.007

    def test_p0_and_p100_are_min_and_max(self):
        recorder = LatencyRecorder()
        for s in (0.004, 0.001, 0.009, 0.002):
            recorder.observe(s)
        assert recorder.percentile(0) == 0.001
        assert recorder.percentile(100) == 0.009

    def test_half_fraction_rank_rounds_up(self):
        # n=10, q=85 → rank = ceil(8.5) = 9 → the 9th-smallest sample.
        # round() would bankers-round 8.5 down to the 8th.
        recorder = LatencyRecorder()
        for ms in range(1, 11):
            recorder.observe(ms / 1000.0)
        assert recorder.percentile(85) == pytest.approx(0.009)
        # n=10, q=50 → ceil(5.0) = 5 → the 5th sample, not the 6th.
        assert recorder.percentile(50) == pytest.approx(0.005)

    def test_monotone_in_q(self):
        recorder = LatencyRecorder()
        for ms in (3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5):
            recorder.observe(ms / 1000.0)
        values = [recorder.percentile(q) for q in range(0, 101, 5)]
        assert values == sorted(values)

    def test_percentile_is_always_an_observed_sample(self):
        recorder = LatencyRecorder()
        samples = [0.0013, 0.0042, 0.0021, 0.0088]
        for s in samples:
            recorder.observe(s)
        for q in (1, 33, 50, 66, 99):
            assert recorder.percentile(q) in samples

    def test_decimation_keeps_the_newest_sample(self):
        recorder = LatencyRecorder(max_samples=4)
        for i in range(1, 9):
            recorder.observe(i / 1000.0)
        # The halve-before-append order guarantees the last observation
        # survives every decimation (halving after would drop odd-index
        # newcomers).
        assert recorder.percentile(100) == pytest.approx(0.008)
        assert recorder.count < recorder.max_samples
        assert recorder.total_observed == 8

    def test_summary_matches_percentile_method(self):
        recorder = LatencyRecorder()
        for ms in range(1, 42):
            recorder.observe(ms / 1000.0)
        summary = recorder.summary()
        assert summary["p50_ms"] == pytest.approx(1e3 * recorder.percentile(50))
        assert summary["p95_ms"] == pytest.approx(1e3 * recorder.percentile(95))
        assert summary["p99_ms"] == pytest.approx(1e3 * recorder.percentile(99))
