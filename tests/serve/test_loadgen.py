"""LoadGenerator: deterministic traces, client mixes, live closed loops."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve import (
    Cancel,
    ClientMix,
    Gateway,
    LoadGenerator,
    QueryTelemetry,
    Quote,
    SubmitCampaign,
)
from tests.serve.conftest import NUM_INTERVALS, make_engine


def kinds(trace):
    return {type(r.request).__name__ for r in trace.requests}


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs, match",
    [
        (dict(clients=0), "clients"),
        (dict(rate=0.0), "rate"),
        (dict(think=-1), "think"),
        (dict(requests_per_client=0), "requests_per_client"),
        (dict(templates=()), "template"),
    ],
)
def test_constructor_validation(kwargs, match):
    with pytest.raises(ValueError, match=match):
        LoadGenerator(NUM_INTERVALS, **kwargs)


def test_bad_horizon():
    with pytest.raises(ValueError, match="num_intervals"):
        LoadGenerator(0)


def test_mix_validation():
    with pytest.raises(ValueError, match="non-negative"):
        ClientMix(submit=-1.0)
    with pytest.raises(ValueError, match="positive"):
        ClientMix(submit=0, quote=0, cancel=0, query=0)
    probs = ClientMix(submit=2.0, quote=2.0, cancel=0.0, query=0.0).probabilities()
    assert probs.sum() == pytest.approx(1.0)
    assert probs[2] == probs[3] == 0.0


def test_bad_trace_mode():
    with pytest.raises(ValueError, match="mode"):
        LoadGenerator(NUM_INTERVALS).trace("sideways")


# ----------------------------------------------------------------------
# Deterministic traces
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["open", "closed"])
def test_same_seed_same_trace(mode):
    a = LoadGenerator(NUM_INTERVALS, seed=9, clients=3).trace(mode)
    b = LoadGenerator(NUM_INTERVALS, seed=9, clients=3).trace(mode)
    assert a == b
    c = LoadGenerator(NUM_INTERVALS, seed=10, clients=3).trace(mode)
    assert a != c


def test_open_trace_spans_the_horizon_with_every_kind():
    trace = LoadGenerator(NUM_INTERVALS, seed=1, clients=4, rate=4.0).trace("open")
    assert trace.num_requests > NUM_INTERVALS  # rate 4 across the horizon
    assert kinds(trace) == {
        "SubmitCampaign", "Quote", "Cancel", "QueryTelemetry",
    }
    assert all(0 <= r.tick < NUM_INTERVALS for r in trace.requests)


def test_closed_trace_respects_per_client_budget():
    generator = LoadGenerator(
        NUM_INTERVALS, seed=2, clients=3, think=1, requests_per_client=5,
    )
    trace = generator.trace("closed")
    per_client: dict[str, int] = {}
    for r in trace.requests:
        per_client[r.client] = per_client.get(r.client, 0) + 1
    assert set(per_client) <= {"c00", "c01", "c02"}
    assert all(count <= 5 for count in per_client.values())
    # Closed loop: a client's requests are strictly spaced in time.
    for client in per_client:
        ticks = [r.tick for r in trace.requests if r.client == client]
        assert ticks == sorted(ticks)
        assert len(set(ticks)) == len(ticks)


def test_submissions_always_fit_the_horizon():
    trace = LoadGenerator(NUM_INTERVALS, seed=3, rate=5.0).trace("open")
    for timed in trace.requests:
        if isinstance(timed.request, SubmitCampaign):
            spec = timed.request.spec
            assert spec.submit_interval == timed.tick
            assert spec.end_interval <= NUM_INTERVALS


def test_cancels_target_own_earlier_campaigns():
    trace = LoadGenerator(
        NUM_INTERVALS, seed=7, clients=2, rate=4.0,
        mix=ClientMix(submit=0.5, cancel=0.5, quote=0.0, query=0.0),
    ).trace("open")
    submitted: dict[str, set] = {}
    for timed in trace.requests:
        if isinstance(timed.request, SubmitCampaign):
            submitted.setdefault(timed.client, set()).add(
                timed.request.spec.campaign_id
            )
        elif isinstance(timed.request, Cancel):
            assert timed.request.campaign_id in submitted.get(
                timed.client, set()
            )


def test_single_kind_mixes():
    quote_only = LoadGenerator(
        NUM_INTERVALS, seed=1, rate=2.0,
        mix=ClientMix(submit=0, quote=1, cancel=0, query=0),
    ).trace("open")
    assert kinds(quote_only) == {"Quote"}
    query_only = LoadGenerator(
        NUM_INTERVALS, seed=1, rate=2.0,
        mix=ClientMix(submit=0, quote=0, cancel=0, query=1),
    ).trace("open")
    assert kinds(query_only) == {"QueryTelemetry"}
    # All-cancel downgrades to quotes until something was submitted.
    cancel_only = LoadGenerator(
        NUM_INTERVALS, seed=1, rate=2.0,
        mix=ClientMix(submit=0, quote=0, cancel=1, query=0),
    ).trace("open")
    assert kinds(cancel_only) == {"Quote"}


def test_solve_on_miss_flag_propagates():
    trace = LoadGenerator(
        NUM_INTERVALS, seed=1, rate=3.0, quote_solve_on_miss=True,
        mix=ClientMix(submit=0, quote=1, cancel=0, query=0),
    ).trace("open")
    assert all(
        r.request.solve_on_miss
        for r in trace.requests
        if isinstance(r.request, Quote)
    )


# ----------------------------------------------------------------------
# Live closed loop (asyncio)
# ----------------------------------------------------------------------
def test_run_closed_serves_every_client_request():
    generator = LoadGenerator(
        NUM_INTERVALS, seed=3, clients=3, think=1, requests_per_client=5,
    )
    gateway = Gateway(make_engine())
    gateway.start(seed=9)
    responses = asyncio.run(generator.run_closed(gateway))
    assert 0 < len(responses) <= 15
    assert all(r.status in ("ok", "rejected", "error") for r in responses)
    # The gateway observed a latency sample per response.
    assert gateway.telemetry.latency.count >= len(responses)
    assert gateway.telemetry.total_requests >= len(responses)


def test_run_closed_respects_admission_budget():
    generator = LoadGenerator(
        NUM_INTERVALS, seed=3, clients=4, think=0, requests_per_client=8,
        mix=ClientMix(submit=1.0, quote=0.0, cancel=0.0, query=0.0),
    )
    gateway = Gateway(make_engine(), max_live=2)
    gateway.start(seed=9)
    responses = asyncio.run(generator.run_closed(gateway))
    rejected = [r for r in responses if r.status == "rejected"]
    assert rejected, "a 2-campaign budget must bounce an all-submit mix"
    assert all("budget exhausted" in r.detail for r in rejected)
