"""Gateway behaviour: reads, drains, backpressure, revival, the async facade."""

from __future__ import annotations

import asyncio

import pytest

from repro.engine.campaign import CampaignSpec
from repro.engine.workload import DEFAULT_TEMPLATES
from repro.serve import (
    Cancel,
    Gateway,
    QueryTelemetry,
    Quote,
    SubmitCampaign,
)
from tests.serve.conftest import NUM_INTERVALS, make_engine


def spec(cid: str, submit: int = 0, tasks: int = 10) -> CampaignSpec:
    return CampaignSpec(
        campaign_id=cid, kind="deadline", num_tasks=tasks,
        submit_interval=submit, horizon_intervals=6, max_price=25,
    )


def budget_spec(cid: str, submit: int = 0) -> CampaignSpec:
    return CampaignSpec(
        campaign_id=cid, kind="budget", num_tasks=10,
        submit_interval=submit, horizon_intervals=6, budget=120.0,
    )


def started_gateway(**kwargs) -> Gateway:
    gateway = Gateway(make_engine(), **kwargs)
    gateway.start(seed=3)
    return gateway


# ----------------------------------------------------------------------
# Lifecycle
# ----------------------------------------------------------------------
def test_requests_require_a_started_session():
    gateway = Gateway(make_engine())
    with pytest.raises(RuntimeError, match="start"):
        gateway.offer(QueryTelemetry())


def test_start_twice_fails():
    gateway = started_gateway()
    with pytest.raises(RuntimeError, match="already started"):
        gateway.start(seed=4)


def test_bad_admission_config_rejected():
    with pytest.raises(ValueError, match="max_live"):
        Gateway(make_engine(), max_live=0)


# ----------------------------------------------------------------------
# Mutating requests coalesce at tick boundaries
# ----------------------------------------------------------------------
def test_submissions_apply_at_the_next_boundary():
    gateway = started_gateway()
    ticket = gateway.offer(SubmitCampaign(spec("a")), client="c1")
    assert not ticket.done  # queued, not yet applied
    report = gateway.step()
    assert ticket.done and ticket.response.ok
    assert ticket.response.payload["campaign_id"] == "a"
    assert report.admitted == 1


def test_submission_validation_rejects_deterministically():
    gateway = started_gateway()
    gateway.offer(SubmitCampaign(spec("dup")))
    late = gateway.offer(SubmitCampaign(
        spec("late", submit=NUM_INTERVALS)))  # horizon overrun
    duplicate = gateway.offer(SubmitCampaign(spec("dup")))
    gateway.step()
    assert late.response.status == "rejected"
    assert "beyond the stream" in late.response.detail
    assert duplicate.response.status == "rejected"
    assert "duplicate" in duplicate.response.detail


def test_live_campaign_budget_backpressure():
    gateway = started_gateway(max_live=2)
    tickets = [
        gateway.offer(SubmitCampaign(spec(f"c{i}"))) for i in range(4)
    ]
    gateway.step()
    statuses = [t.response.status for t in tickets]
    assert statuses == ["ok", "ok", "rejected", "rejected"]
    assert all(
        "budget exhausted" in t.response.detail
        for t in tickets[2:]
    )


def test_exactly_max_live_campaigns_are_admittable():
    """The budget boundary is exact: slot max_live fills, max_live+1 bounces.

    Regression for the occupancy audit: the ``>=`` comparison against
    ``num_live + num_pending`` must leave *exactly* ``max_live`` slots
    admittable in one drain batch — an off-by-one in either direction
    changes which request bounces.
    """
    gateway = started_gateway(max_live=3)
    tickets = [
        gateway.offer(SubmitCampaign(spec(f"c{i}"))) for i in range(3)
    ]
    overflow = gateway.offer(SubmitCampaign(spec("c3")))
    gateway.step()
    assert [t.response.status for t in tickets] == ["ok"] * 3
    assert overflow.response.status == "rejected"
    assert "3 live+pending >= 3" in overflow.response.detail


def test_max_live_counts_in_batch_pending_submissions():
    """Future-dated submissions occupy budget within the same drain batch.

    A campaign with ``submit_interval`` in the future lands in the
    engine's *pending* set, not the live set — but it must still count
    against ``max_live`` for later submissions drained at the same
    boundary, or one batch could overshoot the budget.
    """
    gateway = started_gateway(max_live=2)
    future = gateway.offer(SubmitCampaign(spec("future", submit=10)))
    live = gateway.offer(SubmitCampaign(spec("live")))
    overflow = gateway.offer(SubmitCampaign(spec("extra")))
    gateway.step()
    assert future.response.ok and live.response.ok
    assert overflow.response.status == "rejected"
    assert "2 live+pending >= 2" in overflow.response.detail


def test_max_live_slots_reopen_after_retirement():
    """Occupancy is re-audited at each drain boundary: retired slots free up."""
    gateway = started_gateway(max_live=1)
    gateway.offer(SubmitCampaign(spec("first", tasks=4)))
    gateway.step()
    while gateway.core.num_live + gateway.core.num_pending:
        assert gateway.step() is not None
    refill = gateway.offer(SubmitCampaign(spec("second", submit=12)))
    gateway.step()
    assert refill.response.ok


def test_queue_depth_backpressure_is_immediate():
    gateway = started_gateway(max_queue=2)
    accepted = [gateway.offer(SubmitCampaign(spec(f"c{i}"))) for i in range(2)]
    bounced = gateway.offer(SubmitCampaign(spec("c2")))
    assert bounced.done and bounced.response.status == "rejected"
    assert "queue full" in bounced.response.detail
    assert not accepted[0].done  # the queued ones wait for the boundary


def test_cancel_statuses():
    gateway = started_gateway()
    gateway.offer(SubmitCampaign(spec("live", submit=0)))
    gateway.offer(SubmitCampaign(spec("pending", submit=20)))
    gateway.step()
    cancel_live = gateway.offer(Cancel("live"))
    cancel_pending = gateway.offer(Cancel("pending"))
    cancel_unknown = gateway.offer(Cancel("nope"))
    gateway.step()
    assert cancel_live.response.ok
    assert cancel_live.response.payload["result"] == "cancelled"
    assert cancel_pending.response.payload["result"] == "dropped"
    assert cancel_unknown.response.status == "error"
    assert "unknown campaign" in cancel_unknown.response.detail
    # Cancelling a retired campaign is a deterministic no-op.
    retired = gateway.offer(Cancel("live"))
    gateway.step()
    assert retired.response.ok
    assert retired.response.payload["result"] == "retired"


def test_idle_engine_is_revived_by_a_queued_submission():
    gateway = started_gateway()
    assert gateway.step() is None  # nothing live, nothing queued
    gateway.offer(SubmitCampaign(spec("wake", submit=2)))
    report = gateway.step()  # revival drain, then the tick runs
    assert report is not None and report.idle  # idling toward interval 2
    assert gateway.core.num_pending == 1


def test_close_rejects_queued_requests():
    gateway = started_gateway()
    ticket = gateway.offer(SubmitCampaign(spec("a")))
    gateway.close()
    assert ticket.done and ticket.response.status == "rejected"
    assert "closed" in ticket.response.detail


# ----------------------------------------------------------------------
# Reads: immediate, side-effect free
# ----------------------------------------------------------------------
def test_quote_miss_then_cached_hit():
    gateway = started_gateway()
    shape = spec("any")
    miss = gateway.offer(Quote(shape))
    assert miss.done and miss.response.ok
    assert miss.response.payload == {
        "kind": "deadline", "cached": False, "solved": False, "price": None,
    }
    # Admit a same-shaped campaign; its solved policy lands in the cache.
    gateway.offer(SubmitCampaign(spec("real")))
    gateway.step()
    hit = gateway.offer(Quote(shape))
    assert hit.response.payload["cached"] is True
    assert hit.response.payload["price"] is not None


def test_quote_solve_on_miss_prices_without_storing():
    gateway = started_gateway()
    stats_before = gateway.engine.cache.stats
    solved = gateway.offer(Quote(spec("s"), solve_on_miss=True))
    payload = solved.response.payload
    assert payload["solved"] is True and payload["price"] is not None
    # Nothing was stored and no lookup was counted: quoting is invisible
    # to the admission path's cache accounting.
    assert gateway.engine.cache.stats == stats_before
    budget = gateway.offer(Quote(budget_spec("b"), solve_on_miss=True))
    assert budget.response.payload["price"] is not None
    assert gateway.engine.cache.stats == stats_before


def test_query_telemetry_summary_and_window():
    gateway = started_gateway()
    gateway.offer(SubmitCampaign(spec("a")))
    gateway.step()
    gateway.step()
    summary = gateway.offer(QueryTelemetry()).response
    assert summary.payload["ticks_recorded"] == 2
    assert "window" not in summary.payload
    windowed = gateway.offer(QueryTelemetry(last=1)).response
    window = windowed.payload["window"]
    assert len(window["engine"]["interval"]) == 1
    assert len(window["serve"]["queue_depth"]) == 1


# ----------------------------------------------------------------------
# Serving telemetry
# ----------------------------------------------------------------------
def test_serve_series_track_the_drains():
    gateway = started_gateway(max_live=1)
    gateway.offer(SubmitCampaign(spec("a")))
    gateway.offer(SubmitCampaign(spec("b")))
    gateway.offer(Cancel("missing-before-boundary"))
    gateway.step()
    serve = gateway.telemetry.serve
    assert serve["queue_depth"][-1] == 3
    assert serve["drained"][-1] == 3
    assert serve["admitted"][-1] == 1
    assert serve["rejected"][-1] == 1  # budget bounced the second submit
    gateway.offer(QueryTelemetry())
    gateway.step()
    assert serve["reads"][-1] == 1


# ----------------------------------------------------------------------
# The asyncio facade
# ----------------------------------------------------------------------
def test_async_request_and_serve_loop():
    async def drill():
        gateway = started_gateway()
        read = await gateway.request(QueryTelemetry(), client="r")
        assert read.ok  # reads resolve without the serve loop

        serve_task = asyncio.ensure_future(gateway.serve())
        submitted = await gateway.request(
            SubmitCampaign(spec("x")), client="w"
        )
        assert submitted.ok
        gateway.stop()
        ticks = await serve_task
        assert ticks >= 1
        return gateway

    gateway = asyncio.run(drill())
    assert gateway.telemetry.responses["ok"] == 2


def test_serve_flushes_queue_on_stop():
    async def drill():
        gateway = started_gateway()
        serve_task = asyncio.ensure_future(
            gateway.serve(max_ticks=0)  # exits before any boundary
        )
        ticket = gateway.offer(SubmitCampaign(spec("x")))
        await serve_task
        return ticket

    ticket = asyncio.run(drill())
    assert ticket.done and ticket.response.status == "rejected"
    assert "stopped" in ticket.response.detail


def test_serve_stop_when_idle_returns():
    async def drill():
        gateway = started_gateway()
        return await gateway.serve(stop_when_idle=True)

    assert asyncio.run(drill()) == 0
