"""GatewayFleet: N frontiers, one engine — the fleet determinism contract.

The acceptance criterion for the multi-tenant PR: a tenant-tagged trace
replayed through a 2-gateway fleet over a 3-shard engine produces engine
outcomes and serialized telemetry **bit-identical** to the single-gateway
replay and to the same mutations issued directly against the engine API —
and the fleet checkpoints/resumes mid-replay exactly like a solo gateway.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.engine.checkpoint import CheckpointError
from repro.serve import (
    Gateway,
    GatewayFleet,
    LoadGenerator,
    QueryTelemetry,
    RequestTrace,
    Snapshot,
    SubmitCampaign,
    TenantQuota,
    TimedRequest,
)
from tests.serve.conftest import NUM_INTERVALS, make_engine
from tests.serve.test_gateway_determinism import SEED, outcome_map, run_direct
from tests.serve.test_tenants import spec

TENANTS = ("acme", "beta", "gamma")
TENANT_TRACE = LoadGenerator(
    NUM_INTERVALS, seed=11, clients=3, rate=2.0, think=1, tenants=TENANTS,
).trace("open")


def run_fleet(
    trace: RequestTrace, num_shards: int, num_gateways: int, **kwargs
) -> GatewayFleet:
    fleet = GatewayFleet(make_engine(num_shards), num_gateways, **kwargs)
    fleet.start(seed=SEED)
    tickets = fleet.replay(trace)
    assert all(t.done for t in tickets)  # no request lost across members
    return fleet


def run_solo(trace: RequestTrace, num_shards: int) -> Gateway:
    gateway = Gateway(make_engine(num_shards))
    gateway.start(seed=SEED)
    gateway.replay(trace)
    return gateway


# ----------------------------------------------------------------------
# The determinism contract
# ----------------------------------------------------------------------
@pytest.mark.parametrize("num_shards", [0, 3], ids=["pooled", "sharded3"])
def test_fleet_equals_single_gateway_and_direct(num_shards):
    fleet = run_fleet(TENANT_TRACE, num_shards, num_gateways=2)
    solo = run_solo(TENANT_TRACE, num_shards)
    direct = run_direct(TENANT_TRACE, num_shards)

    fleet_result = fleet.core.result()
    assert outcome_map(fleet_result) == outcome_map(solo.core.result())
    assert outcome_map(fleet_result) == outcome_map(direct)
    assert fleet_result.cache_stats == direct.cache_stats
    # The serialized serving telemetry — per-tenant series included — is
    # byte-identical to the solo gateway's.
    assert fleet.telemetry.to_dict() == solo.telemetry.to_dict()


def test_fleet_invariant_across_member_counts():
    by_count = {
        n: run_fleet(TENANT_TRACE, 0, num_gateways=n).telemetry.to_dict()
        for n in (1, 2, 3)
    }
    assert by_count[1] == by_count[2] == by_count[3]


def test_fleet_replay_is_reproducible():
    first = run_fleet(TENANT_TRACE, 3, num_gateways=2)
    second = run_fleet(TENANT_TRACE, 3, num_gateways=2)
    assert first.telemetry.to_dict() == second.telemetry.to_dict()
    assert outcome_map(first.core.result()) == outcome_map(
        second.core.result()
    )


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------
def test_tenant_routing_is_stable():
    fleet = GatewayFleet(make_engine(), 3)
    fleet.start(seed=SEED)
    owner = fleet.member_for("acme")
    assert all(fleet.member_for("acme") is owner for _ in range(5))
    ticket = fleet.offer(SubmitCampaign(spec("a0")), tenant="acme")
    assert owner.queue.depth == 1
    assert owner.queue.snapshot()[0] is ticket
    assert fleet.queue_depth == 1
    fleet.close()
    assert ticket.response.status == "rejected"


def test_fleet_size_must_be_positive():
    with pytest.raises(ValueError, match="num_gateways"):
        GatewayFleet(make_engine(), 0)


def test_fleet_requires_a_started_session():
    fleet = GatewayFleet(make_engine(), 2)
    with pytest.raises(RuntimeError, match="start"):
        fleet.offer(QueryTelemetry())


# ----------------------------------------------------------------------
# Shared quota ledger
# ----------------------------------------------------------------------
def test_fleet_quota_is_tenant_wide_and_settles_once():
    fleet = GatewayFleet(
        make_engine(), 2,
        tenant_quotas={"acme": TenantQuota(max_live=1)},
    )
    fleet.start(seed=SEED)
    first = fleet.offer(SubmitCampaign(spec("a0", tasks=4)), tenant="acme")
    bounced = fleet.offer(SubmitCampaign(spec("a1")), tenant="acme")
    fleet.step()
    assert first.response.ok
    assert bounced.response.status == "rejected"
    assert bounced.response.payload == {"tenant": "acme", "quota": "max_live"}
    # Drive the campaign to retirement: the shared ledger settles the
    # tick once (not once per member) and the budget slot comes back.
    while fleet.ledger.live_count("acme"):
        assert fleet.step() is not None
    retry = fleet.offer(
        SubmitCampaign(spec("a1", submit=12)), tenant="acme"
    )
    fleet.step()
    assert retry.response.ok


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------
def test_fleet_checkpoint_resumes_mid_replay_bit_identically(tmp_path):
    bundle = tmp_path / "fleet-bundle"
    uninterrupted = run_fleet(TENANT_TRACE, 3, num_gateways=2)

    fleet = GatewayFleet(make_engine(3), 2)
    fleet.start(seed=SEED)

    def snap_at_14(f: GatewayFleet):
        if f.clock >= 14:
            f.save(bundle)
            return False
        return None

    fleet.replay(TENANT_TRACE, on_tick=snap_at_14)
    assert fleet.replay_remaining  # stopped mid-trace

    resumed = GatewayFleet.resume(bundle)
    assert resumed.num_gateways == 2
    assert resumed.replay_remaining == fleet.replay_remaining
    resumed.resume_replay()

    assert resumed.telemetry.to_dict() == uninterrupted.telemetry.to_dict()
    assert outcome_map(resumed.core.result()) == outcome_map(
        uninterrupted.core.result()
    )


def test_snapshot_request_through_a_member_saves_the_fleet(tmp_path):
    """A queued Snapshot drained by any member checkpoints the whole fleet."""
    bundle = str(tmp_path / "bundle")
    trace = TENANT_TRACE.merge(
        RequestTrace(
            "snap",
            (TimedRequest(14, "ops", Snapshot(bundle), tenant="beta"),),
        )
    )
    uninterrupted = GatewayFleet(make_engine(), 2)
    uninterrupted.start(seed=SEED)
    tickets = uninterrupted.replay(trace)
    snapshot_response = next(
        t.response for t in tickets if isinstance(t.request, Snapshot)
    )
    assert snapshot_response.ok
    assert snapshot_response.payload["path"] == bundle

    resumed = GatewayFleet.resume(bundle)
    resumed.resume_replay()
    assert resumed.telemetry.to_dict() == uninterrupted.telemetry.to_dict()
    assert outcome_map(resumed.core.result()) == outcome_map(
        uninterrupted.core.result()
    )


def test_fleet_resume_rejects_solo_gateway_bundles(tmp_path):
    gateway = Gateway(make_engine())
    gateway.start(seed=SEED)
    gateway.offer(SubmitCampaign(spec("a0")))
    gateway.step()
    gateway.save(tmp_path / "solo")
    with pytest.raises(CheckpointError, match="serving-fleet state"):
        GatewayFleet.resume(tmp_path / "solo")


def test_fleet_resume_replay_without_trace_fails():
    fleet = GatewayFleet(make_engine(), 2)
    fleet.start(seed=SEED)
    with pytest.raises(RuntimeError, match="no replay to resume"):
        fleet.resume_replay()


# ----------------------------------------------------------------------
# Shared observability sinks
# ----------------------------------------------------------------------
def test_fleet_event_log_replays_bit_identically_through_a_solo_gateway(
    tmp_path,
):
    """The fleet's shared log is a complete, replayable run history.

    Member queues mint ticket seqs independently, so raw log bytes are
    not comparable to a solo run's — the contract is *replay
    equivalence*: log append order is the authoritative fleet-wide
    arrival order, so the trace reconstructed from the shared log,
    replayed through a solo gateway, reproduces the solo run's telemetry
    and outcomes bit-identically.
    """
    from repro.obs import EventLog, MetricsRegistry, Tracer
    from repro.obs.recovery import reconstruct_trace

    log_path = tmp_path / "fleet-events.sqlite"
    log = EventLog(log_path)
    fleet = GatewayFleet(
        make_engine(), 3,
        event_log=log, tracer=Tracer(), metrics=MetricsRegistry(),
    )
    fleet.start(seed=SEED)
    fleet.replay(TENANT_TRACE)
    log.sync()

    reconstructed = reconstruct_trace(log_path)
    assert len(reconstructed.requests) == len(TENANT_TRACE.requests)

    replayed = Gateway(make_engine())
    replayed.start(seed=SEED)
    replayed.replay(reconstructed)
    solo = run_solo(TENANT_TRACE, 0)

    assert replayed.telemetry.to_dict() == solo.telemetry.to_dict()
    assert outcome_map(replayed.core.result()) == outcome_map(
        solo.core.result()
    )
    log.close()


def test_fleet_logs_run_and_tick_rows_exactly_once(tmp_path):
    """Fleet-level bookkeeping is recorded once per tick, not per member."""
    from repro.obs import EventLog

    log_path = tmp_path / "events.sqlite"
    log = EventLog(log_path)
    fleet = GatewayFleet(make_engine(), 2, event_log=log)
    fleet.start(seed=SEED)
    fleet.offer(SubmitCampaign(spec("a0")), tenant="acme")
    fleet.step()
    fleet.step()
    fleet.close()
    log.close()  # fleet.close() flushes asynchronously; wait for the commit

    events = EventLog.read(log_path).events()
    starts = [
        e for e in events
        if e.kind == "run" and e.payload.get("action") == "start"
    ]
    assert len(starts) == 1
    assert starts[0].payload["gateways"] == 2
    assert [e.tick for e in events if e.kind == "tick"] == [0, 1]
    assert len([e for e in events if e.kind == "request"]) == 1


def test_fleet_checkpoint_records_the_event_log_high_water_mark(tmp_path):
    from repro.obs import EventLog
    from repro.obs.recovery import bundle_event_seq

    log = EventLog(tmp_path / "events.sqlite")
    fleet = GatewayFleet(make_engine(), 2, event_log=log)
    fleet.start(seed=SEED)
    fleet.offer(SubmitCampaign(spec("a0")), tenant="acme")
    fleet.step()
    bundle = fleet.save(tmp_path / "bundle")
    recorded = bundle_event_seq(bundle)
    assert recorded is not None
    # Everything logged before the save is covered by the mark; only the
    # post-save checkpoint event sits beyond it.
    log.sync()
    beyond = EventLog.read(log.path).events(since=recorded)
    assert [e.kind for e in beyond] == ["checkpoint"]

    resumed = GatewayFleet.resume(bundle, event_log=log)
    assert resumed.resumed_event_seq == recorded
    log.close()


# ----------------------------------------------------------------------
# The asyncio facade
# ----------------------------------------------------------------------
def test_fleet_async_request_and_serve_loop():
    async def drill():
        fleet = GatewayFleet(make_engine(), 2)
        fleet.start(seed=SEED)
        read = await fleet.request(QueryTelemetry(), client="r")
        assert read.ok  # reads resolve without the serve loop

        serve_task = asyncio.ensure_future(fleet.serve())
        submitted = await fleet.request(
            SubmitCampaign(spec("x")), client="w", tenant="acme"
        )
        assert submitted.ok
        fleet.stop()
        ticks = await serve_task
        assert ticks >= 1
        return fleet

    fleet = asyncio.run(drill())
    assert fleet.telemetry.responses["ok"] == 2


def test_fleet_serve_stop_when_idle_returns():
    async def drill():
        fleet = GatewayFleet(make_engine(), 2)
        fleet.start(seed=SEED)
        return await fleet.serve(stop_when_idle=True)

    assert asyncio.run(drill()) == 0
