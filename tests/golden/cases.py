"""The canonical golden-trace cases, shared by the test and the regen script.

Everything here must be deterministic: fixed stream means, fixed seeds,
fixed scenario events.  ``run_case`` returns the full golden payload —
scenario spec, deterministic result fields, telemetry — as a
JSON-normalized dict, so the comparator can diff it 1:1 against the
committed trace.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.engine import (
    ListSource,
    MarketplaceEngine,
    ShardedEngine,
    generate_workload,
    replay_outcomes,
)
from repro.engine.clock import EngineResult
from repro.market.acceptance import paper_acceptance_model
from repro.scenario import (
    CampaignChurn,
    Cancellation,
    DemandShock,
    Scenario,
    ScenarioDriver,
    canned_scenario,
)
from repro.serve import ClientMix, Gateway, LoadGenerator, RequestTrace
from repro.sim.stream import SharedArrivalStream

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent

NUM_INTERVALS = 28
SCENARIO_SEED = 17
BASE_SEED = 9

#: Case name -> engine factory kwargs.
CASES = {
    "pooled_small": {"num_shards": 0},
    "sharded3_small": {"num_shards": 3},
}

#: Served cases: a request trace replayed through the Gateway.
#: ``serve_flash_crowd`` rides the canned flash-crowd scenario with a
#: LoadGenerator client mix on top, under a tight live-campaign budget so
#: the trace exercises admission backpressure as well as quotes, reads,
#: and cancellations.
SERVE_CASES = {
    "serve_flash_crowd": {"num_shards": 0, "max_live": 8},
}


def golden_scenario() -> Scenario:
    """Churn + shock + one cancellation, hand-pinned for trace stability."""
    return Scenario(
        name="golden-small",
        seed=SCENARIO_SEED,
        description="canonical churn + shock + cancellation trace case",
        events=(
            CampaignChurn(start=0, stop=20, every=7, per_wave=1,
                          templates=("dl-small", "bg-lean"),
                          adaptive_fraction=0.5, prefix="g"),
            DemandShock(start=10, stop=16, factor=2.0),
            # Cancels the first churn campaign mid-flight (id pinned: the
            # churn event sits at index 0 under SCENARIO_SEED).
            Cancellation(tick=4, campaign_id="g0-000-00"),
        ),
    )


def make_stream() -> SharedArrivalStream:
    means = 650.0 + 200.0 * np.sin(np.linspace(0.0, 2.0 * np.pi, NUM_INTERVALS))
    return SharedArrivalStream(means)


def build_driver(
    case: str,
    executor: str = "serial",
    streaming: bool = False,
    outcomes_path: pathlib.Path | None = None,
) -> ScenarioDriver:
    """Construct one canonical case's engine + driver (not yet started).

    ``executor`` overrides the sharded cases' executor (the committed
    traces are pinned under ``"serial"``; the executor-matrix suite and
    the regen guard re-run them under the others to prove invariance).
    Pooled cases have no executor and ignore the override.

    ``streaming=True`` feeds the same workload through a lazy
    ``ListSource`` and runs with a streaming outcome sink (no
    materialized outcome list; full fidelity via the ``outcomes_path``
    spill) — the memory-mode arm of the invariance proof.
    """
    num_shards = CASES[case]["num_shards"]
    if num_shards:
        engine: MarketplaceEngine | ShardedEngine = ShardedEngine(
            make_stream(), paper_acceptance_model(), num_shards=num_shards,
            executor=executor, planning="stationary",
        )
    else:
        engine = MarketplaceEngine(
            make_stream(), paper_acceptance_model(), planning="stationary"
        )
    specs = generate_workload(4, NUM_INTERVALS, seed=BASE_SEED)
    if streaming:
        engine.submit_source(ListSource(specs))
        return ScenarioDriver(
            engine, golden_scenario(),
            keep_outcomes=False, outcomes_path=outcomes_path,
        )
    engine.submit(specs)
    return ScenarioDriver(engine, golden_scenario())


def result_to_dict(result: EngineResult, outcomes=None) -> dict:
    """The deterministic slice of an EngineResult (no wall-clock fields).

    ``outcomes`` substitutes an externally reconstructed outcome list —
    how a streaming run's spill replay slots into the same payload shape.
    """
    if outcomes is None:
        outcomes = result.outcomes
    return {
        "num_shards": result.num_shards,
        "intervals_run": result.intervals_run,
        "total_arrivals": result.total_arrivals,
        "total_considered": result.total_considered,
        "total_accepted": result.total_accepted,
        "max_concurrent": result.max_concurrent,
        "cache": {
            "hits": result.cache_stats.hits,
            "misses": result.cache_stats.misses,
            "evictions": result.cache_stats.evictions,
            "entries": result.cache_stats.entries,
        },
        "outcomes": [
            {
                "campaign_id": o.spec.campaign_id,
                "kind": o.spec.kind,
                "completed": o.completed,
                "remaining": o.remaining,
                "total_cost": o.total_cost,
                "penalty": o.penalty,
                "finished_interval": o.finished_interval,
                "cancelled": o.cancelled,
                "cache_hit": o.cache_hit,
                "num_solves": o.num_solves,
            }
            for o in sorted(outcomes, key=lambda o: o.spec.campaign_id)
        ],
    }


def run_case(case: str, executor: str = "serial", streaming: bool = False) -> dict:
    """Run one canonical case and return its JSON-normalized golden payload.

    ``streaming=True`` runs the case with a lazy source and a streaming
    sink, rebuilding the per-campaign outcome block from the JSONL spill
    — the payload must byte-compare against the materialized run's, which
    is exactly the invariance ``regen_golden.py`` guards.
    """
    if streaming:
        import tempfile

        with tempfile.TemporaryDirectory() as td:
            spill = pathlib.Path(td) / "outcomes.jsonl"
            driver = build_driver(
                case, executor=executor, streaming=True, outcomes_path=spill
            )
            result = driver.run()
            outcomes = list(replay_outcomes(spill))
        assert result.outcomes == ()  # nothing was materialized
        payload = {
            "case": case,
            "scenario": driver.scenario.to_dict(),
            "result": result_to_dict(result, outcomes=outcomes),
            "telemetry": driver.telemetry.to_dict(),
        }
        return json.loads(json.dumps(payload))
    driver = build_driver(case, executor=executor)
    result = driver.run()
    payload = {
        "case": case,
        "scenario": driver.scenario.to_dict(),
        "result": result_to_dict(result),
        "telemetry": driver.telemetry.to_dict(),
    }
    # Round-trip through JSON so tuples/np scalars normalize exactly the
    # way the committed trace file stores them.
    return json.loads(json.dumps(payload))


def serve_trace() -> RequestTrace:
    """The canonical served workload: flash-crowd traffic + a client mix."""
    scenario = canned_scenario("flash-crowd", NUM_INTERVALS, seed=SCENARIO_SEED)
    clients = LoadGenerator(
        NUM_INTERVALS,
        seed=SCENARIO_SEED,
        clients=3,
        rate=1.5,
        mix=ClientMix(submit=0.4, quote=0.3, cancel=0.15, query=0.15),
    ).trace("open")
    return RequestTrace.from_scenario(scenario, NUM_INTERVALS).merge(
        clients, name="serve-flash-crowd"
    )


def build_serve_gateway(
    case: str,
    num_gateways: int = 1,
    tenant_weights: dict[str, float] | None = None,
    sinks: dict | None = None,
):
    """Construct one served case's engine + front (session not yet open).

    ``num_gateways > 1`` builds a :class:`~repro.serve.fleet.GatewayFleet`
    over the same engine — the fleet arm of the golden invariance guard.
    ``sinks`` passes observability keyword arguments (``event_log`` /
    ``tracer`` / ``metrics``) straight through — the instrumented arm of
    the same guard.
    """
    from repro.serve import GatewayFleet

    sinks = sinks or {}
    num_shards = SERVE_CASES[case]["num_shards"]
    if num_shards:
        engine: MarketplaceEngine | ShardedEngine = ShardedEngine(
            make_stream(), paper_acceptance_model(), num_shards=num_shards,
            executor="serial", planning="stationary",
        )
    else:
        engine = MarketplaceEngine(
            make_stream(), paper_acceptance_model(), planning="stationary"
        )
    if num_gateways > 1:
        return GatewayFleet(
            engine, num_gateways,
            max_live=SERVE_CASES[case]["max_live"],
            tenant_weights=tenant_weights,
            **sinks,
        )
    return Gateway(
        engine,
        max_live=SERVE_CASES[case]["max_live"],
        tenant_weights=tenant_weights,
        **sinks,
    )


def tenant_tagged_trace(tenants: tuple[str, ...]) -> RequestTrace:
    """The canonical served trace with tenant ids assigned round-robin."""
    import dataclasses

    trace = serve_trace()
    return RequestTrace(
        trace.name,
        tuple(
            dataclasses.replace(timed, tenant=tenants[i % len(tenants)])
            for i, timed in enumerate(trace.requests)
        ),
    )


def run_serve_case(
    case: str,
    tenants: tuple[str, ...] | None = None,
    num_gateways: int = 1,
    instrumented: bool = False,
) -> dict:
    """Run one served case; payload = trace + result + serving telemetry.

    ``tenants`` replays the tenant-tagged twin of the trace under fair
    scheduling (weights 2:1:...), and ``num_gateways`` routes it through
    a fleet — neither may change the engine ``result`` block, which is
    what the regen guard verifies before rewriting any golden.
    ``instrumented`` wires every observability layer the ops plane rides
    on — event log, tracer, metrics registry with phase timings, and a
    live :class:`~repro.obs.ops.OpsServer` scraped at tick boundaries —
    and must leave the payload **byte-identical** to a dark run: that is
    the serialization-inert contract the regen guard enforces.
    """
    scenario = canned_scenario("flash-crowd", NUM_INTERVALS, seed=SCENARIO_SEED)
    weights = None
    if tenants:
        weights = {t: float(2 if i == 0 else 1) for i, t in enumerate(tenants)}
        trace = tenant_tagged_trace(tenants)
    else:
        trace = serve_trace()
    sinks = None
    cleanup = []
    on_tick = None
    if instrumented:
        import shutil
        import tempfile
        import urllib.error
        import urllib.request

        from repro.obs import EventLog, MetricsRegistry, Tracer
        from repro.obs.ops import OpsServer

        tmp = tempfile.mkdtemp(prefix="repro-golden-obs-")
        event_log = EventLog(pathlib.Path(tmp) / "events.sqlite")
        metrics = MetricsRegistry()
        sinks = {
            "event_log": event_log,
            "tracer": Tracer(),
            "metrics": metrics,
        }
        cleanup = [event_log.close, lambda: shutil.rmtree(tmp)]
    gateway = build_serve_gateway(
        case, num_gateways=num_gateways, tenant_weights=weights, sinks=sinks
    )
    if instrumented:
        ops = OpsServer(gateway, metrics=metrics, event_log=sinks["event_log"])
        ops.start_in_thread()
        cleanup.insert(0, ops.close)
        scrapes = {"left": 3}

        def on_tick(_gw):
            # Scrape a live endpoint mix at a few tick boundaries: the
            # guard must hold under concurrent scraping, not just with a
            # passive listener.
            if scrapes["left"] > 0:
                scrapes["left"] -= 1
                for path in ("/metrics", "/readyz", "/tenants", "/slo"):
                    try:
                        urllib.request.urlopen(
                            ops.address + path, timeout=5
                        ).read()
                    except urllib.error.HTTPError:
                        pass  # a 503 is still a served scrape
            return True

    try:
        gateway.start(
            seed=SCENARIO_SEED,
            rate_multipliers=scenario.compile(NUM_INTERVALS).rate_multipliers,
        )
        gateway.replay(trace, on_tick=on_tick)
        core = gateway.core
        assert core is not None
        payload = {
            "case": case,
            "trace": trace.to_dict(),
            "result": result_to_dict(core.result()),
            "telemetry": gateway.telemetry.to_dict(),
        }
        return json.loads(json.dumps(payload))
    finally:
        for step in cleanup:
            step()


def run_any_case(case: str) -> dict:
    """Dispatch a case name to its runner (scenario-driven or served)."""
    if case in SERVE_CASES:
        return run_serve_case(case)
    return run_case(case)


def trace_path(case: str) -> pathlib.Path:
    """Where the committed golden trace for ``case`` lives."""
    return GOLDEN_DIR / f"{case}.json"


#: Window width the golden analytics queries are pinned at.
ANALYTICS_WINDOW = 8


def analytics_path() -> pathlib.Path:
    """Where the committed golden analytics results live."""
    return GOLDEN_DIR / "analytics_flash_crowd.json"


def run_analytics_case() -> dict:
    """Canned analytics over the committed ``serve_flash_crowd`` trace.

    Loads the golden served run's telemetry into an
    :class:`~repro.obs.analytics.AnalyticsDB` and runs every canned
    query the telemetry tables can answer at :data:`ANALYTICS_WINDOW`.
    Input and queries are both pinned, so the result is deterministic —
    a golden trace for the SQL layer itself.  (Event-log queries are
    exercised by live tests; a sqlite file is not a reviewable golden
    artifact the way JSON is.)
    """
    from repro.obs.analytics import AnalyticsDB, canned_queries

    telemetry = json.loads(trace_path("serve_flash_crowd").read_text())[
        "telemetry"
    ]
    queries = {}
    with AnalyticsDB() as db:
        db.load_telemetry(telemetry)
        for query in canned_queries():
            if set(query.requires) <= db.loaded:
                columns, rows = db.run(query.name, window=ANALYTICS_WINDOW)
                queries[query.name] = {
                    "columns": list(columns),
                    "rows": [list(row) for row in rows],
                }
    return json.loads(
        json.dumps({"window": ANALYTICS_WINDOW, "queries": queries})
    )
