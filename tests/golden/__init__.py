"""Golden-trace regression suite: canonical scenario runs, committed.

The JSON traces in this directory pin the exact telemetry and result of
two small canonical scenario runs (one pooled, one 3-shard).  The
comparator test recomputes them and fails on any byte-level drift; after
an *intentional* engine-behaviour change, regenerate with
``make regen-golden`` and review the diff like any other code change.
"""
