"""Golden-trace comparator: recompute the canonical runs, diff byte-level.

Any engine-behaviour drift — draw order, routing, cache accounting,
cancellation bookkeeping, telemetry fields — lands here first.  If the
change is intentional, regenerate with ``make regen-golden`` and commit
the reviewed diff; if it is not, this failure just caught a regression
the aggregate-level tests could miss.
"""

from __future__ import annotations

import json

import pytest

from tests.golden.cases import (
    CASES,
    SERVE_CASES,
    run_any_case,
    trace_path,
)


def _first_divergence(expected, actual, path="$"):
    """Human-readable pointer to the first differing leaf."""
    if type(expected) is not type(actual):
        return f"{path}: type {type(expected).__name__} != {type(actual).__name__}"
    if isinstance(expected, dict):
        for key in expected.keys() | actual.keys():
            if key not in expected or key not in actual:
                return f"{path}.{key}: present on one side only"
            hit = _first_divergence(expected[key], actual[key], f"{path}.{key}")
            if hit:
                return hit
        return None
    if isinstance(expected, list):
        if len(expected) != len(actual):
            return f"{path}: length {len(expected)} != {len(actual)}"
        for i, (e, a) in enumerate(zip(expected, actual)):
            hit = _first_divergence(e, a, f"{path}[{i}]")
            if hit:
                return hit
        return None
    if expected != actual:
        return f"{path}: {expected!r} != {actual!r}"
    return None


@pytest.mark.parametrize("case", sorted(CASES) + sorted(SERVE_CASES))
def test_trace_matches_committed_golden(case):
    path = trace_path(case)
    assert path.is_file(), (
        f"golden trace {path.name} is missing; generate it with "
        "`make regen-golden` and commit the file"
    )
    expected = json.loads(path.read_text())
    actual = run_any_case(case)
    if expected != actual:
        divergence = _first_divergence(expected, actual)
        pytest.fail(
            f"golden trace {path.name} diverged at {divergence}.  If this "
            "change is intentional, run `make regen-golden` and commit the "
            "reviewed diff."
        )


def test_pooled_and_sharded_traces_share_the_scenario():
    """Both canonical cases run the same spec — only the engine differs."""
    pooled = json.loads(trace_path("pooled_small").read_text())
    sharded = json.loads(trace_path("sharded3_small").read_text())
    assert pooled["scenario"] == sharded["scenario"]
    assert pooled["result"]["num_shards"] == 1
    assert sharded["result"]["num_shards"] == 3


def test_golden_traces_exercise_all_three_stressors():
    """The canonical runs actually contain churn, a shock, a cancellation."""
    for case in sorted(CASES):
        trace = json.loads(trace_path(case).read_text())
        series = trace["telemetry"]["series"]
        assert max(series["rate_factor"]) > 1.0, f"{case}: no demand shock"
        assert sum(series["cancelled"]) >= 1, f"{case}: no cancellation"
        assert sum(series["admitted"]) > 4, f"{case}: no churn beyond the base"


def test_served_golden_trace_exercises_the_request_frontier():
    """The served run contains admissions, reads, AND backpressure."""
    for case in sorted(SERVE_CASES):
        trace = json.loads(trace_path(case).read_text())
        serve = trace["telemetry"]["serve"]
        engine = trace["telemetry"]["engine"]["series"]
        assert sum(serve["admitted"]) > 4, f"{case}: no served admissions"
        assert sum(serve["rejected"]) >= 1, f"{case}: no backpressure"
        assert sum(serve["reads"]) >= 1, f"{case}: no reads served"
        assert sum(serve["cancels"]) >= 1, f"{case}: no cancellations"
        assert max(engine["rate_factor"]) > 1.0, f"{case}: no flash crowd"
        # Wall-clock latency must never leak into the committed trace.
        assert "latency" not in trace["telemetry"]
