"""Integration tests: the paper's headline claims on reduced instances.

These run the same experiment code as the benchmarks, at reduced scale
(smaller batches, coarser intervals) so the whole suite stays fast while
still exercising every pipeline end to end.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.baselines import faridani_fixed_price, floor_price
from repro.experiments.common import compare_strategies
from repro.experiments.config import PaperSetting
from repro.experiments import (
    fig7b_trends,
    fig8d_granularity,
    fig9_pc_sensitivity,
    fig10_arrival_sensitivity,
    fig11_budget_completion,
)


@pytest.fixture(scope="module")
def fast_setting():
    """A cheap stand-in for the Section 5.2 defaults."""
    return PaperSetting(
        num_tasks=60, horizon_hours=6.0, interval_minutes=30.0, max_price=40
    )


class TestHeadlineComparison:
    def test_dynamic_beats_fixed(self, fast_setting):
        problem = fast_setting.problem()
        comparison = compare_strategies(problem)
        # The paper's core claim: meaningful cost reduction at equal
        # completion guarantees.
        assert comparison.cost_reduction > 0.10
        assert comparison.dynamic_outcome.expected_remaining <= 0.01

    def test_dynamic_between_floor_and_fixed(self, fast_setting):
        problem = fast_setting.problem()
        comparison = compare_strategies(problem)
        c0 = floor_price(problem)
        fixed = faridani_fixed_price(problem, 0.999).price
        average = comparison.dynamic_outcome.average_reward
        assert c0 - 0.5 <= average <= fixed


class TestTrends:
    def test_fig7b_reduced(self, fast_setting):
        result = fig7b_trends.run_fig7b(
            setting=fast_setting, n_values=(30, 120), t_values=(4.0, 10.0)
        )
        assert result.by_num_tasks[0].reduction >= result.by_num_tasks[-1].reduction - 0.02
        assert result.by_horizon[-1].reduction >= result.by_horizon[0].reduction - 0.02

    def test_fig8d_reduced(self, fast_setting):
        result = fig8d_granularity.run_fig8d(
            setting=fast_setting, interval_minutes=(30.0, 60.0, 120.0)
        )
        assert result.reward_nondecreasing()
        assert all(p.solve_seconds < 5.0 for p in result.points)


class TestSensitivity:
    def test_fig9_reduced(self, fast_setting):
        result = fig9_pc_sensitivity.run_fig9(
            setting=fast_setting,
            s_values=(15.0, 17.0),
            b_values=(-0.39, -0.19),
            m_values=(2000.0, 2600.0),
            fixed_prices=(24.0, 26.0),
        )
        # Dynamic stays near zero; the fixed baseline strands tasks.
        assert result.dynamic_max_remaining() < 1.0
        assert result.fixed_worst_remaining() > 5.0

    def test_fig10_reduced(self, fast_setting):
        result = fig10_arrival_sensitivity.run_fig10(setting=fast_setting)
        ordinary = result.ordinary_days()
        holiday = result.holiday()
        assert max(d.dynamic_remaining for d in ordinary) < 0.5
        # The holiday's consistent deviation hurts, and hurts the fixed
        # baseline more than the dynamic strategy.
        assert holiday.fixed_remaining > holiday.dynamic_remaining
        assert holiday.test_mean_rate < 0.75 * holiday.train_mean_rate


class TestBudget:
    def test_fig11_reduced(self, fast_setting):
        # Budget per task = 24c, just above this window's floor price.
        result = fig11_budget_completion.run_fig11(
            setting=fast_setting,
            budget_cents=24.0 * fast_setting.num_tasks,
            num_replications=60,
            seed=7,
        )
        summary = result.summary
        # The two-price structure around B/N and a spread-out distribution.
        assert len(result.allocation.prices) <= 2
        assert result.allocation.total_cost <= 24.0 * fast_setting.num_tasks + 1e-9
        # The W/lambda-bar linearity is a long-run approximation; a ~4-hour
        # completion starting at midnight sits below the weekly average
        # rate, so allow a generous band at this reduced scale.
        assert summary.mean == pytest.approx(result.analytic_hours, rel=0.6)
        assert summary.maximum > summary.minimum


class TestSettingVariants:
    def test_interval_count_scales_with_horizon(self, fast_setting):
        longer = dataclasses.replace(fast_setting, horizon_hours=48.0)
        assert longer.problem().num_intervals == 96
