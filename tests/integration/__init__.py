"""Test package marker (disambiguates same-basename test modules)."""
