"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestExperimentsCommand:
    def test_list(self, capsys):
        assert main(["experiments", "list"]) == 0
        out = capsys.readouterr().out
        assert "fig7a" in out and "table1" in out and "ext_adaptive" in out

    def test_run_cheap_experiment(self, capsys):
        assert main(["experiments", "run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "35" in out and "99" in out

    def test_run_unknown_id(self, capsys):
        assert main(["experiments", "run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_report_to_file(self, tmp_path, capsys):
        path = tmp_path / "report.md"
        code = main(
            ["experiments", "report", "--ids", "table1", "fig1", "--out", str(path)]
        )
        assert code == 0
        text = path.read_text()
        assert "## table1" in text and "## fig1" in text
        assert "35" in text

    def test_report_stdout(self, capsys):
        assert main(["experiments", "report", "--ids", "table1"]) == 0
        assert "## table1" in capsys.readouterr().out

    def test_report_unknown_id(self, capsys):
        assert main(["experiments", "report", "--ids", "nope"]) == 2
        assert "unknown experiment ids" in capsys.readouterr().err

    def test_report_multiple_blocks_in_order(self, capsys):
        assert main(["experiments", "report", "--ids", "fig1", "table1"]) == 0
        out = capsys.readouterr().out
        assert out.index("## fig1") < out.index("## table1")
        assert out.count("```") == 4  # one fenced block per experiment


class TestSolveDeadlineCommand:
    def test_small_instance(self, capsys):
        code = main(
            [
                "solve-deadline",
                "--num-tasks", "20",
                "--horizon-hours", "4",
                "--interval-minutes", "60",
                "--max-price", "40",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "expected cost" in out
        assert "floor price" in out

    def test_save_policy(self, tmp_path, capsys):
        path = tmp_path / "policy.npz"
        code = main(
            [
                "solve-deadline",
                "--num-tasks", "10",
                "--horizon-hours", "2",
                "--interval-minutes", "60",
                "--max-price", "40",
                "--save", str(path),
            ]
        )
        assert code == 0
        assert path.exists()
        from repro.util.serialization import load_policy

        assert load_policy(path).problem.num_tasks == 10


class TestSolveBudgetCommand:
    def test_basic(self, capsys):
        assert main(["solve-budget", "--num-tasks", "50", "--budget-cents", "600"]) == 0
        out = capsys.readouterr().out
        assert "tasks at" in out

    def test_exact_flag(self, capsys):
        code = main(
            [
                "solve-budget",
                "--num-tasks", "20",
                "--budget-cents", "200",
                "--max-price", "15",
                "--exact",
            ]
        )
        assert code == 0
        assert "exact DP" in capsys.readouterr().out

    def test_infeasible_budget(self, capsys):
        assert main(["solve-budget", "--num-tasks", "100", "--budget-cents", "10"]) == 2
        assert "cannot cover" in capsys.readouterr().err


class TestEngineCommand:
    def test_run_smoke(self, capsys):
        code = main(
            [
                "engine", "run",
                "--campaigns", "8",
                "--horizon-hours", "12",
                "--interval-minutes", "30",
                "--seed", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "campaigns     : 8" in out
        assert "hit rate" in out
        assert "campaigns/sec" in out

    def test_run_per_campaign_listing(self, capsys):
        code = main(
            [
                "engine", "run",
                "--campaigns", "6",
                "--horizon-hours", "12",
                "--interval-minutes", "30",
                "--budget-fraction", "0.5",
                "--per-campaign",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "c/task" in out
        assert "bg-" in out and "dl-" in out

    def test_run_uniform_router_and_surge(self, capsys):
        code = main(
            [
                "engine", "run",
                "--campaigns", "5",
                "--horizon-hours", "12",
                "--interval-minutes", "30",
                "--router", "uniform",
                "--planning", "sliced",
                "--surge", "1.5",
            ]
        )
        assert code == 0
        assert "router=uniform" in capsys.readouterr().out

    def test_run_rejects_bad_workload(self, capsys):
        code = main(
            [
                "engine", "run",
                "--campaigns", "4",
                "--horizon-hours", "1",  # too short for any template
                "--interval-minutes", "30",
            ]
        )
        assert code == 2
        assert "fits" in capsys.readouterr().err

    def test_run_process_executor_matches_serial(self, capsys):
        workload = [
            "engine", "run",
            "--campaigns", "6",
            "--horizon-hours", "12",
            "--interval-minutes", "30",
            "--shards", "2",
            "--seed", "3",
        ]
        assert main([*workload, "--executor", "serial"]) == 0
        serial = capsys.readouterr().out
        assert main([*workload, "--executor", "process"]) == 0
        process = capsys.readouterr().out
        assert "shards=2 (process)" in process

        def deterministic_report(out: str) -> list[str]:
            # Drop the serving header (names the executor) and the
            # wall-clock line; everything left must be bit-identical.
            return [
                line
                for line in out.split("serving")[1].splitlines()[1:]
                if "campaigns/sec" not in line
            ]

        assert deterministic_report(serial) == deterministic_report(process)

    def test_run_kernels_flag(self, capsys, recwarn):
        from repro.core.batch import kernels

        code = main(
            [
                "engine", "run",
                "--campaigns", "5",
                "--horizon-hours", "12",
                "--interval-minutes", "30",
                "--kernels", "numpy",
            ]
        )
        assert code == 0
        assert kernels.active() == "numpy"
        kernels.set_kernels(None)  # restore env/auto resolution

    def test_run_kernels_numba_falls_back_when_absent(self, capsys):
        from repro.core.batch import kernels

        if kernels.HAVE_NUMBA:
            pytest.skip("numba is installed here")
        with pytest.warns(RuntimeWarning, match="falling back"):
            code = main(
                [
                    "engine", "run",
                    "--campaigns", "5",
                    "--horizon-hours", "12",
                    "--interval-minutes", "30",
                    "--kernels", "numba",
                ]
            )
        assert code == 0
        assert kernels.active() == "numpy"
        kernels.set_kernels(None)


class TestEngineCheckpointCLI:
    WORKLOAD = [
        "--campaigns", "8",
        "--horizon-hours", "12",
        "--interval-minutes", "30",
        "--seed", "3",
    ]

    def test_kill_and_resume_matches_uninterrupted(self, tmp_path, capsys):
        assert main(["engine", "run", *self.WORKLOAD]) == 0
        uninterrupted = capsys.readouterr().out

        bundle = str(tmp_path / "ck")
        code = main(
            ["engine", "run", *self.WORKLOAD,
             "--stop-after", "6", "--checkpoint-path", bundle]
        )
        assert code == 0
        stopped = capsys.readouterr().out
        assert "stopped" in stopped and "--resume" in stopped

        assert main(["engine", "run", "--resume", bundle]) == 0
        resumed = capsys.readouterr().out
        assert "resume        :" in resumed
        # Everything after the resume banner must match the uninterrupted
        # run's report except wall-clock (the throughput line).
        def body(text):
            return [
                line for line in text.splitlines()
                if line.split(":")[0].strip()
                not in ("stream", "serving", "resume", "throughput")
            ]
        assert body(resumed) == body(uninterrupted)

    def test_periodic_checkpoints_leave_a_bundle(self, tmp_path, capsys):
        bundle = tmp_path / "ck"
        code = main(
            ["engine", "run", *self.WORKLOAD,
             "--checkpoint-every", "4", "--checkpoint-path", str(bundle)]
        )
        assert code == 0
        assert (bundle / "manifest.json").is_file()
        assert len(list(bundle.glob("arrays-*.npz"))) == 1

    def test_checkpoint_flags_require_path(self, capsys):
        code = main(["engine", "run", *self.WORKLOAD, "--checkpoint-every", "4"])
        assert code == 2
        assert "--checkpoint-path" in capsys.readouterr().err

    def test_resume_missing_bundle(self, tmp_path, capsys):
        code = main(["engine", "run", "--resume", str(tmp_path / "nope")])
        assert code == 2
        assert "no checkpoint bundle" in capsys.readouterr().err


class TestParser:
    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["solve-deadline"])
        assert args.num_tasks == 200
        assert args.horizon_hours == 24.0

    def test_engine_defaults(self):
        args = build_parser().parse_args(["engine", "run"])
        assert args.campaigns == 60
        assert args.planning == "stationary"
        assert args.router == "logit"
