"""Tests for the adaptive re-solving policy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.deadline.adaptive import AdaptiveRepricer
from repro.core.deadline.vectorized import solve_deadline
from repro.sim.policies import TablePolicyRuntime
from repro.sim.simulator import DeadlineSimulation

from tests.conftest import make_problem


@pytest.fixture
def problem():
    return make_problem(
        num_tasks=10,
        arrival_means=[2000.0, 1500.0, 2500.0, 1800.0],
        max_price=15.0,
        penalty=100.0,
    )


class TestNeutralBehaviour:
    def test_matches_static_table_without_observations(self, problem):
        static = solve_deadline(problem)
        adaptive = AdaptiveRepricer(problem)
        for n in (1, 5, 10):
            assert adaptive.price(n, 0) == static.price(n, 0)

    def test_matches_static_when_arrivals_on_forecast(self, problem):
        static = solve_deadline(problem)
        adaptive = AdaptiveRepricer(problem)
        for t in range(problem.num_intervals):
            price_static = static.price(5, t)
            price_adaptive = adaptive.price(5, t)
            assert price_adaptive == price_static
            adaptive.observe(t, float(problem.arrival_means[t]))


class TestAdaptation:
    def test_underdelivery_raises_prices(self, problem):
        static = solve_deadline(problem)
        adaptive = AdaptiveRepricer(problem)
        adaptive.price(10, 0)
        adaptive.observe(0, 0.3 * float(problem.arrival_means[0]))
        adaptive.observe(1, 0.3 * float(problem.arrival_means[1]))
        # Mid-horizon with a big backlog and a learned shortfall.
        assert adaptive.price(10, 2) >= static.price(10, 2)
        assert adaptive.predictor.factor < 1.0

    def test_cache_limits_solves(self, problem):
        adaptive = AdaptiveRepricer(problem)
        for t in range(problem.num_intervals):
            adaptive.price(5, t)
            adaptive.observe(t, float(problem.arrival_means[t]))
        first_pass = adaptive.num_solves
        for t in range(problem.num_intervals):
            adaptive.price(5, t)
        assert adaptive.num_solves == first_pass  # all cached

    def test_resolve_every_reduces_solves(self, problem):
        every = AdaptiveRepricer(problem, resolve_every=1)
        coarse = AdaptiveRepricer(problem, resolve_every=2)
        for t in range(problem.num_intervals):
            every.price(5, t)
            coarse.price(5, t)
            # Feed diverging observations so factors keep moving.
            every.observe(t, 0.5 * float(problem.arrival_means[t]))
            coarse.observe(t, 0.5 * float(problem.arrival_means[t]))
        assert coarse.num_solves <= every.num_solves


class TestEndToEnd:
    def test_rescues_consistent_shortfall(self, problem):
        # True market delivers 40% of the forecast; the static table
        # (trained on the forecast) strands tasks, the adaptive one adapts.
        true_means = problem.arrival_means * 0.4
        sim = DeadlineSimulation(problem.num_tasks, true_means, problem.acceptance)
        static_runtime = TablePolicyRuntime(solve_deadline(problem))
        static_left = []
        adaptive_left = []
        for i in range(30):
            static_left.append(
                sim.run(static_runtime, np.random.default_rng(i)).remaining
            )
            adaptive_left.append(
                sim.run(AdaptiveRepricer(problem), np.random.default_rng(i)).remaining
            )
        assert np.mean(adaptive_left) <= np.mean(static_left)

    def test_validation(self, problem):
        with pytest.raises(ValueError):
            AdaptiveRepricer(problem, resolve_every=0)
        with pytest.raises(ValueError):
            AdaptiveRepricer(problem, factor_quantum=0.0)
        with pytest.raises(ValueError):
            AdaptiveRepricer(problem).price(0, 0)

    def test_repr(self, problem):
        assert "AdaptiveRepricer" in repr(AdaptiveRepricer(problem))
