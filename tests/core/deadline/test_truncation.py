"""Tests for Poisson truncation in the DP and the Theorem 1 bound."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.deadline.truncation import (
    TruncationErrorBound,
    transition_pmf,
    truncation_error_bound,
)
from repro.core.deadline.vectorized import solve_deadline
from repro.util.poisson import poisson_pmf

from tests.conftest import make_problem


class TestTransitionPmf:
    def test_exact_mode_full_head(self):
        pmf = transition_pmf(3.0, eps=None, max_completions=10)
        assert pmf.size == 11
        assert pmf[4] == pytest.approx(poisson_pmf(4, 3.0), rel=1e-12)

    def test_truncated_mode_shorter(self):
        pmf = transition_pmf(3.0, eps=1e-9, max_completions=10_000)
        assert pmf.size < 50

    def test_cap_enforced(self):
        pmf = transition_pmf(50.0, eps=1e-9, max_completions=5)
        assert pmf.size == 6

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            transition_pmf(1.0, eps=None, max_completions=-1)


class TestTheorem1Bound:
    def test_truncated_vs_exact_within_bound(self):
        exact_problem = make_problem(
            num_tasks=8,
            arrival_means=[600.0, 300.0, 900.0],
            max_price=12.0,
            penalty=60.0,
            truncation_eps=None,
        )
        truncated_problem = make_problem(
            num_tasks=8,
            arrival_means=[600.0, 300.0, 900.0],
            max_price=12.0,
            penalty=60.0,
            truncation_eps=1e-9,
        )
        exact = solve_deadline(exact_problem)
        truncated = solve_deadline(truncated_problem)
        bound = truncation_error_bound(truncated_problem)
        # Theorem 1: the root-state error is bounded by N * N_T * C * eps
        # (generous factor for the tail-redistribution variant we use).
        diff = abs(exact.optimal_value - truncated.optimal_value)
        assert diff <= 10 * bound.per_state + 1e-9

    def test_bound_fields(self):
        problem = make_problem(truncation_eps=1e-9)
        bound = truncation_error_bound(problem)
        assert isinstance(bound, TruncationErrorBound)
        assert bound.eps == 1e-9
        assert bound.max_price == float(problem.price_grid[-1])
        assert bound.per_state == pytest.approx(
            problem.num_tasks * problem.num_intervals * bound.max_price * 1e-9
        )
        assert bound.largest_cutoff > 0

    def test_exact_problem_rejected(self):
        problem = make_problem(truncation_eps=None)
        with pytest.raises(ValueError):
            truncation_error_bound(problem)

    def test_truncated_policy_quality(self):
        # The *policy* from the truncated solve, evaluated exactly, is
        # near-optimal too (the Cost_trunc side of Theorem 1).
        exact_problem = make_problem(
            num_tasks=6, arrival_means=[500.0, 400.0], truncation_eps=None
        )
        truncated_problem = make_problem(
            num_tasks=6, arrival_means=[500.0, 400.0], truncation_eps=1e-9
        )
        exact = solve_deadline(exact_problem)
        truncated = solve_deadline(truncated_problem)
        from repro.core.deadline.policy import DeadlinePolicy

        replay = DeadlinePolicy(
            problem=exact_problem,
            opt=exact.opt,
            price_index=truncated.price_index,
            solver="replay",
        )
        cost_trunc = replay.evaluate().total_objective
        assert cost_trunc >= exact.optimal_value - 1e-9
        assert cost_trunc - exact.optimal_value <= 1e-4
