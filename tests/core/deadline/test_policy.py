"""Tests for DeadlinePolicy lookup and exact forward evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.deadline.policy import DeadlinePolicy, fixed_price_policy
from repro.core.deadline.vectorized import solve_deadline
from repro.util.poisson import poisson_pmf, poisson_tail

from tests.conftest import make_problem


class TestPriceLookup:
    def test_bounds_checked(self, small_problem):
        policy = solve_deadline(small_problem)
        with pytest.raises(ValueError):
            policy.price(0, 0)
        with pytest.raises(ValueError):
            policy.price(small_problem.num_tasks + 1, 0)
        with pytest.raises(ValueError):
            policy.price(1, small_problem.num_intervals)

    def test_price_table_values_on_grid(self, small_problem):
        policy = solve_deadline(small_problem)
        table = policy.price_table()
        assert np.all(np.isin(table, small_problem.price_grid))

    def test_shape_validation(self, small_problem):
        policy = solve_deadline(small_problem)
        with pytest.raises(ValueError):
            DeadlinePolicy(
                problem=small_problem,
                opt=policy.opt[:, :-1],
                price_index=policy.price_index,
                solver="bad",
            )
        with pytest.raises(ValueError):
            DeadlinePolicy(
                problem=small_problem,
                opt=policy.opt,
                price_index=policy.price_index[:-1],
                solver="bad",
            )


class TestFixedPricePolicy:
    def test_constant_table(self, small_problem):
        policy = fixed_price_policy(small_problem, 7.0)
        assert np.all(policy.price_table()[1:] == 7.0)
        assert policy.solver == "fixed"

    def test_off_grid_price_rejected(self, small_problem):
        with pytest.raises(ValueError):
            fixed_price_policy(small_problem, 7.5)


class TestEvaluate:
    def test_single_interval_closed_form(self):
        lam = 400.0
        penalty = 20.0
        problem = make_problem(
            num_tasks=2,
            arrival_means=[lam],
            max_price=8.0,
            penalty=penalty,
            truncation_eps=None,
        )
        price = 5.0
        policy = fixed_price_policy(problem, price)
        outcome = policy.evaluate()
        mean = lam * problem.acceptance.probability(price)
        p0 = poisson_pmf(0, mean)
        p1 = poisson_pmf(1, mean)
        p2 = poisson_tail(2, mean)
        assert outcome.expected_cost == pytest.approx(p1 * price + p2 * 2 * price)
        assert outcome.expected_remaining == pytest.approx(2 * p0 + p1)
        assert outcome.expected_penalty == pytest.approx((2 * p0 + p1) * penalty)
        assert outcome.prob_all_done == pytest.approx(p2)
        assert outcome.average_reward == pytest.approx(outcome.expected_cost / 2)
        assert outcome.expected_completed == pytest.approx(
            2 - outcome.expected_remaining
        )
        assert outcome.total_objective == pytest.approx(
            outcome.expected_cost + outcome.expected_penalty
        )

    def test_probabilities_conserved(self, medium_problem):
        outcome = solve_deadline(medium_problem).evaluate()
        assert 0.0 <= outcome.prob_all_done <= 1.0
        assert 0.0 <= outcome.expected_remaining <= medium_problem.num_tasks

    def test_evaluate_under_different_dynamics(self, small_problem):
        policy = solve_deadline(small_problem)
        worse = small_problem.with_acceptance(
            small_problem.acceptance.with_params(m=4000.0)
        )
        trained = policy.evaluate()
        shifted = policy.evaluate(dynamics=worse)
        assert shifted.expected_remaining >= trained.expected_remaining
        assert shifted.expected_cost >= 0.0

    def test_dynamics_shape_mismatch_rejected(self, small_problem):
        policy = solve_deadline(small_problem)
        wrong_n = make_problem(num_tasks=3, arrival_means=small_problem.arrival_means)
        with pytest.raises(ValueError):
            policy.evaluate(dynamics=wrong_n)
        wrong_t = make_problem(
            num_tasks=small_problem.num_tasks, arrival_means=[100.0]
        )
        with pytest.raises(ValueError):
            policy.evaluate(dynamics=wrong_t)

    def test_zero_arrivals_nothing_happens(self):
        problem = make_problem(num_tasks=4, arrival_means=[0.0, 0.0])
        outcome = fixed_price_policy(problem, 3.0).evaluate()
        assert outcome.expected_cost == 0.0
        assert outcome.expected_remaining == 4.0
        assert outcome.prob_all_done == 0.0

    def test_flood_of_arrivals_finishes(self):
        problem = make_problem(num_tasks=3, arrival_means=[1e6], penalty=50.0)
        outcome = fixed_price_policy(problem, 10.0).evaluate()
        assert outcome.prob_all_done == pytest.approx(1.0, abs=1e-6)
        assert outcome.expected_cost == pytest.approx(30.0, rel=1e-6)


class TestExpectedPricePath:
    def test_fixed_policy_path_is_flat(self, small_problem):
        prices, active = fixed_price_policy(small_problem, 7.0).expected_price_path()
        assert np.allclose(prices[active > 0], 7.0)
        assert active[0] == pytest.approx(1.0)
        assert np.all(np.diff(active) <= 1e-12)  # active prob only decays

    def test_dynamic_path_consistent_with_table(self, small_problem):
        policy = solve_deadline(small_problem)
        prices, active = policy.expected_price_path()
        grid = small_problem.price_grid
        assert np.all(prices[active > 0] >= grid[0] - 1e-9)
        assert np.all(prices[active > 0] <= grid[-1] + 1e-9)
        # Interval 0: deterministic state n=N, so the path starts exactly
        # at the table's root price.
        assert prices[0] == pytest.approx(policy.price(small_problem.num_tasks, 0))

    def test_shape_mismatch_rejected(self, small_problem):
        policy = solve_deadline(small_problem)
        wrong = make_problem(num_tasks=3, arrival_means=small_problem.arrival_means)
        with pytest.raises(ValueError):
            policy.expected_price_path(dynamics=wrong)
