"""Tests for DeadlineProblem / PenaltyScheme construction and accessors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.deadline.model import DeadlineProblem, PenaltyScheme
from repro.market.acceptance import paper_acceptance_model
from repro.market.rates import ConstantRate

from tests.conftest import make_problem


class TestPenaltyScheme:
    def test_linear_costs(self):
        scheme = PenaltyScheme(per_task=10.0)
        assert scheme.terminal_cost(0) == 0.0
        assert scheme.terminal_cost(3) == 30.0

    def test_extended_costs(self):
        # Section 3.3: cost = (n + alpha) * Penalty when n > 0, else 0.
        scheme = PenaltyScheme(per_task=10.0, existence=2.0)
        assert scheme.terminal_cost(0) == 0.0
        assert scheme.terminal_cost(1) == 30.0
        assert scheme.terminal_cost(5) == 70.0

    def test_vector_matches_scalar(self):
        scheme = PenaltyScheme(per_task=7.0, existence=1.5)
        vector = scheme.terminal_costs(4)
        assert vector.tolist() == [scheme.terminal_cost(n) for n in range(5)]

    def test_validation(self):
        with pytest.raises(ValueError):
            PenaltyScheme(per_task=-1.0)
        with pytest.raises(ValueError):
            PenaltyScheme(per_task=1.0, existence=-0.5)
        with pytest.raises(ValueError):
            PenaltyScheme(per_task=1.0).terminal_cost(-1)


class TestDeadlineProblem:
    def test_basic_properties(self, small_problem):
        assert small_problem.num_intervals == 4
        assert small_problem.num_prices == 15
        assert small_problem.total_arrivals() == pytest.approx(1500.0)

    def test_completion_means_shape_and_values(self, small_problem):
        means = small_problem.completion_means()
        assert means.shape == (4, 15)
        p = small_problem.acceptance.probability(float(small_problem.price_grid[2]))
        assert means[1, 2] == pytest.approx(250.0 * p)

    def test_from_rate_function(self):
        problem = DeadlineProblem.from_rate_function(
            num_tasks=5,
            rate=ConstantRate(100.0),
            horizon_hours=2.0,
            num_intervals=4,
            acceptance=paper_acceptance_model(),
            price_grid=[1.0, 2.0],
            penalty=PenaltyScheme(per_task=10.0),
        )
        assert np.allclose(problem.arrival_means, 50.0)

    def test_with_overrides(self, small_problem):
        new_penalty = PenaltyScheme(per_task=99.0)
        assert small_problem.with_penalty(new_penalty).penalty == new_penalty
        new_acc = paper_acceptance_model().with_params(m=500.0)
        assert small_problem.with_acceptance(new_acc).acceptance is new_acc
        new_means = np.array([1.0, 2.0])
        changed = small_problem.with_arrival_means(new_means)
        assert changed.num_intervals == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            make_problem(num_tasks=0)
        with pytest.raises(ValueError):
            make_problem(arrival_means=[])
        with pytest.raises(ValueError):
            make_problem(arrival_means=[-1.0])
        with pytest.raises(ValueError):
            DeadlineProblem(
                num_tasks=2,
                arrival_means=np.array([1.0]),
                acceptance=paper_acceptance_model(),
                price_grid=np.array([2.0, 1.0]),  # not ascending
                penalty=PenaltyScheme(per_task=1.0),
            )
        with pytest.raises(ValueError):
            DeadlineProblem(
                num_tasks=2,
                arrival_means=np.array([1.0]),
                acceptance=paper_acceptance_model(),
                price_grid=np.array([-1.0, 1.0]),
                penalty=PenaltyScheme(per_task=1.0),
            )
        with pytest.raises(ValueError):
            make_problem(truncation_eps=2.0)
