"""Optimality checks for the deadline DP beyond solver cross-agreement.

* Closed-form verification for one-task/one-interval instances.
* The Bellman table dominates every fixed-price policy (the DP's value is a
  lower bound on any restricted strategy's cost).
* Local optimality: perturbing any single table entry cannot reduce the
  evaluated objective.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.deadline.model import DeadlineProblem, PenaltyScheme
from repro.core.deadline.policy import DeadlinePolicy, fixed_price_policy
from repro.core.deadline.vectorized import solve_deadline
from repro.market.acceptance import paper_acceptance_model
from repro.util.poisson import poisson_pmf, poisson_tail

from tests.conftest import make_problem


class TestClosedForm:
    def test_single_task_single_interval(self):
        # Opt(1, 0) = min_c [ Pr(X>=1) * c + Pr(X=0) * Penalty ].
        lam = 700.0
        penalty = 25.0
        problem = make_problem(
            num_tasks=1,
            arrival_means=[lam],
            max_price=12.0,
            penalty=penalty,
            truncation_eps=None,
        )
        policy = solve_deadline(problem)
        acceptance = problem.acceptance
        best = min(
            poisson_tail(1, lam * acceptance.probability(c)) * c
            + poisson_pmf(0, lam * acceptance.probability(c)) * penalty
            for c in problem.price_grid
        )
        assert policy.optimal_value == pytest.approx(best, rel=1e-12)

    def test_two_tasks_single_interval(self):
        lam = 500.0
        penalty = 30.0
        problem = make_problem(
            num_tasks=2,
            arrival_means=[lam],
            max_price=10.0,
            penalty=penalty,
            truncation_eps=None,
        )
        policy = solve_deadline(problem)
        acceptance = problem.acceptance

        def cost_at(c):
            mean = lam * acceptance.probability(c)
            p0 = poisson_pmf(0, mean)
            p1 = poisson_pmf(1, mean)
            p2_plus = poisson_tail(2, mean)
            return p0 * 2 * penalty + p1 * (c + penalty) + p2_plus * 2 * c

        best = min(cost_at(c) for c in problem.price_grid)
        assert policy.optimal_value == pytest.approx(best, rel=1e-12)


class TestDominance:
    def test_beats_every_fixed_price(self, small_problem):
        dp = solve_deadline(small_problem)
        dp_objective = dp.evaluate().total_objective
        for price in small_problem.price_grid:
            fixed = fixed_price_policy(small_problem, float(price)).evaluate()
            assert dp_objective <= fixed.total_objective + 1e-6

    def test_table_value_matches_forward_evaluation(self, small_problem):
        # Backward-induction value and forward-propagated objective agree.
        dp = solve_deadline(small_problem)
        outcome = dp.evaluate()
        assert dp.optimal_value == pytest.approx(outcome.total_objective, rel=1e-9)

    def test_local_optimality_of_price_table(self):
        problem = make_problem(num_tasks=4, arrival_means=[250.0, 400.0])
        dp = solve_deadline(problem)
        base = dp.evaluate().total_objective
        # Perturb each decision one grid step in both directions; the
        # evaluated objective must never improve.
        for n in range(1, problem.num_tasks + 1):
            for t in range(problem.num_intervals):
                for delta in (-1, 1):
                    j = dp.price_index[n, t] + delta
                    if not 0 <= j < problem.num_prices:
                        continue
                    perturbed_index = dp.price_index.copy()
                    perturbed_index[n, t] = j
                    perturbed = DeadlinePolicy(
                        problem=problem,
                        opt=dp.opt,
                        price_index=perturbed_index,
                        solver="perturbed",
                    )
                    assert perturbed.evaluate().total_objective >= base - 1e-9


class TestPenaltyPressure:
    def test_higher_penalty_fewer_remaining(self, small_problem):
        low = solve_deadline(
            small_problem.with_penalty(PenaltyScheme(per_task=5.0))
        ).evaluate()
        high = solve_deadline(
            small_problem.with_penalty(PenaltyScheme(per_task=200.0))
        ).evaluate()
        assert high.expected_remaining <= low.expected_remaining + 1e-12
        assert high.expected_cost >= low.expected_cost - 1e-12

    def test_zero_penalty_spends_nothing_at_min_price_floor(self):
        # With no penalty there is no reason to pay above the cheapest price
        # that the DP finds worthwhile; in fact the optimal plan never posts
        # a price whose expected payment exceeds its saved penalty (0), so
        # the objective is 0 only if the minimum price is 0 -- with a 1c
        # floor the solver still prices minimally.
        problem = make_problem(penalty=0.0)
        policy = solve_deadline(problem)
        assert np.all(policy.price_table()[1:] == problem.price_grid[0])
