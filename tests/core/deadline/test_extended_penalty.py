"""Tests for the Section 3.3 extended penalty formulation.

The extended scheme charges ``(n + alpha) * Penalty`` whenever ``n > 0``;
by the Theorem 2 extension its optimum bounds
``E[remaining] + alpha * Pr(remaining > 0)`` — i.e., it buys down not just
the expected leftover count but the *probability of any leftover at all*.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.deadline.model import PenaltyScheme
from repro.core.deadline.vectorized import solve_deadline

from tests.conftest import make_problem


def solve_with(existence: float, per_task: float = 40.0):
    problem = make_problem(
        num_tasks=8,
        arrival_means=[2500.0, 2000.0, 3000.0],
        max_price=15.0,
        penalty=per_task,
        existence=existence,
    )
    return solve_deadline(problem).evaluate()


class TestExtendedPenalty:
    def test_existence_pressure_raises_completion_probability(self):
        plain = solve_with(existence=0.0)
        extended = solve_with(existence=10.0)
        assert extended.prob_all_done >= plain.prob_all_done - 1e-12
        assert extended.expected_cost >= plain.expected_cost - 1e-12

    def test_extended_objective_is_optimized(self):
        # The solver's value equals the evaluated extended objective:
        # E[cost] + Penalty * (E[remaining] + alpha * Pr(remaining > 0)).
        problem = make_problem(
            num_tasks=6,
            arrival_means=[2000.0, 2500.0],
            max_price=12.0,
            penalty=30.0,
            existence=4.0,
        )
        policy = solve_deadline(problem)
        outcome = policy.evaluate()
        prob_some_left = 1.0 - outcome.prob_all_done
        reconstructed = outcome.expected_cost + 30.0 * (
            outcome.expected_remaining + 4.0 * prob_some_left
        )
        assert policy.optimal_value == pytest.approx(reconstructed, rel=1e-9)

    def test_monotone_in_existence_weight(self):
        completion = [
            solve_with(existence=alpha).prob_all_done
            for alpha in (0.0, 5.0, 20.0, 80.0)
        ]
        assert all(b >= a - 1e-12 for a, b in zip(completion, completion[1:]))

    def test_terminal_jump_at_one_task(self):
        # The extended scheme's signature: a discontinuity between n=0 and
        # n=1 that exceeds the per-task slope.
        scheme = PenaltyScheme(per_task=10.0, existence=3.0)
        costs = scheme.terminal_costs(4)
        assert costs[1] - costs[0] == pytest.approx(40.0)  # (1 + 3) * 10
        assert np.allclose(np.diff(costs[1:]), 10.0)
