"""All three deadline solvers compute the same table.

Algorithm 1 (literal), the vectorized recurrence, and Algorithm 2
(divide-and-conquer under Conjecture 1) must agree on the value function
exactly and on the price table up to cost ties.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deadline.efficient_dp import solve_deadline_efficient
from repro.core.deadline.simple_dp import solve_deadline_simple
from repro.core.deadline.vectorized import solve_deadline

from tests.conftest import make_problem


def assert_tables_equal(a, b):
    assert np.allclose(a.opt, b.opt, rtol=1e-12, atol=1e-12), (
        f"value tables differ ({a.solver} vs {b.solver})"
    )
    assert np.array_equal(a.price_index[1:], b.price_index[1:]), (
        f"price tables differ ({a.solver} vs {b.solver})"
    )


class TestSolverEquivalence:
    def test_small_fixture(self, small_problem):
        simple = solve_deadline_simple(small_problem)
        vectorized = solve_deadline(small_problem)
        efficient = solve_deadline_efficient(small_problem)
        assert_tables_equal(simple, vectorized)
        assert_tables_equal(simple, efficient)

    def test_medium_vectorized_vs_efficient(self, medium_problem):
        vectorized = solve_deadline(medium_problem)
        efficient = solve_deadline_efficient(medium_problem)
        assert_tables_equal(vectorized, efficient)

    def test_exact_mode(self):
        problem = make_problem(truncation_eps=None)
        simple = solve_deadline_simple(problem)
        vectorized = solve_deadline(problem)
        efficient = solve_deadline_efficient(problem)
        assert_tables_equal(simple, vectorized)
        assert_tables_equal(simple, efficient)

    def test_extended_penalty(self):
        problem = make_problem(existence=3.0)
        assert_tables_equal(
            solve_deadline_simple(problem), solve_deadline(problem)
        )

    def test_time_monotonicity_pruning_matches(self, small_problem):
        unpruned = solve_deadline_efficient(small_problem)
        pruned = solve_deadline_efficient(small_problem, use_time_monotonicity=True)
        assert np.allclose(unpruned.opt, pruned.opt, rtol=1e-12)

    @given(
        num_tasks=st.integers(min_value=1, max_value=7),
        num_intervals=st.integers(min_value=1, max_value=4),
        scale=st.floats(min_value=50.0, max_value=2000.0),
        max_price=st.integers(min_value=2, max_value=12),
        penalty=st.floats(min_value=0.0, max_value=100.0),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_instances(
        self, num_tasks, num_intervals, scale, max_price, penalty, seed
    ):
        rng = np.random.default_rng(seed)
        means = rng.uniform(0.2, 1.0, size=num_intervals) * scale
        problem = make_problem(
            num_tasks=num_tasks,
            arrival_means=means,
            max_price=float(max_price),
            penalty=penalty,
        )
        simple = solve_deadline_simple(problem)
        vectorized = solve_deadline(problem)
        efficient = solve_deadline_efficient(problem)
        assert np.allclose(simple.opt, vectorized.opt, rtol=1e-10, atol=1e-10)
        assert np.allclose(simple.opt, efficient.opt, rtol=1e-10, atol=1e-10)


class TestTableStructure:
    def test_terminal_layer_is_penalty(self, small_problem):
        policy = solve_deadline(small_problem)
        n_t = small_problem.num_intervals
        expected = small_problem.penalty.terminal_costs(small_problem.num_tasks)
        assert np.allclose(policy.opt[:, n_t], expected)

    def test_zero_tasks_row_is_zero(self, small_problem):
        policy = solve_deadline(small_problem)
        assert np.allclose(policy.opt[0], 0.0)

    def test_values_nonnegative_and_bounded(self, small_problem):
        policy = solve_deadline(small_problem)
        assert np.all(policy.opt >= 0.0)
        # Opt(n, t) can never exceed paying the max price for everything
        # plus the worst-case penalty.
        n = small_problem.num_tasks
        bound = n * float(small_problem.price_grid[-1]) + \
            small_problem.penalty.terminal_cost(n)
        assert np.all(policy.opt <= bound + 1e-9)

    def test_value_monotone_in_n(self, small_problem):
        # More remaining work can never cost less.
        policy = solve_deadline(small_problem)
        assert np.all(np.diff(policy.opt, axis=0) >= -1e-9)

    def test_more_time_never_hurts(self):
        # With identical interval means, Opt(n, t) is non-increasing in the
        # remaining number of intervals... i.e. non-decreasing in t.
        problem = make_problem(
            num_tasks=5, arrival_means=[300.0, 300.0, 300.0, 300.0]
        )
        policy = solve_deadline(problem)
        assert np.all(np.diff(policy.opt[1:, :], axis=1) >= -1e-9)
