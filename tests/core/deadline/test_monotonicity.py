"""Conjecture 1 and the t-monotonicity remark (Section 3.2).

The paper reports that over many random instances the optimal price
``Price(n, t)`` never decreases in ``n`` (fixed ``t``) and never decreases
in ``t`` (fixed ``n``).  Algorithm 2's correctness rests on the former; we
verify both over a spread of instances.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deadline.vectorized import solve_deadline

from tests.conftest import make_problem


def price_table(problem):
    return solve_deadline(problem).price_table()


class TestConjecture1:
    def test_default_fixture(self, medium_problem):
        prices = price_table(medium_problem)
        # Non-decreasing in n for every t.
        assert np.all(np.diff(prices[1:, :], axis=0) >= 0)

    @given(
        num_tasks=st.integers(min_value=2, max_value=25),
        num_intervals=st.integers(min_value=1, max_value=8),
        scale=st.floats(min_value=100.0, max_value=3000.0),
        penalty=st.floats(min_value=5.0, max_value=300.0),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_instances(self, num_tasks, num_intervals, scale, penalty, seed):
        rng = np.random.default_rng(seed)
        means = rng.uniform(0.3, 1.0, size=num_intervals) * scale
        problem = make_problem(
            num_tasks=num_tasks,
            arrival_means=means,
            max_price=15.0,
            penalty=penalty,
        )
        prices = price_table(problem)
        assert np.all(np.diff(prices[1:, :], axis=0) >= 0)


class TestTimeMonotonicity:
    def test_constant_rate_prices_rise_toward_deadline(self):
        # With a flat arrival profile, for fixed n prices never fall as the
        # deadline nears (fewer chances left -> pay more).
        problem = make_problem(
            num_tasks=12,
            arrival_means=[300.0] * 6,
            max_price=15.0,
            penalty=120.0,
        )
        prices = price_table(problem)
        assert np.all(np.diff(prices[1:, :], axis=1) >= 0)

    @given(
        num_tasks=st.integers(min_value=2, max_value=15),
        num_intervals=st.integers(min_value=2, max_value=6),
        rate=st.floats(min_value=100.0, max_value=1500.0),
        penalty=st.floats(min_value=10.0, max_value=200.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_constant_rate_random(self, num_tasks, num_intervals, rate, penalty):
        problem = make_problem(
            num_tasks=num_tasks,
            arrival_means=[rate] * num_intervals,
            max_price=12.0,
            penalty=penalty,
        )
        prices = price_table(problem)
        assert np.all(np.diff(prices[1:, :], axis=1) >= 0)
