"""Tests for penalty calibration (the Theorem 2 correspondence)."""

from __future__ import annotations

import pytest

from repro.core.deadline.penalty import calibrate_penalty
from repro.core.deadline.vectorized import solve_deadline

from tests.conftest import make_problem


@pytest.fixture
def problem():
    return make_problem(
        num_tasks=10,
        arrival_means=[3000.0, 2500.0, 4000.0, 2500.0],
        max_price=15.0,
        penalty=1.0,  # overridden by calibration
    )


class TestCalibratePenalty:
    def test_meets_bound(self, problem):
        calibration = calibrate_penalty(problem, bound=0.5)
        assert calibration.expected_remaining <= 0.5
        assert calibration.policy.evaluate().expected_remaining == pytest.approx(
            calibration.expected_remaining
        )

    def test_tighter_bound_higher_penalty(self, problem):
        loose = calibrate_penalty(problem, bound=2.0)
        tight = calibrate_penalty(problem, bound=0.05)
        assert tight.penalty >= loose.penalty
        loose_cost = loose.policy.evaluate().expected_cost
        tight_cost = tight.policy.evaluate().expected_cost
        assert tight_cost >= loose_cost - 1e-9

    def test_trivial_bound_zero_penalty(self, problem):
        calibration = calibrate_penalty(problem, bound=float(problem.num_tasks))
        assert calibration.penalty == 0.0

    def test_unreachable_bound_raises(self):
        # A dead marketplace can never finish anything.
        dead = make_problem(
            num_tasks=5, arrival_means=[0.0, 0.0], max_price=5.0
        )
        with pytest.raises(ValueError, match="unreachable"):
            calibrate_penalty(dead, bound=0.5, penalty_hi=10.0)

    def test_negative_bound_rejected(self, problem):
        with pytest.raises(ValueError):
            calibrate_penalty(problem, bound=-1.0)

    def test_custom_solver_injected(self, problem):
        calls = []

        def spy_solver(p):
            calls.append(p.penalty.per_task)
            return solve_deadline(p)

        calibrate_penalty(problem, bound=0.5, solver=spy_solver, max_iterations=5)
        assert len(calls) >= 2

    def test_existence_component_preserved(self):
        problem = make_problem(
            num_tasks=6,
            arrival_means=[6000.0, 6000.0],
            existence=2.5,
        )
        calibration = calibrate_penalty(problem, bound=0.5)
        assert calibration.policy.problem.penalty.existence == 2.5

    def test_theorem2_correspondence(self, problem):
        # The calibrated soft policy is also optimal for the constrained
        # formulation at its own achieved bound: no fixed-price policy with
        # E[remaining] <= achieved can spend less.
        from repro.core.deadline.policy import fixed_price_policy

        calibration = calibrate_penalty(problem, bound=0.3)
        achieved = calibration.expected_remaining
        cost = calibration.policy.evaluate().expected_cost
        for price in problem.price_grid:
            fixed = fixed_price_policy(problem, float(price)).evaluate()
            if fixed.expected_remaining <= achieved:
                assert fixed.expected_cost >= cost - 1e-6
