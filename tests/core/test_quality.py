"""Tests for the quality-control integration (Section 6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.quality import (
    MajorityVoteStrategy,
    QualityPoint,
    discretize_by_posterior,
    posterior_probability,
    reduce_to_deadline_problem,
    worst_case_questions_outstanding,
)
from repro.core.deadline.model import PenaltyScheme
from repro.market.acceptance import paper_acceptance_model


class TestMajorityVoteStrategy:
    def test_decisions(self):
        strategy = MajorityVoteStrategy(3)
        assert strategy.decision(0, 0) == "continue"
        assert strategy.decision(0, 2) == "pass"
        assert strategy.decision(2, 0) == "fail"
        assert strategy.decision(1, 1) == "continue"

    def test_even_or_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            MajorityVoteStrategy(4)
        with pytest.raises(ValueError):
            MajorityVoteStrategy(0)

    def test_continue_points_count(self):
        # h^2 continue points; the paper's "k is often as small as 9" is
        # majority-of-5 (h = 3).
        assert len(MajorityVoteStrategy(5).continue_points()) == 9
        assert len(MajorityVoteStrategy(3).continue_points()) == 4

    def test_worst_case_at_origin_is_m(self):
        for m in (1, 3, 5, 7):
            assert MajorityVoteStrategy(m).worst_case_additional(0, 0) == m

    def test_worst_case_formula(self):
        strategy = MajorityVoteStrategy(5)
        # From (2, 1): worst case alternates until one side reaches 3.
        assert strategy.worst_case_additional(2, 1) == (3 - 2) + (3 - 1) - 1
        assert strategy.worst_case_additional(0, 3) == 0  # already decided

    def test_worst_case_decreases_with_answers(self):
        strategy = MajorityVoteStrategy(7)
        origin = strategy.worst_case_additional(0, 0)
        assert strategy.worst_case_additional(1, 0) < origin
        assert strategy.worst_case_additional(1, 1) < origin

    def test_expected_at_most_worst_case(self):
        strategy = MajorityVoteStrategy(5)
        for x in range(3):
            for y in range(3):
                for p in (0.1, 0.5, 0.9):
                    expected = strategy.expected_additional(x, y, p)
                    assert expected <= strategy.worst_case_additional(x, y) + 1e-12

    def test_expected_probability_validated(self):
        with pytest.raises(ValueError):
            MajorityVoteStrategy(3).expected_additional(0, 0, 1.5)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            MajorityVoteStrategy(3).decision(-1, 0)
        with pytest.raises(ValueError):
            MajorityVoteStrategy(3).worst_case_additional(0, -1)


class TestQualityPoint:
    def test_validation(self):
        with pytest.raises(ValueError):
            QualityPoint(-1, 0, "continue")
        with pytest.raises(ValueError):
            QualityPoint(0, 0, "maybe")


class TestPosterior:
    def test_symmetric_prior_balanced_answers(self):
        assert posterior_probability(2, 2) == pytest.approx(0.5)

    def test_yes_answers_raise_posterior(self):
        assert posterior_probability(0, 3) > posterior_probability(0, 1) > 0.5

    def test_bayes_single_answer(self):
        # One Yes from a 90%-accurate worker with a 0.5 prior -> 0.9.
        assert posterior_probability(0, 1, 0.5, 0.9) == pytest.approx(0.9)

    def test_prior_shifts(self):
        assert posterior_probability(0, 0, prior=0.8) == pytest.approx(0.8)

    def test_validation(self):
        with pytest.raises(ValueError):
            posterior_probability(-1, 0)
        with pytest.raises(ValueError):
            posterior_probability(0, 0, prior=1.0)
        with pytest.raises(ValueError):
            posterior_probability(0, 0, worker_accuracy=1.0)


class TestDiscretization:
    def test_groups_cover_all_points(self):
        strategy = MajorityVoteStrategy(5)
        points = strategy.continue_points()
        groups = discretize_by_posterior(points, interval_width=0.25)
        total = sum(len(g) for g in groups.values())
        assert total == len(points)
        assert all(0 <= idx < 4 for idx in groups)

    def test_finer_intervals_refine(self):
        strategy = MajorityVoteStrategy(7)
        points = strategy.continue_points()
        coarse = discretize_by_posterior(points, interval_width=0.5)
        fine = discretize_by_posterior(points, interval_width=0.05)
        assert len(fine) >= len(coarse)

    def test_validation(self):
        with pytest.raises(ValueError):
            discretize_by_posterior([], interval_width=0.0)


class TestPosteriorGridStrategy:
    def _strategy(self, **kwargs):
        from repro.core.quality import PosteriorGridStrategy

        defaults = dict(interval_width=0.1)
        defaults.update(kwargs)
        return PosteriorGridStrategy(**defaults)

    def test_interval_roundtrip(self):
        strategy = self._strategy()
        assert strategy.num_intervals == 10
        for posterior in (0.0, 0.31, 0.5, 0.99, 1.0):
            idx = strategy.interval_index(posterior)
            rep = strategy.representative(idx)
            assert abs(rep - posterior) <= strategy.interval_width

    def test_decisions_at_boundaries(self):
        strategy = self._strategy(pass_threshold=0.85, fail_threshold=0.15)
        assert strategy.decision(0.95, 0) == "pass"
        assert strategy.decision(0.05, 0) == "fail"
        assert strategy.decision(0.5, 0) == "continue"

    def test_question_cap_forces_decision(self):
        strategy = self._strategy(max_questions=3)
        assert strategy.decision(0.6, 3) == "pass"
        assert strategy.decision(0.4, 3) == "fail"
        assert strategy.decision(0.6, 2) == "continue"

    def test_update_moves_toward_answer(self):
        strategy = self._strategy()
        up = strategy.update(0.5, answered_yes=True)
        down = strategy.update(0.5, answered_yes=False)
        assert up > 0.5 > down
        # Single yes from a 90% worker at a 0.5 prior: posterior 0.9.
        assert up == pytest.approx(0.9, abs=0.05)

    def test_repeated_yes_converges_to_pass(self):
        strategy = self._strategy()
        posterior = 0.5
        used = 0
        while strategy.decision(posterior, used) == "continue":
            posterior = strategy.update(posterior, answered_yes=True)
            used += 1
        assert strategy.decision(posterior, used) == "pass"
        assert used <= strategy.max_questions

    def test_worst_case_additional(self):
        strategy = self._strategy(max_questions=7)
        assert strategy.worst_case_additional(0.5, 0) == 7
        assert strategy.worst_case_additional(0.5, 5) == 2
        assert strategy.worst_case_additional(0.95, 0) == 0

    def test_finer_grid_refines_decision(self):
        # As a -> 0 the representative converges to the true posterior.
        coarse = self._strategy(interval_width=0.5)
        fine = self._strategy(interval_width=0.01)
        assert abs(fine.representative(fine.interval_index(0.73)) - 0.73) < 0.01
        assert abs(coarse.representative(coarse.interval_index(0.73)) - 0.73) <= 0.5

    def test_validation(self):
        from repro.core.quality import PosteriorGridStrategy

        with pytest.raises(ValueError):
            PosteriorGridStrategy(interval_width=0.0)
        with pytest.raises(ValueError):
            PosteriorGridStrategy(0.1, pass_threshold=0.2, fail_threshold=0.3)
        with pytest.raises(ValueError):
            PosteriorGridStrategy(0.1, max_questions=0)
        with pytest.raises(ValueError):
            PosteriorGridStrategy(0.1, prior=0.0)
        strategy = self._strategy()
        with pytest.raises(ValueError):
            strategy.interval_index(1.5)
        with pytest.raises(ValueError):
            strategy.representative(99)
        with pytest.raises(ValueError):
            strategy.decision(0.5, -1)


class TestReduction:
    def test_worst_case_outstanding(self):
        strategy = MajorityVoteStrategy(3)
        positions = [(0, 0), (1, 1), (0, 2)]
        expected = 3 + 1 + 0
        assert worst_case_questions_outstanding(strategy, positions) == expected

    def test_reduce_builds_scaled_problem(self):
        strategy = MajorityVoteStrategy(5)
        problem = reduce_to_deadline_problem(
            strategy,
            num_filter_tasks=10,
            arrival_means=np.array([500.0, 500.0]),
            acceptance=paper_acceptance_model(),
            price_grid=np.arange(1.0, 11.0),
            penalty=PenaltyScheme(per_task=20.0),
        )
        assert problem.num_tasks == 50  # N * alpha = 10 * 5

    def test_reduce_validates_task_count(self):
        with pytest.raises(ValueError):
            reduce_to_deadline_problem(
                MajorityVoteStrategy(3),
                num_filter_tasks=0,
                arrival_means=np.array([1.0]),
                acceptance=paper_acceptance_model(),
                price_grid=np.arange(1.0, 3.0),
                penalty=PenaltyScheme(per_task=1.0),
            )

    def test_reduced_problem_solvable(self):
        strategy = MajorityVoteStrategy(3)
        problem = reduce_to_deadline_problem(
            strategy,
            num_filter_tasks=3,
            arrival_means=np.array([2000.0, 2000.0]),
            acceptance=paper_acceptance_model(),
            price_grid=np.arange(1.0, 11.0),
            penalty=PenaltyScheme(per_task=30.0),
        )
        from repro.core.deadline.vectorized import solve_deadline

        policy = solve_deadline(problem)
        assert policy.optimal_value > 0.0
