"""Tests for the batch-vectorized solver fast path."""
