"""Exact equality of the compiled kernels against the numpy reference.

The ``REPRO_KERNELS`` contract is *bit-identical results, whichever
backend runs*.  Float tolerance would let the two paths drift apart one
ulp at a time until engine traces diverge, so every comparison here is
**exact** (``np.array_equal``, no ``allclose``): the loop implementations
(what ``numba.njit`` compiles — tested un-jitted where numba is absent,
compiled where it is installed) must reproduce the numpy tensor
arithmetic operation for operation, over randomized shapes.

Also covered: the flag machinery itself — resolution, the warn-once
numpy fallback when numba is requested but absent, the scoped selector —
and end-to-end solver equality under each mode.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import kernels, solve_budget_batch, solve_deadline_batch
from repro.core.batch.budget import BudgetRequest
from repro.core.batch.kernels import (
    _deadline_layer_loops,
    _deadline_layer_numpy,
    _lower_hull_loops,
    _shard_tick_loops,
    _shard_tick_numpy,
)
from repro.market.acceptance import LogitAcceptance
from repro.util.convexhull import lower_convex_hull

from tests.core.batch.test_batch_deadline import random_problem
from tests.kernel_modes import KERNEL_MODES, kernel_mode


def random_layer(rng: np.random.Generator) -> tuple:
    """One randomized deadline layer: (means, pmf0, prices, opt_next, eps)."""
    batch = int(rng.integers(1, 5))
    n_tasks = int(rng.integers(1, 24))
    n_prices = int(rng.integers(1, 14))
    lam_t = rng.uniform(0.0, 150.0, batch)
    probs = rng.uniform(1e-4, 1.0, (batch, n_prices))
    means = lam_t[:, None] * probs
    prices = np.sort(rng.uniform(0.5, 30.0, (batch, n_prices)), axis=1)
    opt_next = rng.uniform(0.0, 500.0, (batch, n_tasks + 1))
    opt_next[:, 0] = 0.0
    eps = [None, 1e-9, 1e-6, 1e-2][int(rng.integers(4))]
    return means, np.exp(-means), prices, opt_next, eps


class TestDeadlineLayerKernel:
    @pytest.mark.parametrize("seed", range(12))
    def test_loops_match_numpy_exactly(self, seed):
        means, pmf0, prices, opt_next, eps = random_layer(
            np.random.default_rng(seed)
        )
        ref_opt, ref_best = _deadline_layer_numpy(
            means, pmf0, prices, opt_next, eps
        )
        loop_opt, loop_best = _deadline_layer_loops(
            means, pmf0, prices, opt_next,
            eps if eps is not None else 0.0, eps is not None,
        )
        assert np.array_equal(ref_best, loop_best)
        assert np.array_equal(ref_opt, loop_opt)  # exact, not allclose

    def test_single_price_single_task_edge(self):
        means = np.array([[3.0]])
        args = (means, np.exp(-means), np.array([[2.0]]),
                np.array([[0.0, 7.0]]), 1e-9)
        ref = _deadline_layer_numpy(*args)
        loop = _deadline_layer_loops(*args[:4], 1e-9, True)
        assert np.array_equal(ref[0], loop[0])
        assert np.array_equal(ref[1], loop[1])

    def test_log_space_means_route_to_numpy(self):
        # A layer containing a mean >= 700 must take the numpy path even
        # under the numba backend (the exactness contract's escape hatch).
        rng = np.random.default_rng(5)
        lam_t = np.array([900.0])
        probs = rng.uniform(0.5, 1.0, (1, 3))
        prices = np.sort(rng.uniform(1.0, 9.0, (1, 3)), axis=1)
        opt_next = rng.uniform(0.0, 50.0, (1, 6))
        with kernel_mode("numpy"):
            ref = kernels.deadline_layer(lam_t, probs, prices, opt_next, 1e-9)
        with kernel_mode("numba"):
            out = kernels.deadline_layer(lam_t, probs, prices, opt_next, 1e-9)
        assert np.array_equal(ref[0], out[0])
        assert np.array_equal(ref[1], out[1])

    @pytest.mark.parametrize("seed", range(4))
    def test_full_batch_solver_identical_across_modes(self, seed):
        rng = np.random.default_rng(100 + seed)
        problems = [random_problem(rng) for _ in range(4)]
        with kernel_mode("numpy"):
            ref = solve_deadline_batch(problems)
        with kernel_mode("numba"):
            out = solve_deadline_batch(problems)
        for a, b in zip(ref, out):
            assert np.array_equal(a.opt, b.opt)
            assert np.array_equal(a.price_index, b.price_index)


class TestHullKernel:
    @pytest.mark.parametrize("seed", range(12))
    def test_loops_match_python_hull(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 40))
        xs = np.unique(rng.uniform(0.0, 50.0, n))
        # Mix smooth, duplicate, and exactly-collinear y values so the
        # <=0 collinear-drop rule is exercised.
        ys = np.round(rng.uniform(0.0, 20.0, xs.size), 1)
        assert list(_lower_hull_loops(xs, ys)) == lower_convex_hull(
            xs.tolist(), ys.tolist()
        )

    def test_collinear_points_dropped_identically(self):
        xs = np.array([0.0, 1.0, 2.0, 3.0, 4.0])
        ys = np.array([4.0, 3.0, 2.0, 1.0, 0.0])  # one straight line
        assert list(_lower_hull_loops(xs, ys)) == lower_convex_hull(
            xs.tolist(), ys.tolist()
        )

    def test_dispatcher_falls_back_on_unsorted_xs(self):
        xs = [3.0, 1.0, 2.0]
        ys = [1.0, 5.0, 0.5]
        with kernel_mode("numba"):
            got = kernels.lower_hull_indices(np.array(xs), np.array(ys))
        assert got == lower_convex_hull(xs, ys)

    @pytest.mark.parametrize("seed", range(4))
    def test_budget_batch_identical_across_modes(self, seed):
        rng = np.random.default_rng(200 + seed)
        acceptance = LogitAcceptance(
            s=float(rng.uniform(2.0, 8.0)),
            b=float(rng.uniform(-1.0, 2.0)),
            m=float(rng.uniform(100.0, 1500.0)),
        )
        grid = np.arange(1.0, float(rng.integers(6, 20)))
        requests = [
            BudgetRequest(
                num_tasks=int(rng.integers(1, 40)),
                budget=float(rng.uniform(40.0, 4000.0) + 40.0 * 40),
                acceptance=acceptance,
                price_grid=grid,
            )
            for _ in range(5)
        ]
        with kernel_mode("numpy"):
            ref = solve_budget_batch(requests)
        with kernel_mode("numba"):
            out = solve_budget_batch(requests)
        assert ref == out


class TestShardTickKernel:
    @pytest.mark.parametrize("seed", range(8))
    def test_loops_match_numpy_exactly(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 60))
        accepted = rng.integers(0, 30, n)
        remaining = rng.integers(0, 30, n)
        prices = rng.uniform(0.5, 20.0, n)
        ref_done, ref_cost = _shard_tick_numpy(accepted, remaining, prices)
        loop_done, loop_cost = _shard_tick_loops(accepted, remaining, prices)
        assert np.array_equal(ref_done, loop_done)
        assert np.array_equal(ref_cost, loop_cost)
        assert np.all(ref_done <= remaining)


class TestKernelFlag:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            kernels.set_kernels("cuda")

    def test_numpy_always_available(self):
        assert "numpy" in kernels.available_kernels()
        with kernels.use_kernels("numpy"):
            assert kernels.active_kernels() == "numpy"

    def test_env_var_read_on_none(self, monkeypatch):
        monkeypatch.setenv(kernels.KERNELS_ENV, "numpy")
        with kernels.use_kernels(None):
            assert kernels.active() == "numpy"

    def test_auto_resolves_to_an_available_backend(self):
        with kernels.use_kernels("auto"):
            assert kernels.active() in kernels.available_kernels()

    def test_use_kernels_restores_previous_selection(self):
        before = kernels.active()
        with kernels.use_kernels("numpy"):
            assert kernels.active() == "numpy"
        assert kernels.active() == before

    @pytest.mark.skipif(kernels.HAVE_NUMBA, reason="numba is installed here")
    def test_numba_request_falls_back_with_warning(self):
        with pytest.warns(RuntimeWarning, match="falling back to the numpy"):
            assert kernels.set_kernels("numba") == "numpy"
        kernels.set_kernels(None)

    @pytest.mark.skipif(kernels.HAVE_NUMBA, reason="numba is installed here")
    def test_auto_without_numba_is_numpy(self):
        with kernels.use_kernels("auto"):
            assert kernels.active() == "numpy"
