"""Equivalence of the batched deadline kernel with the scalar solvers.

The batch fast path is only a fast path if it computes the *same tables*:
these property tests draw randomized instances (sizes, horizons, grids,
acceptance parameters, penalties, truncation settings) and assert the
stacked kernel reproduces ``solve_deadline`` (and, on small instances,
the literal Algorithm 1 of ``solve_deadline_simple``) — identical price
tables, values within float tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import solve_deadline_batch
from repro.core.batch.deadline import group_key
from repro.core.deadline.model import DeadlineProblem, PenaltyScheme
from repro.core.deadline.simple_dp import solve_deadline_simple
from repro.core.deadline.vectorized import solve_deadline
from repro.market.acceptance import LogitAcceptance, paper_acceptance_model


def random_problem(rng: np.random.Generator, *, small: bool = False) -> DeadlineProblem:
    """One randomized deadline instance (small => Algorithm-1 tractable)."""
    num_tasks = int(rng.integers(3, 15 if small else 45))
    horizon = int(rng.integers(3, 8 if small else 20))
    num_prices = int(rng.integers(5, 15 if small else 35))
    eps = [1e-9, 1e-6, None][int(rng.integers(3))]
    acceptance = LogitAcceptance(
        s=float(rng.uniform(2.0, 10.0)),
        b=float(rng.uniform(-1.0, 3.0)),
        m=float(rng.uniform(50.0, 2000.0)),
    )
    return DeadlineProblem(
        num_tasks=num_tasks,
        arrival_means=rng.uniform(0.0, 120.0, horizon),
        acceptance=acceptance,
        price_grid=np.arange(1.0, num_prices + 1.0),
        penalty=PenaltyScheme(
            per_task=float(rng.uniform(10.0, 400.0)),
            existence=float(rng.choice([0.0, 1.5])),
        ),
        truncation_eps=eps,
    )


def assert_same_policy(scalar, batch) -> None:
    """Identical price tables; values within float tolerance."""
    assert np.array_equal(scalar.price_index, batch.price_index)
    assert np.allclose(scalar.opt, batch.opt, rtol=1e-9, atol=1e-8)


class TestAgainstVectorizedSolver:
    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_instances_match(self, seed):
        rng = np.random.default_rng(seed)
        problems = [random_problem(rng) for _ in range(5)]
        batch = solve_deadline_batch(problems)
        for problem, policy in zip(problems, batch):
            assert_same_policy(solve_deadline(problem), policy)

    def test_mixed_shapes_group_and_restore_order(self):
        rng = np.random.default_rng(99)
        problems = [random_problem(rng) for _ in range(4)]
        # Duplicate each shape with a different penalty: same group, new
        # instance — exercises multi-instance groups and order restoration.
        problems += [
            p.with_penalty(PenaltyScheme(per_task=33.0)) for p in problems
        ]
        assert len({group_key(p) for p in problems}) < len(problems)
        batch = solve_deadline_batch(problems)
        for problem, policy in zip(problems, batch):
            assert policy.problem is problem
            assert_same_policy(solve_deadline(problem), policy)

    def test_engine_scale_means_match(self):
        # Marketplace-scale arrival means (large Poisson means exercise the
        # log-space pmf branch and deep truncation).
        acceptance = paper_acceptance_model()
        problems = [
            DeadlineProblem(
                num_tasks=30,
                arrival_means=np.full(10, level),
                acceptance=acceptance,
                price_grid=np.arange(1.0, 31.0),
                penalty=PenaltyScheme(per_task=150.0),
            )
            for level in (5.0, 300.0, 1500.0, 4000.0)
        ]
        for problem, policy in zip(problems, solve_deadline_batch(problems)):
            assert_same_policy(solve_deadline(problem), policy)

    def test_zero_arrival_intervals(self):
        acceptance = paper_acceptance_model()
        problem = DeadlineProblem(
            num_tasks=8,
            arrival_means=np.array([0.0, 40.0, 0.0, 12.0]),
            acceptance=acceptance,
            price_grid=np.arange(1.0, 16.0),
            penalty=PenaltyScheme(per_task=90.0),
        )
        (policy,) = solve_deadline_batch([problem])
        assert_same_policy(solve_deadline(problem), policy)


class TestAgainstAlgorithm1:
    @pytest.mark.parametrize("seed", range(4))
    def test_small_instances_match_the_literal_dp(self, seed):
        rng = np.random.default_rng(1000 + seed)
        problems = [random_problem(rng, small=True) for _ in range(3)]
        batch = solve_deadline_batch(problems)
        for problem, policy in zip(problems, batch):
            assert_same_policy(solve_deadline_simple(problem), policy)


class TestInterface:
    def test_empty_input(self):
        assert solve_deadline_batch([]) == []

    def test_single_instance_degrades_gracefully(self):
        rng = np.random.default_rng(7)
        problem = random_problem(rng)
        (policy,) = solve_deadline_batch([problem])
        assert policy.solver == "batch"
        assert_same_policy(solve_deadline(problem), policy)

    def test_policies_evaluate_like_scalar_ones(self):
        # The produced DeadlinePolicy supports the same downstream API
        # (forward evaluation) with the same numbers.
        rng = np.random.default_rng(11)
        problem = random_problem(rng)
        (policy,) = solve_deadline_batch([problem])
        scalar = solve_deadline(problem).evaluate()
        batched = policy.evaluate()
        assert batched.expected_cost == pytest.approx(scalar.expected_cost)
        assert batched.prob_all_done == pytest.approx(scalar.prob_all_done)
