"""Equivalence of the batched budget solver with scalar Algorithm 3."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import BudgetRequest, solve_budget_batch
from repro.core.budget.static_lp import solve_budget_hull
from repro.market.acceptance import LogitAcceptance, paper_acceptance_model


def random_request(rng: np.random.Generator, acceptance) -> BudgetRequest:
    num_tasks = int(rng.integers(5, 300))
    max_price = int(rng.integers(10, 50))
    grid = np.arange(1.0, max_price + 1.0)
    # Budgets from barely-feasible to saturating the top price.
    per_task = float(rng.uniform(1.0, max_price))
    return BudgetRequest(
        num_tasks=num_tasks,
        budget=num_tasks * per_task,
        acceptance=acceptance,
        price_grid=grid,
    )


class TestEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_instances_match_scalar(self, seed):
        rng = np.random.default_rng(seed)
        acceptance = LogitAcceptance(
            s=float(rng.uniform(3.0, 20.0)),
            b=float(rng.uniform(-1.0, 2.0)),
            m=float(rng.uniform(100.0, 5000.0)),
        )
        requests = []
        for _ in range(10):
            request = random_request(rng, acceptance)
            try:  # keep only instances the scalar solver accepts
                solve_budget_hull(
                    request.num_tasks,
                    request.budget,
                    request.acceptance,
                    request.price_grid,
                )
            except ValueError:
                continue
            requests.append(request)
        assert requests, "workload generation produced no feasible instance"
        batch = solve_budget_batch(requests)
        for request, allocation in zip(requests, batch):
            scalar = solve_budget_hull(
                request.num_tasks,
                request.budget,
                request.acceptance,
                request.price_grid,
            )
            assert allocation == scalar  # dataclass equality: exact match

    def test_mixed_marketplaces_in_one_batch(self):
        paper = paper_acceptance_model()
        other = LogitAcceptance(s=5.0, b=0.5, m=800.0)
        requests = [
            BudgetRequest(50, 600.0, paper, np.arange(1.0, 31.0)),
            BudgetRequest(80, 900.0, other, np.arange(1.0, 26.0)),
            BudgetRequest(20, 250.0, paper, np.arange(1.0, 31.0)),
        ]
        for request, allocation in zip(requests, solve_budget_batch(requests)):
            scalar = solve_budget_hull(
                request.num_tasks,
                request.budget,
                request.acceptance,
                request.price_grid,
            )
            assert allocation == scalar


class TestContract:
    def test_infeasible_budget_raises_like_scalar(self):
        request = BudgetRequest(
            100, 10.0, paper_acceptance_model(), np.arange(1.0, 31.0)
        )
        with pytest.raises(ValueError, match="cannot cover"):
            solve_budget_batch([request])

    def test_request_validation(self):
        acceptance = paper_acceptance_model()
        with pytest.raises(ValueError, match="num_tasks"):
            BudgetRequest(0, 10.0, acceptance, np.arange(1.0, 5.0))
        with pytest.raises(ValueError, match="budget"):
            BudgetRequest(5, -1.0, acceptance, np.arange(1.0, 5.0))
        with pytest.raises(ValueError, match="ascending"):
            BudgetRequest(5, 10.0, acceptance, np.array([3.0, 2.0]))

    def test_signature_matches_budget_signature(self):
        from repro.core.budget.static_lp import budget_signature

        request = BudgetRequest(
            40, 480.0, paper_acceptance_model(), np.arange(1.0, 31.0)
        )
        assert request.signature() == budget_signature(
            40, 480.0, request.acceptance, request.price_grid
        )

    def test_empty_batch(self):
        assert solve_budget_batch([]) == []
