"""Tests for the Faridani fixed-price baseline and the floor price c0."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baselines import faridani_fixed_price, floor_price
from repro.util.poisson import poisson_tail

from tests.conftest import make_problem


@pytest.fixture
def problem():
    return make_problem(
        num_tasks=10,
        arrival_means=[4000.0, 3000.0, 5000.0],
        max_price=15.0,
    )


class TestFloorPrice:
    def test_definition(self, problem):
        c0 = floor_price(problem)
        total = problem.total_arrivals()
        acc = problem.acceptance
        assert total * acc.probability(c0) >= problem.num_tasks
        below = c0 - 1.0
        if below >= problem.price_grid[0]:
            assert total * acc.probability(below) < problem.num_tasks

    def test_infeasible_raises(self):
        dead = make_problem(num_tasks=100, arrival_means=[10.0], max_price=5.0)
        with pytest.raises(ValueError, match="infeasible"):
            floor_price(dead)

    def test_paper_setting_floor_is_12(self):
        # The Section 5.2.1 anchor: c0 ~ 12 cents for the default workload.
        from repro.experiments.config import default_setting

        problem = default_setting().problem()
        assert floor_price(problem) == 12.0


class TestFaridaniFixedPrice:
    def test_confidence_met_minimally(self, problem):
        diag = faridani_fixed_price(problem, confidence=0.99)
        assert diag.feasible
        assert diag.completion_probability >= 0.99
        below = diag.price - 1.0
        if below >= problem.price_grid[0]:
            mean = problem.total_arrivals() * problem.acceptance.probability(below)
            assert poisson_tail(problem.num_tasks, mean) < 0.99

    def test_monotone_in_confidence(self, problem):
        low = faridani_fixed_price(problem, confidence=0.5)
        high = faridani_fixed_price(problem, confidence=0.9999)
        assert high.price >= low.price

    def test_price_at_least_floor(self, problem):
        diag = faridani_fixed_price(problem, confidence=0.999)
        assert diag.price >= floor_price(problem)

    def test_infeasible_flagged(self):
        dead = make_problem(num_tasks=100, arrival_means=[10.0], max_price=5.0)
        diag = faridani_fixed_price(dead, confidence=0.999)
        assert not diag.feasible
        assert diag.price == 5.0
        assert diag.completion_probability < 0.999

    def test_confidence_validated(self, problem):
        with pytest.raises(ValueError):
            faridani_fixed_price(problem, confidence=1.5)

    def test_expected_completions_reported(self, problem):
        diag = faridani_fixed_price(problem, confidence=0.999)
        expected = problem.total_arrivals() * problem.acceptance.probability(diag.price)
        assert diag.expected_completions == pytest.approx(expected)

    def test_paper_setting_needs_16(self):
        # Section 5.2.1: the fixed baseline needs 16 cents at 99.9%.
        from repro.experiments.config import default_setting

        problem = default_setting().problem()
        diag = faridani_fixed_price(problem, confidence=0.999)
        assert diag.price == 16.0
