"""Tests for the multiple-task-types extension (Section 6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.multitype import (
    MultitypeProblem,
    TaskType,
    solve_multitype_joint,
    solve_multitype_separable,
)
from repro.market.acceptance import LogitAcceptance, paper_acceptance_model


def make_types(sizes=(2, 3), penalty=(30.0, 20.0)):
    return tuple(
        TaskType(
            name=f"type{i}",
            num_tasks=n,
            acceptance=LogitAcceptance(s=15.0, b=-0.39 + 0.2 * i, m=2000.0),
            price_grid=np.arange(1.0, 9.0),
            penalty_per_task=p,
        )
        for i, (n, p) in enumerate(zip(sizes, penalty))
    )


class TestTaskType:
    def test_validation(self):
        with pytest.raises(ValueError):
            TaskType("t", 0, paper_acceptance_model(), np.array([1.0]), 1.0)
        with pytest.raises(ValueError):
            TaskType("t", 1, paper_acceptance_model(), np.array([1.0]), -1.0)

    def test_as_deadline_problem(self):
        task_type = make_types()[0]
        problem = task_type.as_deadline_problem(np.array([100.0, 200.0]), 1e-9)
        assert problem.num_tasks == task_type.num_tasks
        assert problem.penalty.per_task == task_type.penalty_per_task


class TestSeparableSolver:
    def test_value_is_sum_of_per_type_values(self):
        problem = MultitypeProblem(
            types=make_types(), arrival_means=np.array([800.0, 600.0])
        )
        solution = solve_multitype_separable(problem)
        assert solution.solver == "separable"
        per_type = sum(policy.optimal_value for policy in solution.policies)
        assert solution.optimal_value == pytest.approx(per_type)

    def test_rejects_coupled_penalty(self):
        problem = MultitypeProblem(
            types=make_types(),
            arrival_means=np.array([500.0]),
            joint_penalty=lambda counts: 100.0 * (sum(counts) > 0),
        )
        with pytest.raises(ValueError, match="coupled"):
            solve_multitype_separable(problem)


class TestJointSolver:
    def test_matches_separable_when_additive(self):
        # With the default additive penalty the joint DP must reproduce the
        # decomposed solution exactly.
        problem = MultitypeProblem(
            types=make_types(sizes=(2, 2)),
            arrival_means=np.array([700.0, 500.0]),
            truncation_eps=None,
        )
        separable = solve_multitype_separable(problem)
        joint = solve_multitype_joint(problem)
        assert joint.optimal_value == pytest.approx(
            separable.optimal_value, rel=1e-9
        )

    def test_coupled_penalty_changes_value(self):
        types = make_types(sizes=(2, 2))
        additive = MultitypeProblem(
            types=types, arrival_means=np.array([600.0]), truncation_eps=None
        )
        coupled = MultitypeProblem(
            types=types,
            arrival_means=np.array([600.0]),
            truncation_eps=None,
            joint_penalty=lambda counts: additive.default_terminal(counts)
            + 50.0 * (any(counts)),
        )
        value_additive = solve_multitype_joint(additive).optimal_value
        value_coupled = solve_multitype_joint(coupled).optimal_value
        assert value_coupled > value_additive

    def test_joint_prices_recorded(self):
        problem = MultitypeProblem(
            types=make_types(sizes=(1, 1)),
            arrival_means=np.array([500.0]),
            truncation_eps=None,
        )
        joint = solve_multitype_joint(problem)
        assert joint.joint_prices is not None
        # Root state at t=0 has a price decision for both types.
        assert (1, 1, 0) in joint.joint_prices
        assert len(joint.joint_prices[(1, 1, 0)]) == 2

    def test_single_type_matches_single_type_dp(self):
        # A one-type joint instance reduces to the Section 3 solver.
        types = make_types(sizes=(3,), penalty=(25.0,))
        problem = MultitypeProblem(
            types=types, arrival_means=np.array([400.0, 300.0]), truncation_eps=None
        )
        joint = solve_multitype_joint(problem)
        separable = solve_multitype_separable(problem)
        assert joint.optimal_value == pytest.approx(separable.optimal_value, rel=1e-9)


class TestValidation:
    def test_empty_types_rejected(self):
        with pytest.raises(ValueError):
            MultitypeProblem(types=(), arrival_means=np.array([1.0]))

    def test_empty_means_rejected(self):
        with pytest.raises(ValueError):
            MultitypeProblem(types=make_types(), arrival_means=np.array([]))
