"""Empirical check of Theorem 3: dynamic repricing cannot beat static.

The theory chain (Theorems 3-5) says the optimal *static* allocation
minimizes the expected worker-arrival count E[W] among all strategies,
dynamic ones included.  These tests pit the Algorithm 3 allocation against
natural dynamic heuristics in a per-arrival simulation and confirm none of
them achieves a smaller mean W within statistical resolution.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.budget.semi_static import expected_worker_arrivals
from repro.core.budget.static_lp import solve_budget_hull
from repro.market.acceptance import paper_acceptance_model

NUM_TASKS = 12
BUDGET = 150.0
GRID = np.arange(1.0, 31.0)
REPLICATIONS = 1500


def simulate_dynamic(policy, acceptance, rng, max_arrivals=2_000_000):
    """Per-arrival walk: ``policy(n_remaining, budget_left) -> price``.

    Returns the arrival count W consumed to finish all tasks, or raises if
    the policy runs the budget dry (test policies are built not to).
    """
    n = NUM_TASKS
    budget = BUDGET
    arrivals = 0
    while n > 0:
        price = float(policy(n, budget))
        if price > budget + 1e-9:
            raise AssertionError("policy overspent its remaining budget")
        p = acceptance.probability(price)
        arrivals += int(rng.geometric(p))
        if arrivals > max_arrivals:
            raise AssertionError("runaway simulation")
        budget -= price
        n -= 1
    return arrivals


@pytest.fixture(scope="module")
def acceptance():
    return paper_acceptance_model()


@pytest.fixture(scope="module")
def static_optimum(acceptance):
    allocation = solve_budget_hull(NUM_TASKS, BUDGET, acceptance, GRID)
    return expected_worker_arrivals(allocation.price_sequence(), acceptance)


class TestNoDynamicImprovement:
    def _mean_w(self, policy, acceptance, seed):
        rng = np.random.default_rng(seed)
        samples = [
            simulate_dynamic(policy, acceptance, rng) for _ in range(REPLICATIONS)
        ]
        return float(np.mean(samples)), float(np.std(samples) / np.sqrt(len(samples)))

    def test_even_split_heuristic(self, acceptance, static_optimum):
        # Spend the remaining budget evenly over remaining tasks.
        def policy(n, budget):
            per_task = budget / n
            affordable = GRID[GRID <= per_task]
            return affordable[-1] if affordable.size else GRID[0]

        mean_w, stderr = self._mean_w(policy, acceptance, seed=41)
        assert mean_w >= static_optimum - 4 * stderr

    def test_frontload_heuristic(self, acceptance, static_optimum):
        # Spend aggressively early (max affordable keeping 1c for the rest).
        def policy(n, budget):
            ceiling = budget - (n - 1) * GRID[0]
            affordable = GRID[GRID <= ceiling]
            return affordable[-1] if affordable.size else GRID[0]

        mean_w, stderr = self._mean_w(policy, acceptance, seed=42)
        assert mean_w >= static_optimum - 4 * stderr

    def test_static_simulation_matches_formula(self, acceptance, static_optimum):
        # The static allocation replayed through the same simulator lands
        # on its Theorem 5 value — validating the harness itself.
        allocation = solve_budget_hull(NUM_TASKS, BUDGET, acceptance, GRID)
        sequence = list(allocation.price_sequence())

        def policy(n, budget):
            return sequence[NUM_TASKS - n]

        mean_w, stderr = self._mean_w(policy, acceptance, seed=43)
        assert mean_w == pytest.approx(static_optimum, abs=5 * stderr)
