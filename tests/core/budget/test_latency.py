"""Tests for the latency linearity (Section 4.2.2) and the Fig. 11 sampler."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.budget.latency import completion_time_distribution, expected_latency_hours
from repro.core.budget.semi_static import SemiStaticStrategy, expected_worker_arrivals
from repro.market.acceptance import paper_acceptance_model
from repro.market.rates import ConstantRate


class TestExpectedLatency:
    def test_linearity_formula(self):
        assert expected_latency_hours(1000.0, 250.0) == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_latency_hours(100.0, 0.0)
        with pytest.raises(ValueError):
            expected_latency_hours(-1.0, 10.0)


class TestCompletionTimeDistribution:
    def test_matches_linearity_on_constant_rate(self, rng):
        # E[T] = E[W] / lambda-bar exactly for a homogeneous process.
        model = paper_acceptance_model()
        strategy = SemiStaticStrategy((20.0, 20.0, 18.0))
        rate = ConstantRate(500.0)
        times = completion_time_distribution(
            strategy, model, rate, num_replications=300, rng=rng,
            horizon_hours=24.0 * 30,
        )
        finite = times[np.isfinite(times)]
        assert finite.size == 300  # generous horizon: everything resolves
        expected = expected_worker_arrivals(strategy.prices, model) / 500.0
        assert finite.mean() == pytest.approx(expected, rel=0.1)

    def test_unfinished_marked_inf(self, rng):
        model = paper_acceptance_model()
        strategy = SemiStaticStrategy((1.0,) * 50)
        times = completion_time_distribution(
            strategy, model, ConstantRate(1.0), num_replications=5, rng=rng,
            horizon_hours=1.0,
        )
        assert np.all(np.isinf(times))

    def test_times_positive_and_ordered_stages(self, rng):
        model = paper_acceptance_model()
        strategy = SemiStaticStrategy((25.0, 25.0))
        times = completion_time_distribution(
            strategy, model, ConstantRate(2000.0), num_replications=50, rng=rng,
            horizon_hours=100.0,
        )
        assert np.all(times > 0)

    def test_validation(self, rng):
        model = paper_acceptance_model()
        strategy = SemiStaticStrategy((5.0,))
        with pytest.raises(ValueError):
            completion_time_distribution(
                strategy, model, ConstantRate(1.0), num_replications=0, rng=rng
            )
        with pytest.raises(ValueError):
            completion_time_distribution(
                strategy, model, ConstantRate(1.0), num_replications=1, rng=rng,
                horizon_hours=0.0,
            )
