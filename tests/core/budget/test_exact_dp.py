"""Tests for the Theorem 6 pseudo-polynomial exact DP."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.budget.exact_dp import solve_budget_exact
from repro.market.acceptance import paper_acceptance_model

GRID = np.arange(1.0, 16.0)


def brute_force(num_tasks, budget, model, grid):
    """Enumerate all price multisets (combinations with repetition)."""
    best = None
    for combo in itertools.combinations_with_replacement(grid, num_tasks):
        if sum(combo) > budget:
            continue
        value = sum(1.0 / model.probability(c) for c in combo)
        if best is None or value < best[0]:
            best = (value, combo)
    return best


class TestSolveBudgetExact:
    @pytest.mark.parametrize("num_tasks,budget", [(2, 10.0), (3, 18.0), (4, 30.0)])
    def test_matches_brute_force(self, num_tasks, budget):
        model = paper_acceptance_model()
        exact = solve_budget_exact(num_tasks, budget, model, GRID)
        best_value, _ = brute_force(num_tasks, budget, model, GRID)
        assert exact.expected_arrivals == pytest.approx(best_value, rel=1e-12)
        assert exact.total_cost <= budget + 1e-9

    def test_counts_sum_to_n(self):
        model = paper_acceptance_model()
        exact = solve_budget_exact(12, 100.0, model, GRID)
        assert exact.num_tasks == 12
        assert exact.rounding_gap_bound == 0.0

    def test_spends_as_much_as_helps(self):
        # 1/p is decreasing in price, so more budget never hurts.
        model = paper_acceptance_model()
        small = solve_budget_exact(5, 25.0, model, GRID)
        large = solve_budget_exact(5, 60.0, model, GRID)
        assert large.expected_arrivals <= small.expected_arrivals + 1e-9

    def test_price_unit_scaling(self):
        model = paper_acceptance_model()
        cents = solve_budget_exact(4, 20.0, model, GRID)
        # Same problem expressed in half-cent units.
        half = solve_budget_exact(
            4, 20.0, model, GRID, price_unit=0.5
        )
        assert half.expected_arrivals == pytest.approx(cents.expected_arrivals)

    def test_off_lattice_grid_rejected(self):
        model = paper_acceptance_model()
        with pytest.raises(ValueError, match="multiple of price_unit"):
            solve_budget_exact(3, 10.0, model, [1.5, 2.0], price_unit=1.0)

    def test_infeasible_rejected(self):
        model = paper_acceptance_model()
        with pytest.raises(ValueError, match="cannot cover"):
            solve_budget_exact(10, 5.0, model, GRID)

    def test_validation(self):
        model = paper_acceptance_model()
        with pytest.raises(ValueError):
            solve_budget_exact(0, 10.0, model, GRID)
        with pytest.raises(ValueError):
            solve_budget_exact(2, -1.0, model, GRID)
        with pytest.raises(ValueError):
            solve_budget_exact(2, 10.0, model, GRID, price_unit=0.0)
