"""Property-based tests for the budget solvers beyond the paper's p(c).

Algorithm 3's correctness argument (Theorems 7-8) only needs ``p(c)``
positive and the points ``(c, 1/p(c))`` well-defined — not the specific
Eq. 13 instance.  These tests draw random logit parameters and budgets and
check the structural guarantees hold everywhere.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.budget.exact_dp import solve_budget_exact
from repro.core.budget.semi_static import expected_worker_arrivals
from repro.core.budget.static_lp import solve_budget_hull
from repro.market.acceptance import LogitAcceptance

GRID = np.arange(1.0, 21.0)

logit_params = st.tuples(
    st.floats(min_value=3.0, max_value=40.0),    # s
    st.floats(min_value=-2.0, max_value=2.0),    # b
    st.floats(min_value=10.0, max_value=50_000.0),  # m
)


class TestHullStructureEverywhere:
    @given(
        params=logit_params,
        num_tasks=st.integers(min_value=1, max_value=40),
        per_task_budget=st.floats(min_value=1.0, max_value=20.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_feasible_and_consistent(self, params, num_tasks, per_task_budget):
        model = LogitAcceptance(*params)
        budget = num_tasks * per_task_budget
        allocation = solve_budget_hull(num_tasks, budget, model, GRID)
        # Structural guarantees independent of the acceptance instance.
        assert allocation.num_tasks == num_tasks
        assert allocation.total_cost <= budget + 1e-6
        assert len(allocation.prices) <= 2
        assert allocation.expected_arrivals == pytest.approx(
            expected_worker_arrivals(allocation.price_sequence(), model)
        )

    @given(
        params=logit_params,
        num_tasks=st.integers(min_value=2, max_value=12),
        per_task_budget=st.floats(min_value=1.5, max_value=18.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_theorem8_gap_everywhere(self, params, num_tasks, per_task_budget):
        model = LogitAcceptance(*params)
        budget = num_tasks * per_task_budget
        hull = solve_budget_hull(num_tasks, budget, model, GRID)
        exact = solve_budget_exact(num_tasks, budget, model, GRID)
        assert hull.expected_arrivals >= exact.expected_arrivals - 1e-6
        assert hull.expected_arrivals <= (
            exact.expected_arrivals + hull.rounding_gap_bound + 1e-6
        )

    @given(
        params=logit_params,
        num_tasks=st.integers(min_value=2, max_value=20),
    )
    @settings(max_examples=30, deadline=None)
    def test_more_budget_never_slower(self, params, num_tasks):
        model = LogitAcceptance(*params)
        small = solve_budget_hull(num_tasks, num_tasks * 3.0, model, GRID)
        large = solve_budget_hull(num_tasks, num_tasks * 12.0, model, GRID)
        assert large.expected_arrivals <= small.expected_arrivals + 1e-6
