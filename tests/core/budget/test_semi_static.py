"""Tests for semi-static strategies and Theorem 5 (E[W] = sum 1/p(ci))."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.budget.semi_static import (
    SemiStaticStrategy,
    expected_worker_arrivals,
    sample_worker_arrivals,
)
from repro.market.acceptance import EmpiricalAcceptance, paper_acceptance_model


class TestExpectedWorkerArrivals:
    def test_formula(self, paper_acceptance):
        prices = [10.0, 12.0, 14.0]
        expected = sum(1.0 / paper_acceptance.probability(c) for c in prices)
        assert expected_worker_arrivals(prices, paper_acceptance) == pytest.approx(
            expected
        )

    def test_zero_probability_rejected(self):
        model = EmpiricalAcceptance({0.0: 0.0, 1.0: 0.5})
        with pytest.raises(ValueError, match="diverge"):
            expected_worker_arrivals([0.0], model)

    @given(st.permutations([5.0, 8.0, 11.0, 14.0, 17.0]))
    @settings(max_examples=30, deadline=None)
    def test_order_invariance(self, permuted):
        # Theorem 5: E[W] depends only on the multiset of prices.
        model = paper_acceptance_model()
        base = expected_worker_arrivals([5.0, 8.0, 11.0, 14.0, 17.0], model)
        assert expected_worker_arrivals(list(permuted), model) == pytest.approx(base)

    def test_monte_carlo_agreement(self, rng, paper_acceptance):
        # Simulate the per-arrival acceptance walk and compare to Theorem 5.
        prices = [12.0, 15.0]
        expected = expected_worker_arrivals(prices, paper_acceptance)
        probs = [paper_acceptance.probability(c) for c in prices]
        totals = []
        for _ in range(400):
            count = 0
            for p in probs:
                count += rng.geometric(p)  # arrivals until acceptance, incl.
            totals.append(count)
        assert np.mean(totals) == pytest.approx(expected, rel=0.1)


class TestSampleWorkerArrivals:
    def test_theorem5_identity(self, rng, paper_acceptance):
        # Monte-Carlo mean of W matches sum_i 1/p(c_i).
        prices = [10.0, 13.0, 16.0]
        samples = sample_worker_arrivals(
            prices, paper_acceptance, rng, num_replications=3000
        )
        expected = expected_worker_arrivals(prices, paper_acceptance)
        assert samples.mean() == pytest.approx(expected, rel=0.05)

    def test_order_invariance_in_distribution(self, rng, paper_acceptance):
        # The sum of independent geometrics is exchangeable in the stages.
        forward = sample_worker_arrivals(
            [10.0, 16.0], paper_acceptance, np.random.default_rng(5), 3000
        )
        backward = sample_worker_arrivals(
            [16.0, 10.0], paper_acceptance, np.random.default_rng(6), 3000
        )
        assert forward.mean() == pytest.approx(backward.mean(), rel=0.1)

    def test_at_least_one_arrival_per_task(self, rng, paper_acceptance):
        samples = sample_worker_arrivals(
            [30.0] * 5, paper_acceptance, rng, num_replications=50
        )
        assert np.all(samples >= 5)

    def test_validation(self, rng, paper_acceptance):
        with pytest.raises(ValueError):
            sample_worker_arrivals([10.0], paper_acceptance, rng, 0)
        dead = EmpiricalAcceptance({1.0: 0.0})
        with pytest.raises(ValueError):
            sample_worker_arrivals([1.0], dead, rng, 10)


class TestSemiStaticStrategy:
    def test_basic_accessors(self):
        strategy = SemiStaticStrategy((5.0, 3.0, 8.0))
        assert strategy.num_tasks == 3
        assert strategy.total_cost == pytest.approx(16.0)
        assert strategy.price_at(0) == 5.0
        assert strategy.price_at(2) == 8.0

    def test_price_at_bounds(self):
        strategy = SemiStaticStrategy((5.0,))
        with pytest.raises(ValueError):
            strategy.price_at(1)
        with pytest.raises(ValueError):
            strategy.price_at(-1)

    def test_as_static_sorted_descending(self):
        strategy = SemiStaticStrategy((5.0, 9.0, 7.0))
        static = strategy.as_static()
        assert static.prices == (9.0, 7.0, 5.0)

    def test_as_static_preserves_expected_arrivals(self, paper_acceptance):
        # The Theorem 3 construction: reordering costs nothing.
        strategy = SemiStaticStrategy((5.0, 9.0, 7.0))
        assert strategy.as_static().expected_arrivals(
            paper_acceptance
        ) == pytest.approx(strategy.expected_arrivals(paper_acceptance))

    def test_validation(self):
        with pytest.raises(ValueError):
            SemiStaticStrategy(())
        with pytest.raises(ValueError):
            SemiStaticStrategy((1.0, -2.0))
