"""Tests for Algorithm 3 (convex hull), the LP cross-check, Theorems 7-8."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.budget.exact_dp import solve_budget_exact
from repro.core.budget.lp_solver import solve_budget_lp
from repro.core.budget.static_lp import solve_budget_hull
from repro.market.acceptance import paper_acceptance_model

GRID = np.arange(1.0, 31.0)


class TestSolveBudgetHull:
    def test_counts_and_budget(self, paper_acceptance):
        allocation = solve_budget_hull(200, 2500.0, paper_acceptance, GRID)
        assert allocation.num_tasks == 200
        assert allocation.total_cost <= 2500.0 + 1e-9
        assert len(allocation.prices) <= 2  # Theorem 7 structure

    def test_two_price_bracketing(self, paper_acceptance):
        allocation = solve_budget_hull(200, 2500.0, paper_acceptance, GRID)
        if len(allocation.prices) == 2:
            c1, c2 = allocation.prices
            assert c1 <= 2500.0 / 200 < c2

    def test_exact_multiple_single_price(self, paper_acceptance):
        # Budget exactly N * c for a hull price: one price suffices.
        allocation = solve_budget_hull(10, 10 * 30.0, paper_acceptance, GRID)
        assert allocation.total_cost <= 300.0 + 1e-9
        assert allocation.expected_arrivals <= 10 / paper_acceptance.probability(30.0) + 1e-6

    def test_price_sequence_descending(self, paper_acceptance):
        allocation = solve_budget_hull(20, 250.0, paper_acceptance, GRID)
        seq = allocation.price_sequence()
        assert len(seq) == 20
        assert all(a >= b for a, b in zip(seq, seq[1:]))

    def test_as_semi_static(self, paper_acceptance):
        allocation = solve_budget_hull(20, 250.0, paper_acceptance, GRID)
        strategy = allocation.as_semi_static()
        assert strategy.expected_arrivals(paper_acceptance) == pytest.approx(
            allocation.expected_arrivals
        )

    def test_infeasible_budget_rejected(self, paper_acceptance):
        with pytest.raises(ValueError, match="cannot cover"):
            solve_budget_hull(100, 50.0, paper_acceptance, GRID)

    def test_validation(self, paper_acceptance):
        with pytest.raises(ValueError):
            solve_budget_hull(0, 100.0, paper_acceptance, GRID)
        with pytest.raises(ValueError):
            solve_budget_hull(10, -1.0, paper_acceptance, GRID)
        with pytest.raises(ValueError):
            solve_budget_hull(10, 100.0, paper_acceptance, [2.0, 1.0])


class TestAgainstLP:
    @given(st.floats(min_value=300.0, max_value=5000.0))
    @settings(max_examples=20, deadline=None)
    def test_hull_matches_lp_value(self, budget):
        # The hull construction solves the relaxed LP; its (integer-rounded)
        # objective must lie within one rounding step of the LP optimum.
        model = paper_acceptance_model()
        hull = solve_budget_hull(100, budget, model, GRID)
        lp = solve_budget_lp(100, budget, model, GRID)
        assert hull.expected_arrivals >= lp.expected_arrivals - 1e-6
        assert hull.expected_arrivals <= lp.expected_arrivals + hull.rounding_gap_bound + 1e-6

    def test_lp_support_on_hull(self, paper_acceptance):
        lp = solve_budget_lp(100, 1500.0, paper_acceptance, GRID)
        assert len(lp.prices) <= 2  # Theorem 7 via the LP solver
        assert sum(lp.weights) == pytest.approx(100.0, abs=1e-6)

    def test_lp_infeasible(self, paper_acceptance):
        with pytest.raises(ValueError):
            solve_budget_lp(100, 10.0, paper_acceptance, GRID)

    def test_lp_validation(self, paper_acceptance):
        with pytest.raises(ValueError):
            solve_budget_lp(0, 100.0, paper_acceptance, GRID)
        with pytest.raises(ValueError):
            solve_budget_lp(10, -5.0, paper_acceptance, GRID)


class TestTheorem8:
    @given(
        num_tasks=st.integers(min_value=2, max_value=25),
        budget_per_task=st.floats(min_value=2.0, max_value=25.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_gap_to_exact_optimum(self, num_tasks, budget_per_task):
        # The rounded hull solution exceeds the exact integer optimum by at
        # most 1/p(c1) - 1/p(c2) (Theorem 8).
        model = paper_acceptance_model()
        budget = num_tasks * budget_per_task
        hull = solve_budget_hull(num_tasks, budget, model, GRID)
        exact = solve_budget_exact(num_tasks, budget, model, GRID)
        assert hull.expected_arrivals >= exact.expected_arrivals - 1e-6
        assert (
            hull.expected_arrivals
            <= exact.expected_arrivals + hull.rounding_gap_bound + 1e-6
        )
