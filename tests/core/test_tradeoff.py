"""Tests for the Section 6 trade-off MDPs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.tradeoff import (
    solve_tradeoff_arrival,
    solve_tradeoff_interval,
    value_iteration_interval,
)
from repro.market.acceptance import paper_acceptance_model

GRID = np.arange(1.0, 31.0)


class TestIntervalModel:
    def test_closed_form_matches_value_iteration(self):
        model = paper_acceptance_model()
        closed = solve_tradeoff_interval(20, 5.0, model, GRID, alpha=0.2)
        iterated = value_iteration_interval(20, 5.0, model, GRID, alpha=0.2)
        assert np.allclose(closed.opt, iterated.opt)
        assert np.allclose(closed.prices[1:], iterated.prices[1:])

    def test_value_linear_in_n(self):
        model = paper_acceptance_model()
        solution = solve_tradeoff_interval(10, 5.0, model, GRID, alpha=0.5)
        increments = np.diff(solution.opt)
        assert np.allclose(increments, increments[0])

    def test_price_constant_across_states(self):
        model = paper_acceptance_model()
        solution = solve_tradeoff_interval(10, 5.0, model, GRID, alpha=0.5)
        assert len(set(solution.prices[1:])) == 1
        assert solution.optimal_price == solution.prices[-1]

    def test_higher_alpha_higher_price(self):
        # Valuing latency more pushes toward faster (pricier) completion.
        model = paper_acceptance_model()
        cheap = solve_tradeoff_interval(5, 5.0, model, GRID, alpha=0.01)
        fast = solve_tradeoff_interval(5, 5.0, model, GRID, alpha=5.0)
        assert fast.optimal_price >= cheap.optimal_price

    def test_zero_alpha_minimum_price(self):
        model = paper_acceptance_model()
        solution = solve_tradeoff_interval(5, 5.0, model, GRID, alpha=0.0)
        assert solution.optimal_price == GRID[0]
        assert solution.total_value == pytest.approx(5 * GRID[0])

    def test_validation(self):
        model = paper_acceptance_model()
        with pytest.raises(ValueError):
            solve_tradeoff_interval(0, 5.0, model, GRID, alpha=1.0)
        with pytest.raises(ValueError):
            solve_tradeoff_interval(5, 0.0, model, GRID, alpha=1.0)
        with pytest.raises(ValueError):
            solve_tradeoff_interval(5, 5.0, model, GRID, alpha=-1.0)


class TestArrivalModel:
    def test_increment_formula(self):
        # Opt(n) = n * min_c [ c + (alpha / lam) / p(c) ].
        model = paper_acceptance_model()
        alpha, lam = 100.0, 4000.0
        solution = solve_tradeoff_arrival(8, lam, model, GRID, alpha=alpha)
        best = min(c + (alpha / lam) / model.probability(c) for c in GRID)
        assert solution.total_value == pytest.approx(8 * best)

    def test_model_labels(self):
        model = paper_acceptance_model()
        a = solve_tradeoff_interval(3, 5.0, model, GRID, alpha=1.0)
        b = solve_tradeoff_arrival(3, 500.0, model, GRID, alpha=1.0)
        assert a.model == "interval"
        assert b.model == "arrival"

    def test_validation(self):
        model = paper_acceptance_model()
        with pytest.raises(ValueError):
            solve_tradeoff_arrival(0, 5.0, model, GRID, alpha=1.0)
        with pytest.raises(ValueError):
            solve_tradeoff_arrival(5, -1.0, model, GRID, alpha=1.0)


class TestDegenerateAcceptance:
    def test_all_zero_probability_rejected(self):
        from repro.market.acceptance import EmpiricalAcceptance

        dead = EmpiricalAcceptance({1.0: 0.0, 2.0: 0.0})
        with pytest.raises(ValueError):
            solve_tradeoff_arrival(3, 100.0, dead, [1.0, 2.0], alpha=1.0)
