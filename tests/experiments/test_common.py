"""Tests for the shared fixed-vs-dynamic comparison machinery."""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments.common import StrategyComparison, compare_strategies
from repro.experiments.config import PaperSetting


@pytest.fixture(scope="module")
def comparison():
    setting = PaperSetting(
        num_tasks=40, horizon_hours=6.0, interval_minutes=60.0, max_price=40
    )
    return compare_strategies(setting.problem())


class TestCompareStrategies:
    def test_fixed_cost_definition(self, comparison):
        assert comparison.fixed_cost == comparison.fixed_price * 40

    def test_dynamic_cost_alias(self, comparison):
        assert comparison.dynamic_cost == comparison.dynamic_outcome.expected_cost

    def test_reduction_sign_and_bound(self, comparison):
        assert -0.05 <= comparison.cost_reduction < 1.0

    def test_dynamic_meets_bound(self, comparison):
        assert comparison.dynamic_outcome.expected_remaining <= 0.01

    def test_penalty_recorded(self, comparison):
        assert comparison.penalty > 0
        assert comparison.dynamic_policy.problem.penalty.per_task == pytest.approx(
            comparison.penalty
        )

    def test_zero_fixed_cost_rejected(self, comparison):
        broken = dataclasses.replace(comparison, fixed_cost=0.0)
        with pytest.raises(ValueError):
            _ = broken.cost_reduction


class TestStrategyComparisonIsValueObject:
    def test_frozen(self, comparison):
        with pytest.raises(dataclasses.FrozenInstanceError):
            comparison.fixed_price = 1.0

    def test_fields(self):
        names = {f.name for f in dataclasses.fields(StrategyComparison)}
        assert {"fixed_price", "fixed_cost", "dynamic_policy",
                "dynamic_outcome", "penalty"} <= names
