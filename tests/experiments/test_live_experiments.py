"""Tests for the live-deployment experiment modules on a shrunken config."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import fig12_live, fig15_sessions, tables34_accuracy
from repro.sim.live import LiveExperimentConfig


@pytest.fixture(scope="module")
def small_deployment():
    config = LiveExperimentConfig(total_tasks=1000)
    return fig12_live.run_fig12(config=config, num_dynamic_trials=2, seed=88)


class TestFig12Module:
    def test_all_group_sizes_present(self, small_deployment):
        assert set(small_deployment.fixed_trials) == {10, 20, 30, 40, 50}
        assert len(small_deployment.dynamic_trials) == 2

    def test_cost_ordering(self, small_deployment):
        # Per completed task, smaller groups cost strictly more.
        costs = {
            g: trial.cost_dollars / max(trial.tasks_completed, 1)
            for g, trial in small_deployment.fixed_trials.items()
        }
        assert costs[10] > costs[20] > costs[50]

    def test_dynamic_cheaper_than_fixed20_per_task(self, small_deployment):
        fixed = small_deployment.fixed_trials[20]
        fixed_rate = fixed.cost_dollars / max(fixed.tasks_completed, 1)
        for trial in small_deployment.dynamic_trials:
            dynamic_rate = trial.cost_dollars / max(trial.tasks_completed, 1)
            assert dynamic_rate <= fixed_rate + 1e-9

    def test_format(self, small_deployment):
        text = fig12_live.format_result(small_deployment)
        assert "Fig 12(a)" in text and "Fig 12(c)" in text


class TestTables34Module:
    def test_accuracy_band(self, small_deployment):
        result = tables34_accuracy.run_tables34(deployment=small_deployment)
        for value in result.fixed_mean_accuracy.values():
            assert 0.82 <= value <= 0.98
        assert result.accuracy_spread() < 0.08

    def test_cdfs_monotone(self, small_deployment):
        result = tables34_accuracy.run_tables34(deployment=small_deployment)
        for cdf in result.fixed_cdfs.values():
            finite = cdf[np.isfinite(cdf)]
            assert np.all(np.diff(finite) >= 0)
            assert finite[-1] == pytest.approx(1.0)

    def test_cdf_helper_empty(self):
        empty = tables34_accuracy.accuracy_cdf(np.array([]), [0.5, 1.0])
        assert np.all(np.isnan(empty))

    def test_format(self, small_deployment):
        result = tables34_accuracy.run_tables34(deployment=small_deployment)
        text = tables34_accuracy.format_result(result)
        assert "Table 3" in text and "Table 4" in text


class TestFig15Module:
    def test_model_agreement(self, small_deployment):
        result = fig15_sessions.run_fig15(
            deployment=small_deployment, num_replications=2
        )
        for g, measured in result.mean_hits_per_worker.items():
            assert measured == pytest.approx(
                result.expected_hits_model[g], rel=0.35
            )

    def test_format(self, small_deployment):
        result = fig15_sessions.run_fig15(
            deployment=small_deployment, num_replications=1
        )
        assert "Fig 15" in fig15_sessions.format_result(result)
