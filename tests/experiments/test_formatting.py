"""Rendering tests: every experiment's format_result produces its block.

The heavy experiments are run at reduced scale; the goal here is coverage
of the formatting paths (tables assemble, labels present, no crashes on
edge shapes), complementing the integration tests that check the numbers.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    ext_adaptive,
    fig7a_deadline_cost,
    fig7b_trends,
    fig8_param_trends,
    fig8d_granularity,
    fig9_pc_sensitivity,
    fig10_arrival_sensitivity,
    fig11_budget_completion,
)
from repro.experiments.config import PaperSetting


@pytest.fixture(scope="module")
def tiny_setting():
    return PaperSetting(
        num_tasks=30, horizon_hours=4.0, interval_minutes=60.0, max_price=40
    )


class TestFormatting:
    def test_fig7a(self, tiny_setting):
        result = fig7a_deadline_cost.run_fig7a(
            setting=tiny_setting, bounds=(1.0, 0.1), fixed_prices=(20.0, 25.0)
        )
        text = fig7a_deadline_cost.format_result(result)
        assert "dynamic pricing strategy" in text
        assert "floor price" in text

    def test_fig7b(self, tiny_setting):
        result = fig7b_trends.run_fig7b(
            setting=tiny_setting, n_values=(20,), t_values=(4.0,)
        )
        text = fig7b_trends.format_result(result)
        assert "cost reduction vs batch size" in text

    def test_fig8abc(self, tiny_setting):
        result = fig8_param_trends.run_fig8_params(
            setting=tiny_setting,
            s_values=(15.0,),
            b_values=(-0.39,),
            m_values=(2000.0,),
        )
        text = fig8_param_trends.format_result(result)
        assert "cost reduction vs s" in text
        assert "cost reduction vs M" in text

    def test_fig8d(self, tiny_setting):
        result = fig8d_granularity.run_fig8d(
            setting=tiny_setting, interval_minutes=(60.0, 120.0)
        )
        text = fig8d_granularity.format_result(result)
        assert "granularity" in text

    def test_fig9(self, tiny_setting):
        result = fig9_pc_sensitivity.run_fig9(
            setting=tiny_setting,
            s_values=(15.0,),
            b_values=(-0.39,),
            m_values=(2000.0,),
            fixed_prices=(20.0,),
        )
        text = fig9_pc_sensitivity.format_result(result)
        assert "mis-estimated s" in text
        assert "worst-case" in text

    def test_fig10(self, tiny_setting):
        result = fig10_arrival_sensitivity.run_fig10(
            setting=tiny_setting, test_days=(0, 7)
        )
        text = fig10_arrival_sensitivity.format_result(result)
        assert "leave-one-day-out" in text
        assert "holiday" in text

    def test_fig10_missing_holiday_raises(self, tiny_setting):
        result = fig10_arrival_sensitivity.run_fig10(
            setting=tiny_setting, test_days=(7, 14)
        )
        with pytest.raises(ValueError):
            result.holiday()

    def test_fig11(self, tiny_setting):
        result = fig11_budget_completion.run_fig11(
            setting=tiny_setting,
            budget_cents=25.0 * tiny_setting.num_tasks,
            num_replications=10,
            seed=3,
            num_bins=4,
        )
        text = fig11_budget_completion.format_result(result)
        assert "completion-time distribution" in text

    def test_ext_adaptive(self, tiny_setting):
        result = ext_adaptive.run_ext_adaptive(
            setting=tiny_setting, num_replications=2, seed=5
        )
        text = ext_adaptive.format_result(result)
        assert "adaptive" in text
        assert "learned factor" in text
