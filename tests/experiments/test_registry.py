"""Tests for the experiment registry index."""

from __future__ import annotations

import pytest

from repro.experiments.registry import EXPERIMENTS, run_experiment

EXPECTED_IDS = {
    "fig1", "table1", "fig5", "fig6_table2", "fig7a", "fig7b", "fig8abc",
    "fig8d", "fig9", "fig10", "fig11", "fig12", "tables34", "fig15",
    "ext_adaptive",
}


class TestRegistry:
    def test_every_table_and_figure_indexed(self):
        assert set(EXPERIMENTS) == EXPECTED_IDS

    def test_descriptions_nonempty(self):
        for experiment in EXPERIMENTS.values():
            assert experiment.description
            assert experiment.exp_id

    def test_run_experiment_unknown_id(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig99")

    def test_run_experiment_renders(self):
        text = run_experiment("table1")
        assert "Table 1" in text
