"""End-to-end tests of the cheap experiment modules (fig1/table1/fig5/fig6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import fig1_arrivals, fig5_utility, fig6_table2_regression
from repro.experiments import table1_truncation


class TestFig1:
    def test_periodicity_detected(self):
        result = fig1_arrivals.run_fig1()
        assert result.week_correlation > 0.8
        assert result.week_correlation > result.day_correlation
        assert result.weekend_mean < result.weekday_mean

    def test_format(self):
        result = fig1_arrivals.run_fig1()
        text = fig1_arrivals.format_result(result)
        assert "Fig 1" in text
        assert "week-over-week" in text


class TestTable1:
    def test_paper_values(self):
        rows = table1_truncation.run_table1()
        values = {(r.eps, r.lam): r.s0 for r in rows}
        assert values[(1e-9, 10.0)] == 35
        assert values[(1e-9, 20.0)] == 53
        assert values[(1e-9, 50.0)] == 99

    def test_extended_thresholds(self):
        rows = table1_truncation.run_table1(eps_values=(1e-6, 1e-9))
        assert len(rows) == 6
        by_eps = {}
        for r in rows:
            by_eps.setdefault(r.lam, {})[r.eps] = r.s0
        for lam, cuts in by_eps.items():
            assert cuts[1e-6] <= cuts[1e-9]

    def test_format(self):
        text = table1_truncation.format_result(table1_truncation.run_table1())
        assert "Table 1" in text
        assert "35" in text and "53" in text and "99" in text


class TestFig5:
    def test_fit_tracks_simulation(self):
        result = fig5_utility.run_fig5(samples_per_reward=1500, seed=5)
        assert result.rmse < 0.02
        assert result.beta > 0  # utility rises with reward
        # Acceptance grows with reward overall.
        assert result.simulated[-1] > result.simulated[0]

    def test_format(self):
        result = fig5_utility.run_fig5(samples_per_reward=500, seed=5)
        assert "beta" in fig5_utility.format_result(result)


class TestFig6Table2:
    def test_recovery_of_paper_coefficients(self):
        result = fig6_table2_regression.run_fig6_table2()
        cat = result.fits["Categorization"]
        dc = result.fits["Data Collection"]
        assert cat.alpha == pytest.approx(748.0, rel=0.15)
        assert dc.alpha == pytest.approx(809.0, rel=0.15)
        assert cat.bias == pytest.approx(3.66, abs=0.5)
        assert dc.bias == pytest.approx(6.28, abs=0.5)

    def test_derived_eq13(self):
        result = fig6_table2_regression.run_fig6_table2()
        assert result.derived.s == pytest.approx(15.0, abs=2.0)
        assert result.derived.b == pytest.approx(-0.39, abs=0.35)
        assert result.derived.m == 2000.0

    def test_samples_exposed(self):
        result = fig6_table2_regression.run_fig6_table2()
        wages, workload = result.samples["Data Collection"]
        assert wages.size == workload.size == 120
        assert np.all(workload > 0)

    def test_format(self):
        text = fig6_table2_regression.format_result(
            fig6_table2_regression.run_fig6_table2()
        )
        assert "Table 2" in text and "paper 15" in text
