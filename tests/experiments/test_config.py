"""Tests for the shared experiment configuration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import PaperSetting, default_setting


class TestPaperSetting:
    def test_defaults_match_section52(self):
        setting = default_setting()
        assert setting.num_tasks == 200
        assert setting.horizon_hours == 24.0
        assert setting.num_intervals == 72  # 20-minute intervals
        assert setting.confidence == 0.999

    def test_price_grid_starts_at_one_cent(self):
        grid = default_setting().price_grid()
        assert grid[0] == 1.0
        assert np.all(np.diff(grid) == 1.0)

    def test_problem_assembly(self):
        setting = default_setting()
        problem = setting.problem()
        assert problem.num_tasks == 200
        assert problem.num_intervals == 72
        assert problem.arrival_means.sum() == pytest.approx(
            setting.rate_function().integral(
                setting.start_hour, setting.start_hour + 24.0
            )
        )

    def test_problem_overrides(self):
        setting = default_setting()
        problem = setting.problem(num_tasks=50, horizon_hours=12.0)
        assert problem.num_tasks == 50
        assert problem.num_intervals == 36

    def test_start_day_not_holiday(self):
        # The default window must avoid the trace's holiday (day 0).
        setting = default_setting()
        assert setting.start_day != 0

    def test_trace_cached_independently(self):
        setting = default_setting()
        assert np.array_equal(setting.trace().counts, setting.trace().counts)
