"""Shared fixtures: small solvable instances and deterministic randomness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.deadline.model import DeadlineProblem, PenaltyScheme
from repro.market.acceptance import LogitAcceptance, paper_acceptance_model


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator for statistical tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def paper_acceptance() -> LogitAcceptance:
    """The Eq. 13 acceptance model."""
    return paper_acceptance_model()


@pytest.fixture
def small_problem(paper_acceptance: LogitAcceptance) -> DeadlineProblem:
    """A tiny deadline instance solvable by the literal Algorithm 1."""
    return DeadlineProblem(
        num_tasks=6,
        arrival_means=np.array([400.0, 250.0, 500.0, 350.0]),
        acceptance=paper_acceptance,
        price_grid=np.arange(1.0, 16.0),
        penalty=PenaltyScheme(per_task=40.0),
    )


@pytest.fixture
def medium_problem(paper_acceptance: LogitAcceptance) -> DeadlineProblem:
    """A mid-size instance for the vectorized/efficient solvers."""
    means = 300.0 + 150.0 * np.sin(np.linspace(0.0, 3.0, 12))
    return DeadlineProblem(
        num_tasks=30,
        arrival_means=means,
        acceptance=paper_acceptance,
        price_grid=np.arange(1.0, 26.0),
        penalty=PenaltyScheme(per_task=60.0),
    )


def make_problem(
    num_tasks: int = 5,
    arrival_means=None,
    s: float = 15.0,
    b: float = -0.39,
    m: float = 2000.0,
    max_price: float = 12.0,
    penalty: float = 30.0,
    existence: float = 0.0,
    truncation_eps: float | None = 1e-9,
) -> DeadlineProblem:
    """Build ad hoc instances inside tests without fixture plumbing."""
    if arrival_means is None:
        arrival_means = np.array([300.0, 450.0, 200.0])
    return DeadlineProblem(
        num_tasks=num_tasks,
        arrival_means=np.asarray(arrival_means, dtype=float),
        acceptance=LogitAcceptance(s=s, b=b, m=m),
        price_grid=np.arange(1.0, max_price + 1.0),
        penalty=PenaltyScheme(per_task=penalty, existence=existence),
        truncation_eps=truncation_eps,
    )
