"""Scenario event types: validation, compilation helpers, JSON round trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.scenario import (
    EVENT_TYPES,
    CampaignChurn,
    Cancellation,
    DemandShock,
    RateSchedule,
    event_from_dict,
    event_to_dict,
)


class TestValidation:
    def test_churn_rejects_bad_windows(self):
        with pytest.raises(ValueError):
            CampaignChurn(start=-1, stop=5)
        with pytest.raises(ValueError):
            CampaignChurn(start=5, stop=5)
        with pytest.raises(ValueError):
            CampaignChurn(start=0, stop=5, every=0)
        with pytest.raises(ValueError):
            CampaignChurn(start=0, stop=5, per_wave=0)
        with pytest.raises(ValueError):
            CampaignChurn(start=0, stop=5, adaptive_fraction=1.5)
        with pytest.raises(ValueError):
            CampaignChurn(start=0, stop=5, prefix="")

    def test_shock_rejects_bad_values(self):
        with pytest.raises(ValueError):
            DemandShock(start=3, stop=3, factor=2.0)
        with pytest.raises(ValueError):
            DemandShock(start=0, stop=3, factor=-1.0)
        with pytest.raises(ValueError):
            DemandShock(start=0, stop=3, factor=float("nan"))

    def test_schedule_rejects_bad_values(self):
        with pytest.raises(ValueError):
            RateSchedule(multipliers=(), every=4)
        with pytest.raises(ValueError):
            RateSchedule(multipliers=(1.0, -2.0), every=4)
        with pytest.raises(ValueError):
            RateSchedule(multipliers=(1.0,), every=0)

    def test_cancellation_rejects_bad_values(self):
        with pytest.raises(ValueError):
            Cancellation(tick=-1, campaign_id="x")
        with pytest.raises(ValueError):
            Cancellation(tick=0, campaign_id="")


class TestCompilationHelpers:
    def test_shock_multipliers_window(self):
        shock = DemandShock(start=2, stop=5, factor=3.0)
        out = shock.multipliers(8)
        assert out.tolist() == [1.0, 1.0, 3.0, 3.0, 3.0, 1.0, 1.0, 1.0]

    def test_schedule_cycles(self):
        schedule = RateSchedule(multipliers=(2.0, 0.5), every=2, start=1)
        out = schedule.multipliers_over(8)
        # Tick 0 unmodulated; then 2.0 for 2 ticks, 0.5 for 2, cycling.
        assert out.tolist() == [1.0, 2.0, 2.0, 0.5, 0.5, 2.0, 2.0, 0.5]

    def test_churn_wave_ticks_clip_to_horizon(self):
        churn = CampaignChurn(start=2, stop=100, every=5)
        assert list(churn.wave_ticks(14)) == [2, 7, 12]


class TestJsonRoundTrip:
    EVENTS = [
        CampaignChurn(start=0, stop=20, every=4, per_wave=2,
                      templates=("dl-small",), adaptive_fraction=0.5,
                      prefix="x"),
        DemandShock(start=5, stop=9, factor=2.5),
        RateSchedule(multipliers=(1.3, 0.7), every=6, start=2),
        Cancellation(tick=7, campaign_id="x0-000-00"),
    ]

    @pytest.mark.parametrize("event", EVENTS, ids=lambda e: type(e).__name__)
    def test_round_trip(self, event):
        data = event_to_dict(event)
        assert data["type"] in EVENT_TYPES
        import json

        assert event_from_dict(json.loads(json.dumps(data))) == event

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario event"):
            event_from_dict({"type": "meteor-strike"})

    def test_non_event_rejected(self):
        with pytest.raises(TypeError):
            event_to_dict(object())
