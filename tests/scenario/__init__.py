"""Tests for the declarative scenario layer (repro.scenario)."""
