"""The scenario determinism contract (the PR's acceptance criterion).

A seeded scenario combining campaign churn, a demand shock, and a
mid-flight cancellation must produce **bit-identical telemetry** (and
outcomes):

* across shard counts — ShardedEngine with 1 vs 3 shards;
* across executors — serial loop vs thread pool;
* across a checkpoint/resume boundary — stop mid-scenario, restore from
  the bundle, finish.

Telemetry equality is dict-level over every per-tick series and every
per-campaign record (floats included), so any drift in arrivals, routing,
cache behaviour, re-plan cadence, or cancellation accounting fails here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import ShardedEngine, generate_workload
from repro.market.acceptance import paper_acceptance_model
from repro.scenario import (
    CampaignChurn,
    Cancellation,
    DemandShock,
    Scenario,
    ScenarioDriver,
)
from repro.sim.stream import SharedArrivalStream

NUM_INTERVALS = 40
SEED = 23


def make_engine(num_shards: int, executor: str) -> ShardedEngine:
    means = 1000.0 + 350.0 * np.sin(np.linspace(0.0, 4.0 * np.pi, NUM_INTERVALS))
    return ShardedEngine(
        SharedArrivalStream(means),
        paper_acceptance_model(),
        num_shards=num_shards,
        executor=executor,
        planning="stationary",
    )


@pytest.fixture(scope="module")
def scenario() -> Scenario:
    """Churn + demand shock + one cancellation of a live churn campaign."""
    churn = CampaignChurn(start=0, stop=30, every=6, per_wave=2,
                          adaptive_fraction=0.5)
    base = Scenario(name="contract", seed=SEED, events=(churn,))
    victim = base.compile(NUM_INTERVALS).submissions[1][1][0]
    return Scenario(
        name="contract",
        seed=SEED,
        events=(
            churn,
            DemandShock(start=12, stop=22, factor=2.5),
            Cancellation(
                tick=victim.submit_interval + 3,
                campaign_id=victim.campaign_id,
            ),
        ),
    )


def run_scenario(num_shards: int, executor: str, scenario: Scenario):
    engine = make_engine(num_shards, executor)
    engine.submit(generate_workload(6, NUM_INTERVALS, seed=4))
    driver = ScenarioDriver(engine, scenario)
    result = driver.run()
    return driver.telemetry.to_dict(), result


@pytest.fixture(scope="module")
def reference(scenario):
    """The 1-shard serial run every variant must match bit-for-bit."""
    return run_scenario(1, "serial", scenario)


def test_scenario_actually_stresses_the_engine(reference):
    """Guard the fixture: churn, shock, and cancellation all happened."""
    telemetry, result = reference
    assert sum(telemetry["series"]["cancelled"]) == 1
    assert any(o.cancelled for o in result.outcomes)
    assert max(telemetry["series"]["rate_factor"]) == 2.5
    assert result.num_campaigns > 6  # churn campaigns joined the base load
    assert any(r["adaptive"] for r in telemetry["campaigns"])


@pytest.mark.parametrize("num_shards", [1, 3])
@pytest.mark.parametrize("executor", ["serial", "thread"])
def test_bit_identical_across_shards_and_executors(
    num_shards, executor, scenario, reference
):
    telemetry, result = run_scenario(num_shards, executor, scenario)
    ref_telemetry, ref_result = reference
    assert telemetry == ref_telemetry
    assert [
        (o.spec.campaign_id, o.completed, o.remaining, o.total_cost,
         o.penalty, o.cancelled)
        for o in sorted(result.outcomes, key=lambda o: o.spec.campaign_id)
    ] == [
        (o.spec.campaign_id, o.completed, o.remaining, o.total_cost,
         o.penalty, o.cancelled)
        for o in sorted(ref_result.outcomes, key=lambda o: o.spec.campaign_id)
    ]


@pytest.mark.parametrize("stop_tick", [5, 14, 27])
def test_bit_identical_across_checkpoint_boundary(
    stop_tick, scenario, reference, tmp_path
):
    """Stop mid-scenario (before, inside, and after the shock window),
    resume from the bundle, finish: telemetry equals the uninterrupted run."""
    engine = make_engine(3, "serial")
    engine.submit(generate_workload(6, NUM_INTERVALS, seed=4))
    driver = ScenarioDriver(engine, scenario)
    driver.start()
    for _ in range(stop_tick):
        driver.step()
    driver.save(tmp_path / "bundle")
    driver.engine.close()

    resumed = ScenarioDriver.resume(tmp_path / "bundle")
    resumed.run()
    assert resumed.telemetry.to_dict() == reference[0]
