"""CLI coverage for ``repro engine scenario run`` and ``--list-scenarios``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.scenario import CANNED_SCENARIOS

# Small stream so CLI runs stay fast: 8 hours of 20-minute ticks = 24.
FAST = ["--horizon-hours", "8"]


class TestListScenarios:
    def test_lists_every_canned_scenario(self, capsys):
        assert main(["engine", "scenario", "run", "--list-scenarios"]) == 0
        out = capsys.readouterr().out
        for name in CANNED_SCENARIOS:
            assert name in out


class TestScenarioRun:
    def test_canned_run_smoke(self, capsys):
        code = main(["engine", "scenario", "run", "--canned", "steady-churn",
                     *FAST])
        assert code == 0
        out = capsys.readouterr().out
        assert "scenario      : 'steady-churn'" in out
        assert "telemetry     :" in out
        assert "campaigns     :" in out

    def test_shard_count_never_changes_telemetry(self, capsys):
        assert main(["engine", "scenario", "run", "--canned", "black-friday",
                     *FAST, "--shards", "1"]) == 0
        one = capsys.readouterr().out
        assert main(["engine", "scenario", "run", "--canned", "black-friday",
                     *FAST, "--shards", "3"]) == 0
        three = capsys.readouterr().out
        # Identical telemetry line; only the serving/throughput lines differ.
        telemetry = [l for l in one.splitlines() if l.startswith("telemetry")]
        assert telemetry and telemetry == [
            l for l in three.splitlines() if l.startswith("telemetry")
        ]

    def test_spec_file_and_seed_override(self, tmp_path, capsys):
        from repro.scenario import canned_scenario

        spec = tmp_path / "spec.json"
        canned_scenario("steady-churn", 24, seed=3).dump(spec)
        code = main(["engine", "scenario", "run", "--spec", str(spec),
                     "--seed", "5", *FAST])
        assert code == 0
        assert "seed=5" in capsys.readouterr().out

    def test_telemetry_out_writes_json(self, tmp_path, capsys):
        out_path = tmp_path / "telemetry.json"
        code = main(["engine", "scenario", "run", "--canned", "day-night",
                     *FAST, "--telemetry-out", str(out_path)])
        assert code == 0
        data = json.loads(out_path.read_text())
        assert data["series"]["interval"]
        assert len(data["series"]["rate_factor"]) == len(data["series"]["interval"])

    def test_base_campaigns_add_static_load(self, capsys):
        assert main(["engine", "scenario", "run", "--canned", "steady-churn",
                     *FAST, "--base-campaigns", "4"]) == 0
        assert "+ 4 base" in capsys.readouterr().out

    def test_kill_and_resume_matches_uninterrupted(self, tmp_path, capsys):
        args = ["engine", "scenario", "run", "--canned", "black-friday", *FAST]
        assert main(args) == 0
        uninterrupted = capsys.readouterr().out
        bundle = tmp_path / "bundle"
        assert main([*args, "--stop-after", "7",
                     "--checkpoint-path", str(bundle)]) == 0
        assert "stopped" in capsys.readouterr().out
        assert main(["engine", "scenario", "run", "--resume", str(bundle)]) == 0
        resumed = capsys.readouterr().out
        assert "resume        :" in resumed
        ref_telemetry = [l for l in uninterrupted.splitlines()
                         if l.startswith("telemetry")]
        assert ref_telemetry == [l for l in resumed.splitlines()
                                 if l.startswith("telemetry")]

    def test_stop_after_still_writes_partial_telemetry(self, tmp_path, capsys):
        out_path = tmp_path / "partial.json"
        code = main(["engine", "scenario", "run", "--canned", "steady-churn",
                     *FAST, "--stop-after", "5",
                     "--checkpoint-path", str(tmp_path / "bundle"),
                     "--telemetry-out", str(out_path)])
        assert code == 0
        assert "partial: 5 ticks" in capsys.readouterr().out
        data = json.loads(out_path.read_text())
        assert len(data["series"]["interval"]) == 5

    def test_requires_exactly_one_source(self, capsys):
        assert main(["engine", "scenario", "run", *FAST]) == 2
        assert "exactly one" in capsys.readouterr().err
        assert main(["engine", "scenario", "run", "--canned", "day-night",
                     "--spec", "x.json", *FAST]) == 2

    def test_unknown_canned_name(self, capsys):
        assert main(["engine", "scenario", "run", "--canned", "no-such",
                     *FAST]) == 2
        assert "unknown canned scenario" in capsys.readouterr().err

    def test_checkpoint_flags_require_path(self, capsys):
        assert main(["engine", "scenario", "run", "--canned", "day-night",
                     *FAST, "--stop-after", "5"]) == 2
        assert "--checkpoint-path" in capsys.readouterr().err

    def test_resume_missing_bundle(self, tmp_path, capsys):
        assert main(["engine", "scenario", "run",
                     "--resume", str(tmp_path / "nope")]) == 2
        assert "no checkpoint bundle" in capsys.readouterr().err
