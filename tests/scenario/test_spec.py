"""Scenario specs: compilation, churn determinism, canned library, JSON."""

from __future__ import annotations

import numpy as np
import pytest

from repro.scenario import (
    CANNED_SCENARIOS,
    CampaignChurn,
    Cancellation,
    DemandShock,
    RateSchedule,
    Scenario,
    canned_scenario,
    churn_specs,
    list_scenarios,
)


class TestCompile:
    def test_submissions_grouped_and_sorted_by_tick(self):
        scenario = Scenario(
            name="t",
            seed=3,
            events=(
                CampaignChurn(start=4, stop=13, every=4, per_wave=2),
                CampaignChurn(start=0, stop=1, per_wave=1, prefix="base"),
            ),
        )
        timeline = scenario.compile(24)
        ticks = [tick for tick, _ in timeline.submissions]
        assert ticks == sorted(ticks)
        assert timeline.num_campaigns == sum(
            len(specs) for _, specs in timeline.submissions
        )
        # Every spec's submit interval matches its wave tick.
        for tick, specs in timeline.submissions:
            assert all(s.submit_interval == tick for s in specs)

    def test_modulation_composes_multiplicatively(self):
        scenario = Scenario(
            name="t",
            events=(
                DemandShock(start=0, stop=4, factor=2.0),
                RateSchedule(multipliers=(0.5,), every=1),
            ),
        )
        timeline = scenario.compile(8)
        assert timeline.rate_multipliers.tolist() == [1.0, 1.0, 1.0, 1.0,
                                                      0.5, 0.5, 0.5, 0.5]

    def test_cancellation_beyond_horizon_rejected(self):
        scenario = Scenario(
            name="t", events=(Cancellation(tick=50, campaign_id="x"),)
        )
        with pytest.raises(ValueError, match="beyond"):
            scenario.compile(24)

    def test_churn_is_deterministic_per_event_index(self):
        event = CampaignChurn(start=0, stop=16, every=4, per_wave=2,
                              adaptive_fraction=0.5)
        a = churn_specs(event, 24, seed=7, event_index=0)
        b = churn_specs(event, 24, seed=7, event_index=0)
        assert a == b
        # A different event index (or seed) draws a different stream.
        c = churn_specs(event, 24, seed=7, event_index=1)
        assert [s.campaign_id for s in c] != [s.campaign_id for s in a]

    def test_churn_skips_templates_that_no_longer_fit(self):
        event = CampaignChurn(start=0, stop=24, every=4,
                              templates=("dl-large",))  # horizon 30
        assert churn_specs(event, 24, seed=0, event_index=0) == []

    def test_unknown_template_rejected(self):
        event = CampaignChurn(start=0, stop=4, templates=("no-such",))
        with pytest.raises(ValueError, match="unknown workload template"):
            churn_specs(event, 24, seed=0, event_index=0)


class TestJson:
    def test_round_trip(self, tmp_path):
        scenario = Scenario(
            name="round",
            seed=11,
            description="round trips",
            events=(
                CampaignChurn(start=0, stop=10, every=2),
                DemandShock(start=3, stop=6, factor=0.4),
                Cancellation(tick=5, campaign_id="churn0-000-00"),
            ),
        )
        assert Scenario.from_json(scenario.to_json()) == scenario
        path = scenario.dump(tmp_path / "s.json")
        assert Scenario.load(path) == scenario

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Scenario(name="")


class TestCanned:
    @pytest.mark.parametrize("name", sorted(CANNED_SCENARIOS))
    def test_every_canned_scenario_compiles(self, name):
        scenario = canned_scenario(name, 48, seed=5)
        assert scenario.name == name
        timeline = scenario.compile(48)
        assert timeline.num_campaigns > 0
        # Canned scenarios must round-trip (the CLI writes them to specs).
        assert Scenario.from_json(scenario.to_json()) == scenario

    def test_black_friday_has_all_three_stressors(self):
        scenario = canned_scenario("black-friday", 48, seed=5)
        kinds = {type(e) for e in scenario.events}
        assert kinds == {CampaignChurn, DemandShock, Cancellation}
        # The cancellation targets a campaign the churn actually creates.
        timeline = scenario.compile(48)
        churn_ids = {
            s.campaign_id for _, specs in timeline.submissions for s in specs
        }
        (cancel,) = [e for e in scenario.events if isinstance(e, Cancellation)]
        assert cancel.campaign_id in churn_ids

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            canned_scenario("no-such", 48)

    def test_tiny_stream_rejected(self):
        with pytest.raises(ValueError):
            canned_scenario("steady-churn", 4)

    def test_listing_matches_registry(self):
        listed = list_scenarios()
        assert [name for name, _ in listed] == sorted(CANNED_SCENARIOS)
        assert all(desc for _, desc in listed)
