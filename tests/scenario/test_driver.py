"""ScenarioDriver behaviour: stepping, wake-ups, cancellations, save/resume."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    CampaignSpec,
    CheckpointError,
    MarketplaceEngine,
    ShardedEngine,
    generate_workload,
)
from repro.market.acceptance import paper_acceptance_model
from repro.scenario import (
    CampaignChurn,
    Cancellation,
    DemandShock,
    Scenario,
    ScenarioDriver,
)
from repro.sim.stream import SharedArrivalStream

NUM_INTERVALS = 32


def make_engine(kind: str = "marketplace"):
    means = 800.0 + 250.0 * np.sin(np.linspace(0.0, 3.0 * np.pi, NUM_INTERVALS))
    stream = SharedArrivalStream(means)
    if kind == "sharded":
        return ShardedEngine(stream, paper_acceptance_model(), num_shards=3,
                             executor="serial", planning="stationary")
    return MarketplaceEngine(stream, paper_acceptance_model(),
                             planning="stationary")


def churn_scenario(**kwargs) -> Scenario:
    defaults = dict(start=0, stop=20, every=5, per_wave=2,
                    adaptive_fraction=0.25)
    defaults.update(kwargs)
    return Scenario(name="drv", seed=13, events=(CampaignChurn(**defaults),))


class TestStepping:
    def test_run_submits_every_timeline_campaign(self):
        driver = ScenarioDriver(make_engine(), churn_scenario())
        result = driver.run()
        assert driver.done
        assert result.num_campaigns == driver.timeline.num_campaigns
        assert driver.telemetry.num_ticks == result.intervals_run + sum(
            driver.telemetry.series["idle"]
        )

    def test_base_workload_rides_under_the_scenario(self):
        engine = make_engine()
        engine.submit(generate_workload(5, NUM_INTERVALS, seed=2))
        driver = ScenarioDriver(engine, churn_scenario())
        result = driver.run()
        assert result.num_campaigns == driver.timeline.num_campaigns + 5

    def test_wakeup_bridges_an_idle_gap(self):
        """A late-starting churn wave is reached through idle ticks even
        though the engine would otherwise report itself done."""
        scenario = Scenario(
            name="late", seed=1,
            events=(CampaignChurn(start=20, stop=21, per_wave=1),),
        )
        driver = ScenarioDriver(make_engine(), scenario)
        result = driver.run()
        assert result.num_campaigns == driver.timeline.num_campaigns >= 1
        assert sum(driver.telemetry.series["idle"]) >= 20

    def test_step_before_start_raises(self):
        driver = ScenarioDriver(make_engine(), churn_scenario())
        with pytest.raises(RuntimeError, match="start"):
            driver.step()

    def test_double_start_raises(self):
        driver = ScenarioDriver(make_engine(), churn_scenario())
        driver.start()
        with pytest.raises(RuntimeError, match="already started"):
            driver.start()
        driver.engine.close()

    def test_step_after_exhaustion_raises(self):
        driver = ScenarioDriver(make_engine(), churn_scenario())
        driver.run()
        with pytest.raises(RuntimeError, match="exhausted"):
            driver.step()

    def test_modulation_installed_on_start(self):
        scenario = Scenario(
            name="mod", seed=1,
            events=(CampaignChurn(start=0, stop=4),
                    DemandShock(start=2, stop=6, factor=2.0)),
        )
        driver = ScenarioDriver(make_engine(), scenario)
        core = driver.start()
        assert core.rate_multipliers is not None
        assert core.rate_factor(3) == 2.0
        driver.engine.close()


class TestCancellations:
    def _scenario_with_cancel(self, tick: int, campaign_id: str) -> Scenario:
        return Scenario(
            name="cx", seed=13,
            events=(CampaignChurn(start=0, stop=20, every=5, per_wave=2),
                    Cancellation(tick=tick, campaign_id=campaign_id)),
        )

    def test_live_cancellation_recorded(self):
        base = churn_scenario()
        timeline = base.compile(NUM_INTERVALS)
        victim = timeline.submissions[0][1][0]
        tick = victim.submit_interval + 2
        scenario = Scenario(
            name="cx", seed=base.seed,
            events=(*base.events,
                    Cancellation(tick=tick, campaign_id=victim.campaign_id)),
        )
        driver = ScenarioDriver(make_engine(), scenario)
        result = driver.run()
        cancelled = [o for o in result.outcomes if o.cancelled]
        assert [o.spec.campaign_id for o in cancelled] == [victim.campaign_id]
        assert driver.telemetry.total_cancelled == 1
        assert sum(driver.telemetry.series["cancelled"]) == 1
        record = next(
            r for r in driver.telemetry.campaigns
            if r.campaign_id == victim.campaign_id
        )
        assert record.cancelled and record.interval == tick

    def test_cancelling_a_retired_campaign_is_a_noop(self):
        """Targets that already retired naturally do not fail the run."""
        base = churn_scenario()
        victim = base.compile(NUM_INTERVALS).submissions[0][1][0]
        # The victim's horizon ends long before the cancellation tick, so
        # by then it has retired naturally: a deterministic no-op.
        cancel_tick = min(victim.submit_interval + victim.horizon_intervals + 3,
                          NUM_INTERVALS - 1)
        scenario = Scenario(
            name="cx", seed=base.seed,
            events=(*base.events,
                    Cancellation(tick=cancel_tick,
                                 campaign_id=victim.campaign_id)),
        )
        driver = ScenarioDriver(make_engine(), scenario)
        result = driver.run()
        assert not any(o.cancelled for o in result.outcomes)
        assert driver.telemetry.total_cancelled == 0

    def test_cancellation_that_empties_the_engine_ends_the_run(self):
        """The last live campaign cancelled mid-step must not crash.

        A cancellation applies before the tick runs; when it retires the
        only remaining campaign and the timeline has no traffic left,
        there is no tick left to run — step() returns None and the
        driver reads done instead of asking an exhausted clock to tick.
        """
        engine = make_engine()
        workload = generate_workload(1, NUM_INTERVALS, seed=2)
        engine.submit(workload)
        victim = workload[0]
        scenario = Scenario(
            name="cx", seed=13,
            events=(Cancellation(tick=victim.submit_interval + 1,
                                 campaign_id=victim.campaign_id),),
        )
        driver = ScenarioDriver(engine, scenario)
        driver.start()
        reports = []
        while not driver.done:
            reports.append(driver.step())
        assert reports[-1] is None
        result = driver.core.result()
        assert [o.spec.campaign_id for o in result.outcomes
                if o.cancelled] == [victim.campaign_id]

    def test_cancelling_an_unknown_id_fails_loudly(self):
        """A typo'd campaign id is a spec error, not a silent no-op."""
        scenario = self._scenario_with_cancel(1, "tyop-001")
        driver = ScenarioDriver(make_engine(), scenario)
        driver.start()
        with pytest.raises(ValueError, match="unknown campaign 'tyop-001'"):
            while not driver.done:
                driver.step()


class TestSaveResume:
    @pytest.mark.parametrize("kind", ["marketplace", "sharded"])
    def test_resume_is_bit_identical(self, kind, tmp_path):
        scenario = churn_scenario()
        reference = ScenarioDriver(make_engine(kind), scenario)
        ref_result = reference.run()

        driver = ScenarioDriver(make_engine(kind), scenario)
        driver.start()
        for _ in range(9):
            driver.step()
        driver.save(tmp_path / "bundle")
        driver.engine.close()

        resumed = ScenarioDriver.resume(tmp_path / "bundle")
        assert resumed.started
        assert resumed.scenario == scenario
        result = resumed.run()
        assert resumed.telemetry == reference.telemetry
        assert [o.spec.campaign_id for o in result.outcomes] == [
            o.spec.campaign_id for o in ref_result.outcomes
        ]
        assert result.total_cost == ref_result.total_cost

    def test_save_before_start_raises(self, tmp_path):
        driver = ScenarioDriver(make_engine(), churn_scenario())
        with pytest.raises(CheckpointError):
            driver.save(tmp_path / "bundle")

    def test_resume_rejects_plain_engine_bundle(self, tmp_path):
        """A bundle without driver extras is a checkpoint, not a scenario."""
        from repro.engine import save_checkpoint

        engine = make_engine()
        engine.submit(generate_workload(3, NUM_INTERVALS, seed=2))
        engine.start(seed=0)
        engine.tick()
        save_checkpoint(engine, tmp_path / "plain")
        engine.close()
        with pytest.raises(CheckpointError, match="scenario-driver state"):
            ScenarioDriver.resume(tmp_path / "plain")
