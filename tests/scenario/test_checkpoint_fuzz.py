"""Checkpoint fuzz: random stop-tick × scenario-event interleavings.

Extends the PR-3 checkpoint coverage to mid-scenario state: the stop tick
is drawn at random (seeded), so snapshots land before/during/after churn
waves, demand-shock windows, and cancellations — including chains of two
snapshot/restore hops — and every stitched run must be bit-identical to
the uninterrupted one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import MarketplaceEngine, ShardedEngine
from repro.market.acceptance import paper_acceptance_model
from repro.scenario import (
    CampaignChurn,
    Cancellation,
    DemandShock,
    RateSchedule,
    Scenario,
    ScenarioDriver,
)
from repro.sim.stream import SharedArrivalStream

NUM_INTERVALS = 36

#: (engine kind, fuzz seed) cases; the seed drives scenario shape and the
#: stop ticks, so each case is a different interleaving.
CASES = [
    ("marketplace", 101),
    ("marketplace", 202),
    ("sharded", 303),
    ("sharded", 404),
    ("sharded", 505),
]


def make_engine(kind: str):
    means = 850.0 + 300.0 * np.sin(np.linspace(0.0, 3.0 * np.pi, NUM_INTERVALS))
    stream = SharedArrivalStream(means)
    if kind == "sharded":
        return ShardedEngine(stream, paper_acceptance_model(), num_shards=3,
                             executor="serial", planning="stationary")
    return MarketplaceEngine(stream, paper_acceptance_model(),
                             planning="stationary")


def random_scenario(rng: np.random.Generator) -> Scenario:
    """A randomized churn + shock + schedule + cancellation timeline."""
    seed = int(rng.integers(1_000_000))
    churn = CampaignChurn(
        start=int(rng.integers(0, 4)),
        stop=int(rng.integers(20, NUM_INTERVALS - 4)),
        every=int(rng.integers(3, 7)),
        per_wave=int(rng.integers(1, 3)),
        adaptive_fraction=float(rng.uniform(0.0, 0.8)),
    )
    shock_start = int(rng.integers(5, 20))
    events = [
        churn,
        DemandShock(shock_start, shock_start + int(rng.integers(3, 10)),
                    float(rng.uniform(0.3, 3.0))),
        RateSchedule(multipliers=(float(rng.uniform(0.8, 1.5)),
                                  float(rng.uniform(0.5, 1.0))),
                     every=int(rng.integers(4, 9))),
    ]
    base = Scenario(name="fuzz", seed=seed, events=tuple(events))
    timeline = base.compile(NUM_INTERVALS)
    # Cancel a random churn campaign somewhere inside its horizon.
    waves = timeline.submissions
    wave_tick, specs = waves[int(rng.integers(len(waves)))]
    victim = specs[int(rng.integers(len(specs)))]
    cancel_tick = min(
        wave_tick + int(rng.integers(1, victim.horizon_intervals + 2)),
        NUM_INTERVALS - 1,
    )
    events.append(Cancellation(tick=cancel_tick,
                               campaign_id=victim.campaign_id))
    return Scenario(name="fuzz", seed=seed, events=tuple(events))


@pytest.mark.parametrize("kind,fuzz_seed", CASES)
def test_random_interleavings_resume_bit_identically(kind, fuzz_seed, tmp_path):
    rng = np.random.default_rng(fuzz_seed)
    scenario = random_scenario(rng)

    reference = ScenarioDriver(make_engine(kind), scenario)
    reference.run()
    total_ticks = reference.telemetry.num_ticks
    assert total_ticks > 2

    # Two random snapshot/restore hops inside the run.
    stops = sorted(
        int(s) for s in rng.choice(np.arange(1, total_ticks), size=2,
                                   replace=False)
    )
    driver = ScenarioDriver(make_engine(kind), scenario)
    driver.start()
    ticks = 0
    for stop in stops:
        while ticks < stop:
            driver.step()
            ticks += 1
        driver.save(tmp_path / "bundle")
        driver.engine.close()
        driver = ScenarioDriver.resume(tmp_path / "bundle")
    while not driver.done:
        driver.step()
        ticks += 1

    assert driver.telemetry == reference.telemetry
    assert (
        driver.engine.core.result().total_cost
        == reference.engine.core.result().total_cost
    )
