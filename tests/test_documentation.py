"""Documentation contract: every public item carries a docstring.

The deliverable is a library other people adopt; this meta-test walks the
installed package and fails on any public module, class, function, or
method missing documentation.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro


def iter_public_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        leaf = info.name.rsplit(".", 1)[-1]
        if leaf.startswith("_"):
            continue
        yield importlib.import_module(info.name)


ALL_MODULES = list(iter_public_modules())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_module_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), (
        f"module {module.__name__} has no docstring"
    )


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_members_documented(module):
    undocumented = []
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-export; documented at its definition site
        if not (member.__doc__ and member.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(member):
            for method_name, method in vars(member).items():
                if method_name.startswith("_"):
                    continue  # __init__ params documented in the class doc
                if not inspect.isfunction(method):
                    continue
                if method.__doc__ and method.__doc__.strip():
                    continue
                # Overrides inherit documentation from the defining base.
                inherited = any(
                    getattr(getattr(base, method_name, None), "__doc__", None)
                    for base in member.__mro__[1:]
                )
                if not inherited:
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, (
        f"undocumented public items in {module.__name__}: {undocumented}"
    )


#: The serving-layer API surface this repo's docs explicitly promise:
#: every symbol here must exist and carry real documentation (the generic
#: walk above covers them too, but these are load-bearing enough to name).
PROMISED_API = [
    ("repro.engine", "MarketplaceEngine"),
    ("repro.engine", "ShardedEngine"),
    ("repro.engine", "CampaignPlanner"),
    ("repro.engine", "PolicyCache"),
    ("repro.engine", "generate_workload"),
    ("repro.core.batch", "solve_deadline_batch"),
    ("repro.core.batch", "solve_budget_batch"),
    ("repro.core.batch", "BatchPolicySolver"),
    ("repro.core.batch", "BudgetRequest"),
]

PROMISED_METHODS = [
    ("repro.core.deadline.model", "DeadlineProblem", "signature"),
    ("repro.market.acceptance", "AcceptanceModel", "signature"),
    ("repro.engine.cache", "PolicyCache", "get_or_solve_many"),
    ("repro.engine.routing", "ArrivalRouter", "fractions"),
]


@pytest.mark.parametrize("module_name,symbol", PROMISED_API)
def test_promised_symbol_documented(module_name, symbol):
    member = getattr(importlib.import_module(module_name), symbol)
    assert member.__doc__ and len(member.__doc__.strip()) > 20


@pytest.mark.parametrize("module_name,cls,method", PROMISED_METHODS)
def test_promised_method_documented(module_name, cls, method):
    owner = getattr(importlib.import_module(module_name), cls)
    member = getattr(owner, method)
    assert member.__doc__ and len(member.__doc__.strip()) > 20


def test_budget_signature_documented():
    from repro.core.budget.static_lp import budget_signature

    assert budget_signature.__doc__ and "signature" in budget_signature.__doc__
