"""Documentation contract: every public item carries a docstring.

The deliverable is a library other people adopt; this meta-test walks the
installed package and fails on any public module, class, function, or
method missing documentation.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro


def iter_public_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        leaf = info.name.rsplit(".", 1)[-1]
        if leaf.startswith("_"):
            continue
        yield importlib.import_module(info.name)


ALL_MODULES = list(iter_public_modules())


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_module_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), (
        f"module {module.__name__} has no docstring"
    )


@pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
def test_public_members_documented(module):
    undocumented = []
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-export; documented at its definition site
        if not (member.__doc__ and member.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(member):
            for method_name, method in vars(member).items():
                if method_name.startswith("_"):
                    continue  # __init__ params documented in the class doc
                if not inspect.isfunction(method):
                    continue
                if method.__doc__ and method.__doc__.strip():
                    continue
                # Overrides inherit documentation from the defining base.
                inherited = any(
                    getattr(getattr(base, method_name, None), "__doc__", None)
                    for base in member.__mro__[1:]
                )
                if not inherited:
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, (
        f"undocumented public items in {module.__name__}: {undocumented}"
    )
