"""Tests for the Poisson utilities, including the paper's Table 1."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.util.poisson import (
    poisson_cdf,
    poisson_pmf,
    poisson_pmf_vector,
    poisson_sample,
    poisson_tail,
    truncated_pmf,
    truncation_cutoff,
)


class TestPmf:
    def test_matches_scipy_scalar(self):
        for lam in (0.1, 1.0, 7.3, 50.0, 900.0):
            for s in (0, 1, 5, 40):
                assert poisson_pmf(s, lam) == pytest.approx(
                    float(stats.poisson.pmf(s, lam)), rel=1e-10
                )

    def test_negative_count_is_zero(self):
        assert poisson_pmf(-1, 5.0) == 0.0

    def test_zero_mean_point_mass(self):
        assert poisson_pmf(0, 0.0) == 1.0
        assert poisson_pmf(3, 0.0) == 0.0

    def test_negative_mean_rejected(self):
        with pytest.raises(ValueError):
            poisson_pmf(1, -2.0)

    @given(st.floats(min_value=0.01, max_value=500.0))
    @settings(max_examples=40, deadline=None)
    def test_vector_sums_below_one(self, lam):
        pmf = poisson_pmf_vector(int(lam + 10 * math.sqrt(lam) + 20), lam)
        assert np.all(pmf >= 0)
        assert pmf.sum() == pytest.approx(1.0, abs=1e-8)

    def test_vector_matches_scalar(self):
        lam = 17.5
        pmf = poisson_pmf_vector(60, lam)
        for s in (0, 3, 17, 59):
            assert pmf[s] == pytest.approx(poisson_pmf(s, lam), rel=1e-10)

    def test_vector_large_mean_log_space_path(self):
        lam = 1200.0
        pmf = poisson_pmf_vector(1600, lam)
        assert pmf.sum() == pytest.approx(1.0, abs=1e-6)
        assert pmf[1200] == pytest.approx(float(stats.poisson.pmf(1200, lam)), rel=1e-8)

    def test_vector_zero_mean(self):
        pmf = poisson_pmf_vector(4, 0.0)
        assert pmf[0] == 1.0
        assert pmf[1:].sum() == 0.0

    def test_vector_rejects_negative_smax(self):
        with pytest.raises(ValueError):
            poisson_pmf_vector(-1, 3.0)


class TestCdfTail:
    def test_cdf_tail_complement(self):
        lam = 9.0
        for s in range(0, 30, 3):
            assert poisson_cdf(s, lam) + poisson_tail(s + 1, lam) == pytest.approx(
                1.0, abs=1e-12
            )

    def test_tail_at_zero_is_one(self):
        assert poisson_tail(0, 5.0) == 1.0
        assert poisson_tail(-3, 5.0) == 1.0

    def test_cdf_below_zero(self):
        assert poisson_cdf(-1, 5.0) == 0.0


class TestSample:
    def test_mean_close(self, rng):
        draws = [poisson_sample(20.0, rng) for _ in range(4000)]
        assert np.mean(draws) == pytest.approx(20.0, rel=0.05)

    def test_negative_mean_rejected(self, rng):
        with pytest.raises(ValueError):
            poisson_sample(-1.0, rng)


class TestTruncationCutoff:
    def test_paper_table1(self):
        # The values printed in the paper's Table 1.
        assert truncation_cutoff(10.0, 1e-9) == 35
        assert truncation_cutoff(20.0, 1e-9) == 53
        assert truncation_cutoff(50.0, 1e-9) == 99

    def test_definition_minimality(self):
        for lam in (3.0, 10.0, 77.0):
            s0 = truncation_cutoff(lam, 1e-9)
            assert poisson_tail(s0, lam) < 1e-9
            assert poisson_tail(s0 - 1, lam) >= 1e-9

    @given(
        st.floats(min_value=0.1, max_value=300.0),
        st.sampled_from([1e-6, 1e-9, 1e-12]),
    )
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_eps(self, lam, eps):
        # A stricter threshold can only push the cut-off further out.
        assert truncation_cutoff(lam, eps) <= truncation_cutoff(lam, eps / 100)

    def test_monotone_in_lam(self):
        cuts = [truncation_cutoff(lam, 1e-9) for lam in (1.0, 5.0, 20.0, 80.0)]
        assert cuts == sorted(cuts)

    def test_zero_mean(self):
        assert truncation_cutoff(0.0, 1e-9) == 1

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            truncation_cutoff(5.0, 0.0)
        with pytest.raises(ValueError):
            truncation_cutoff(5.0, 1.0)

    def test_invalid_lam(self):
        with pytest.raises(ValueError):
            truncation_cutoff(-1.0, 1e-9)


class TestTruncatedPmf:
    def test_agrees_with_cutoff(self):
        for lam in (0.5, 4.0, 30.0, 200.0):
            s0 = truncation_cutoff(lam, 1e-9)
            pmf = truncated_pmf(lam, 1e-9)
            assert pmf.size == s0

    def test_cap_applies(self):
        pmf = truncated_pmf(50.0, 1e-9, s_cap=10)
        assert pmf.size == 11
        assert pmf[3] == pytest.approx(poisson_pmf(3, 50.0), rel=1e-10)

    def test_cap_larger_than_cutoff(self):
        # When the cap exceeds the band the eps rule decides the length.
        pmf = truncated_pmf(5.0, 1e-9, s_cap=10_000)
        assert pmf.size < 100

    def test_mass_captured(self):
        pmf = truncated_pmf(25.0, 1e-9)
        assert 1.0 - pmf.sum() < 1e-8

    def test_zero_mean(self):
        pmf = truncated_pmf(0.0, 1e-9)
        assert pmf[0] == 1.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            truncated_pmf(-1.0)
        with pytest.raises(ValueError):
            truncated_pmf(5.0, eps=2.0)
