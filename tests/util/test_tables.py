"""Tests for the ASCII table/series renderers."""

from __future__ import annotations

import pytest

from repro.util.tables import format_kv, format_series, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["a", "long_header"], [(1, 2.5), (30, 4.125)])
        lines = out.splitlines()
        assert len(lines) == 4
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equally wide

    def test_title_prepended(self):
        out = format_table(["x"], [(1,)], title="My Title")
        assert out.splitlines()[0] == "My Title"

    def test_precision_applied(self):
        out = format_table(["v"], [(1.23456,)], precision=2)
        assert "1.23" in out
        assert "1.235" not in out

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [(1,)])

    def test_strings_pass_through(self):
        out = format_table(["name"], [("hello",)])
        assert "hello" in out


class TestFormatSeries:
    def test_two_columns(self):
        out = format_series("x", "y", [1, 2], [3, 4])
        assert "x" in out and "y" in out
        assert "3" in out and "4" in out

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_series("x", "y", [1], [2, 3])


class TestFormatKv:
    def test_alignment_and_values(self):
        out = format_kv({"short": 1, "much_longer_key": 2.5})
        lines = out.splitlines()
        assert lines[0].index("=") == lines[1].index("=")

    def test_title(self):
        out = format_kv({"k": 1}, title="T")
        assert out.splitlines()[0] == "T"

    def test_empty_mapping(self):
        assert format_kv({}) == ""
