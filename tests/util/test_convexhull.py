"""Tests for the lower convex hull used by Algorithm 3."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.convexhull import hull_segment_for, lower_convex_hull


class TestLowerConvexHull:
    def test_line_keeps_endpoints_only(self):
        xs = [0.0, 1.0, 2.0, 3.0]
        ys = [0.0, 1.0, 2.0, 3.0]
        assert lower_convex_hull(xs, ys) == [0, 3]

    def test_convex_curve_keeps_everything(self):
        xs = list(range(6))
        ys = [(x - 2.5) ** 2 for x in xs]
        assert lower_convex_hull(xs, ys) == list(range(6))

    def test_interior_point_above_chord_dropped(self):
        xs = [0.0, 1.0, 2.0]
        ys = [0.0, 5.0, 0.0]
        assert lower_convex_hull(xs, ys) == [0, 2]

    def test_duplicate_x_keeps_lower(self):
        xs = [0.0, 1.0, 1.0, 2.0]
        ys = [0.0, 3.0, -1.0, 0.0]
        hull = lower_convex_hull(xs, ys)
        assert 2 in hull  # the y=-1 point
        assert 1 not in hull

    def test_single_point(self):
        assert lower_convex_hull([3.0], [7.0]) == [0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            lower_convex_hull([], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            lower_convex_hull([1.0, 2.0], [1.0])

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-100, max_value=100),
                st.floats(min_value=-100, max_value=100),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_hull_lies_below_all_points(self, points):
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        hull = lower_convex_hull(xs, ys)
        hull_x = np.array([xs[i] for i in hull])
        hull_y = np.array([ys[i] for i in hull])
        # Hull x strictly increasing.
        assert np.all(np.diff(hull_x) > 0)
        # Every input point lies on or above the piecewise-linear hull.
        for x, y in points:
            if x < hull_x[0] or x > hull_x[-1]:
                continue
            interp = np.interp(x, hull_x, hull_y)
            assert y >= interp - 1e-6 * (1 + abs(interp))

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-50, max_value=50),
                st.floats(min_value=-50, max_value=50),
            ),
            min_size=3,
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_hull_is_convex(self, points):
        xs = [p[0] for p in points]
        ys = [p[1] for p in points]
        hull = lower_convex_hull(xs, ys)
        hull_x = [xs[i] for i in hull]
        hull_y = [ys[i] for i in hull]
        # Slopes along the lower hull must be strictly increasing.
        slopes = [
            (hull_y[i + 1] - hull_y[i]) / (hull_x[i + 1] - hull_x[i])
            for i in range(len(hull_x) - 1)
        ]
        assert all(b > a - 1e-9 for a, b in zip(slopes, slopes[1:]))


class TestHullSegmentFor:
    def test_bracketing(self):
        xs = [0.0, 2.0, 5.0, 9.0]
        assert hull_segment_for(xs, 3.0) == (1, 2)
        assert hull_segment_for(xs, 2.0) == (1, 2)

    def test_below_first(self):
        assert hull_segment_for([1.0, 2.0], 0.5) == (0, 0)

    def test_at_or_beyond_last(self):
        assert hull_segment_for([1.0, 2.0], 2.0) == (1, 1)
        assert hull_segment_for([1.0, 2.0], 9.0) == (1, 1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            hull_segment_for([], 1.0)

    def test_non_increasing_rejected(self):
        with pytest.raises(ValueError):
            hull_segment_for([1.0, 1.0, 2.0], 1.5)
