"""Tests for policy save/load."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.deadline.vectorized import solve_deadline
from repro.market.acceptance import EmpiricalAcceptance
from repro.util.serialization import load_policy, save_policy

from tests.conftest import make_problem


class TestRoundtrip:
    def test_logit_policy(self, tmp_path, small_problem):
        policy = solve_deadline(small_problem)
        path = save_policy(policy, tmp_path / "policy.npz")
        loaded = load_policy(path)
        assert np.allclose(loaded.opt, policy.opt)
        assert np.array_equal(loaded.price_index, policy.price_index)
        assert loaded.solver == policy.solver
        assert loaded.problem.num_tasks == small_problem.num_tasks
        assert loaded.problem.penalty == small_problem.penalty
        # Behavioural equality: evaluation reproduces the same outcome.
        assert loaded.evaluate().expected_cost == pytest.approx(
            policy.evaluate().expected_cost
        )

    def test_empirical_acceptance_policy(self, tmp_path):
        import dataclasses

        base = make_problem(num_tasks=3, arrival_means=[500.0, 400.0], max_price=3.0)
        problem = dataclasses.replace(
            base, acceptance=EmpiricalAcceptance({1.0: 0.001, 2.0: 0.003, 3.0: 0.01})
        )
        policy = solve_deadline(problem)
        loaded = load_policy(save_policy(policy, tmp_path / "emp"))
        assert loaded.problem.acceptance.probability(2.0) == pytest.approx(0.003)
        assert np.allclose(loaded.opt, policy.opt)

    def test_suffix_appended(self, tmp_path, small_problem):
        policy = solve_deadline(small_problem)
        path = save_policy(policy, tmp_path / "noext")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_exact_mode_roundtrip(self, tmp_path):
        problem = make_problem(truncation_eps=None)
        policy = solve_deadline(problem)
        loaded = load_policy(save_policy(policy, tmp_path / "exact"))
        assert loaded.problem.truncation_eps is None


class TestErrors:
    def test_unserializable_acceptance(self, tmp_path):
        import dataclasses

        from repro.market.acceptance import AcceptanceModel

        class Custom(AcceptanceModel):
            def probability(self, price):
                return 0.001

        base = make_problem(num_tasks=2, arrival_means=[500.0], max_price=2.0)
        problem = dataclasses.replace(base, acceptance=Custom())
        policy = solve_deadline(problem)
        with pytest.raises(TypeError, match="cannot serialize"):
            save_policy(policy, tmp_path / "custom")

    def test_unknown_format_version(self, tmp_path, small_problem):
        import json

        policy = solve_deadline(small_problem)
        path = save_policy(policy, tmp_path / "old")
        with np.load(path) as data:
            header = json.loads(bytes(data["header"].tobytes()).decode())
            arrays = {k: data[k] for k in data.files if k != "header"}
        header["format_version"] = 999
        np.savez(
            path,
            header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
            **arrays,
        )
        with pytest.raises(ValueError, match="format version"):
            load_policy(path)
