"""Tests for the shared validation helpers."""

from __future__ import annotations

import pytest

from repro.util.validation import require_in_range, require_nonnegative, require_positive


class TestRequirePositive:
    def test_accepts_and_returns(self):
        assert require_positive("x", 2.5) == 2.5

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValueError, match="x must be positive"):
            require_positive("x", 0.0)
        with pytest.raises(ValueError):
            require_positive("x", -1.0)


class TestRequireNonnegative:
    def test_accepts_zero(self):
        assert require_nonnegative("x", 0.0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            require_nonnegative("x", -0.1)


class TestRequireInRange:
    def test_accepts_bounds(self):
        assert require_in_range("x", 0.0, 0.0, 1.0) == 0.0
        assert require_in_range("x", 1.0, 0.0, 1.0) == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError, match="must lie in"):
            require_in_range("x", 1.5, 0.0, 1.0)
