"""Documentation-layer contract: pages exist, links resolve, bench recorded.

This is the ``make docs-check`` target: it fails when a docs page goes
missing, when the README stops linking the docs tree, when a relative
markdown link points at a file that does not exist, or when the tracked
benchmark record loses the fields ``docs/performance.md`` documents.
"""

from __future__ import annotations

import json
import pathlib
import re

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
DOCS_PAGES = (
    "docs/architecture.md",
    "docs/paper_mapping.md",
    "docs/performance.md",
    "docs/checkpointing.md",
    "docs/scenarios.md",
    "docs/serving.md",
    "docs/observability.md",
)
#: Relative markdown links: [text](target) excluding URLs and anchors.
_LINK = re.compile(r"\[[^\]]+\]\((?!https?://|#|mailto:)([^)#\s]+)")


@pytest.mark.parametrize("page", DOCS_PAGES)
def test_docs_page_exists_and_has_content(page):
    path = REPO_ROOT / page
    assert path.is_file(), f"{page} is missing"
    text = path.read_text()
    assert text.startswith("#"), f"{page} should start with a heading"
    assert len(text) > 500, f"{page} looks like a stub"


def test_readme_links_every_docs_page():
    readme = (REPO_ROOT / "README.md").read_text()
    for page in DOCS_PAGES:
        assert page in readme, f"README.md does not link {page}"


@pytest.mark.parametrize(
    "source", ["README.md", *DOCS_PAGES], ids=lambda p: str(p)
)
def test_relative_links_resolve(source):
    path = REPO_ROOT / source
    broken = []
    for match in _LINK.finditer(path.read_text()):
        target = (path.parent / match.group(1)).resolve()
        if not target.exists():
            broken.append(match.group(1))
    assert not broken, f"{source} has broken relative links: {broken}"


class TestBenchRecord:
    @pytest.fixture(scope="class")
    def record(self):
        path = REPO_ROOT / "BENCH_engine.json"
        assert path.is_file(), (
            "BENCH_engine.json is missing; regenerate with "
            "`pytest benchmarks/bench_engine.py -k fastpath`"
        )
        return json.loads(path.read_text())

    def test_policy_solve_fields(self, record):
        solve = record["policy_solve"]
        for field in (
            "scalar_seconds",
            "batch_seconds",
            "speedup",
            "required_speedup",
        ):
            assert field in solve
        assert solve["speedup"] >= solve["required_speedup"]

    def test_shard_scaling_fields(self, record):
        scaling = record["shard_scaling"]
        assert scaling["interleaved"] is True
        arms = {(a["shards"], a["executor"]) for a in scaling["arms"]}
        assert {(1, "serial"), (4, "thread"), (4, "process")} <= arms
        completed = {a["completed"] for a in scaling["arms"]}
        assert len(completed) == 1, (
            "shard count or executor changed the outcome"
        )
        floor = scaling["required_min_campaigns_per_second"]
        assert all(
            a["campaigns_per_second"] >= floor for a in scaling["arms"]
        )

    def test_kernels_fields(self, record):
        kern = record["kernels"]
        for field in (
            "backend",
            "scalar_seconds",
            "batch_seconds",
            "speedup",
            "required_speedup",
        ):
            assert field in kern
        assert kern["speedup"] >= kern["required_speedup"]

    def test_serve_fields(self, record):
        serve = record["serve"]
        for field in (
            "requests_per_second",
            "required_requests_per_second",
            "seconds",
            "workload",
        ):
            assert field in serve
        assert (
            serve["requests_per_second"]
            >= serve["required_requests_per_second"]
        )

    def test_scale_fields(self, record):
        scale = record["scale"]
        for field in (
            "campaigns",
            "elapsed_seconds",
            "campaigns_per_second",
            "peak_rss_mib",
            "peak_rss_bytes_per_campaign",
            "rss_budget_mib",
            "traced_peak_mib",
            "traced_budget_mib",
            "checksum",
        ):
            assert field in scale
        assert scale["campaigns"] >= 1_000_000
        assert scale["peak_rss_mib"] < scale["rss_budget_mib"]
        assert scale["traced_peak_mib"] < scale["traced_budget_mib"]

    def test_obs_fields(self, record):
        obs = record["obs"]
        for field in (
            "baseline_seconds",
            "logged_seconds",
            "overhead_fraction",
            "required_max_overhead",
            "events_written",
            "workload",
        ):
            assert field in obs
        assert obs["overhead_fraction"] <= obs["required_max_overhead"]
        assert obs["events_written"] > 0
