"""The unified engine clock: tick stepping, mid-flight submission, stats scoping.

Contracts under test:

* ``tick()``-stepping a session produces exactly what ``run()`` produces —
  they are the same loop (EngineCore), not two implementations.
* Campaigns may be submitted *between ticks*; doing so is bit-identical to
  having submitted them up front (queueing consumes no randomness).
* Stats are session-scoped: a second ``run()`` on the same engine reports
  per-run cache/batch stats identical to the first run's, instead of the
  cumulative cross-run counters the old twin loops leaked.
* ``campaigns_per_second`` is JSON-safe (0.0, never ``inf``).
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.engine import (
    CacheStats,
    CampaignSpec,
    DEADLINE,
    EngineResult,
    MarketplaceEngine,
    ShardedEngine,
    TickReport,
    generate_workload,
)
from repro.market.acceptance import paper_acceptance_model
from repro.sim.stream import SharedArrivalStream


def strip_timing(result: EngineResult) -> EngineResult:
    """Results minus wall-clock (the only field allowed to differ)."""
    return dataclasses.replace(result, elapsed_seconds=0.0)


def make_stream(n: int = 48) -> SharedArrivalStream:
    means = 900.0 + 400.0 * np.sin(np.linspace(0.0, 4.0 * np.pi, n))
    return SharedArrivalStream(means)


def make_engine(sharded: bool = False, n: int = 48, **kwargs):
    stream = make_stream(n)
    if sharded:
        return ShardedEngine(
            stream, paper_acceptance_model(), planning="stationary",
            executor="serial", **kwargs,
        )
    return MarketplaceEngine(
        stream, paper_acceptance_model(), planning="stationary", **kwargs
    )


def deadline_spec(**overrides) -> CampaignSpec:
    base = dict(
        campaign_id="dl-0", kind=DEADLINE, num_tasks=12, submit_interval=0,
        horizon_intervals=12, max_price=25, penalty_per_task=120.0,
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestTickStepping:
    @pytest.mark.parametrize("sharded", [False, True], ids=["market", "sharded"])
    def test_tick_stepping_equals_run(self, sharded):
        specs = generate_workload(16, 48, seed=21, adaptive_fraction=0.3)
        batch_engine = make_engine(sharded)
        batch_engine.submit(specs)
        batch = batch_engine.run(seed=5)

        step_engine = make_engine(sharded)
        step_engine.submit(specs)
        core = step_engine.start(seed=5)
        reports: list[TickReport] = []
        while not core.done:
            reports.append(core.tick())
        stepped = core.result()
        step_engine.close()

        assert strip_timing(stepped) == strip_timing(batch)
        # The reports are a complete, consistent journal of the run.
        assert sum(len(r.retired) for r in reports) == stepped.num_campaigns
        assert sum(r.arrived for r in reports) == stepped.total_arrivals
        assert sum(r.accepted for r in reports) == stepped.total_accepted
        assert sum(not r.idle for r in reports) == stepped.intervals_run
        assert max(r.interval for r in reports) == reports[-1].interval

    def test_tick_after_done_raises(self):
        engine = make_engine()
        engine.submit(deadline_spec(horizon_intervals=6))
        core = engine.start(seed=1)
        while not core.done:
            core.tick()
        with pytest.raises(RuntimeError, match="exhausted"):
            core.tick()

    def test_tick_without_session_raises(self):
        engine = make_engine()
        with pytest.raises(RuntimeError, match="start"):
            engine.tick()

    def test_engine_tick_delegates_to_session(self):
        engine = make_engine()
        engine.submit(deadline_spec())
        engine.start(seed=2)
        report = engine.tick()
        assert report.interval == 0 and report.admitted == 1
        assert engine.core is not None and engine.core.clock == 1

    def test_idle_ticks_before_late_submission(self):
        engine = make_engine()
        engine.submit(deadline_spec(submit_interval=5, horizon_intervals=6))
        core = engine.start(seed=3)
        idle = [core.tick() for _ in range(5)]
        assert all(r.idle and r.arrived == 0 for r in idle)
        busy = core.tick()
        assert not busy.idle and busy.admitted == 1

    def test_result_is_readable_mid_run(self):
        engine = make_engine()
        engine.submit(generate_workload(8, 48, seed=4))
        core = engine.start(seed=4)
        for _ in range(6):
            core.tick()
        partial = core.result()
        assert partial.intervals_run <= 6
        assert partial.num_campaigns <= 8
        final = core.run_to_completion()
        assert final.num_campaigns == 8
        assert final.intervals_run >= partial.intervals_run


class TestMidFlightSubmission:
    @pytest.mark.parametrize("sharded", [False, True], ids=["market", "sharded"])
    def test_midflight_submit_matches_upfront(self, sharded):
        early = generate_workload(10, 48, seed=31)
        late = [
            deadline_spec(campaign_id=f"late-{i}", submit_interval=20,
                          horizon_intervals=14)
            for i in range(3)
        ]
        upfront = make_engine(sharded)
        upfront.submit(early + late)
        reference = upfront.run(seed=8)

        streamed = make_engine(sharded)
        streamed.submit(early)
        core = streamed.start(seed=8)
        for _ in range(12):  # still before the late submit interval
            core.tick()
        streamed.submit(late)
        live = core.run_to_completion()
        streamed.close()
        assert strip_timing(live) == strip_timing(reference)

    def test_submission_into_the_past_rejected(self):
        engine = make_engine()
        engine.submit(deadline_spec())
        core = engine.start(seed=9)
        for _ in range(4):
            core.tick()
        with pytest.raises(ValueError, match="already"):
            engine.submit(
                deadline_spec(campaign_id="late", submit_interval=2)
            )
        # The rejected spec must not have been half-registered.
        assert engine.num_submitted == 1

    def test_run_to_completion_ends_the_session_like_run(self):
        """Both completion paths must leave the engine sessionless, so a
        later submit() queues for the next run instead of being validated
        against a finished session's clock."""
        engine = make_engine()
        engine.submit(deadline_spec(horizon_intervals=6))
        engine.start(seed=13)
        engine.run_to_completion()
        assert engine.core is None
        engine.submit(deadline_spec(campaign_id="dl-next", submit_interval=0))
        result = engine.run(seed=13)
        assert result.num_campaigns == 2

    def test_submit_revives_a_done_early_session(self):
        engine = make_engine()
        engine.submit(deadline_spec(horizon_intervals=4))
        core = engine.start(seed=10)
        while not core.done:
            core.tick()
        assert core.clock < engine.stream.num_intervals
        engine.submit(
            deadline_spec(campaign_id="dl-2", submit_interval=core.clock,
                          horizon_intervals=6)
        )
        assert not core.done
        result = core.run_to_completion()
        assert result.num_campaigns == 2


class TestSessionScopedStats:
    def test_back_to_back_runs_report_identical_stats(self):
        """Regression: reruns used to report *cumulative* cache/batch
        counters (and warm-cache per-campaign cache_hit/num_solves),
        because the shared PolicyCache and BatchPolicySolver counters were
        never scoped per run."""
        engine = make_engine()
        engine.submit(
            [deadline_spec(campaign_id=f"dl-{i}") for i in range(5)]
        )
        first = engine.run(seed=6)
        second = engine.run(seed=6)
        assert strip_timing(first) == strip_timing(second)
        # Spot-check the fields the leak used to corrupt.
        assert second.cache_stats == first.cache_stats
        assert second.cache_stats.misses == 1 and second.cache_stats.hits == 4
        assert second.batch_stats == first.batch_stats
        assert [o.cache_hit for o in second.outcomes] == [
            o.cache_hit for o in first.outcomes
        ]
        assert [o.num_solves for o in second.outcomes] == [
            o.num_solves for o in first.outcomes
        ]

    def test_sharded_reruns_also_scoped(self):
        engine = make_engine(sharded=True, num_shards=3)
        engine.submit(generate_workload(12, 48, seed=41))
        first = engine.run(seed=7)
        second = engine.run(seed=7)
        assert strip_timing(first) == strip_timing(second)

    def test_session_stats_are_deltas_not_absolutes(self):
        engine = make_engine()
        engine.submit(
            [deadline_spec(campaign_id=f"dl-{i}") for i in range(3)]
        )
        engine.run(seed=11)
        result = engine.run(seed=11)
        assert result.cache_stats.lookups == 3  # not 6


class TestCampaignsPerSecond:
    def _result(self, elapsed: float) -> EngineResult:
        return EngineResult(
            outcomes=(), intervals_run=0, total_arrivals=0,
            total_considered=0, total_accepted=0, max_concurrent=0,
            cache_stats=CacheStats(0, 0, 0, 0), elapsed_seconds=elapsed,
        )

    def test_zero_elapsed_reports_zero_not_inf(self):
        assert self._result(0.0).campaigns_per_second == 0.0

    def test_throughput_is_json_serializable(self):
        """Regression: float('inf') serialized as the non-standard token
        ``Infinity``, corrupting any BENCH_*.json recording it."""
        payload = json.dumps(
            {"campaigns_per_second": self._result(0.0).campaigns_per_second}
        )
        assert json.loads(payload)["campaigns_per_second"] == 0.0
        # Strict JSON parsers must accept the payload.
        json.loads(payload, parse_constant=lambda _: pytest.fail(
            "non-standard JSON constant emitted"
        ))

    def test_positive_elapsed_unchanged(self):
        engine = make_engine()
        engine.submit(deadline_spec(horizon_intervals=6))
        run = engine.run(seed=12)
        assert run.campaigns_per_second > 0
