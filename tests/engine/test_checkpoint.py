"""Checkpoint/resume round-trips: snapshot -> restore -> finish == run.

The acceptance contract: a session snapshotted at *any* tick boundary and
restored from disk must finish bit-identically to the uninterrupted
same-seed run — same outcomes (costs, completions, cache_hit, num_solves),
same counters, same per-session cache/batch stats — for both engine
front-ends, multiple shard counts, serial and thread executors, with
adaptive campaigns in the mix.  Only wall-clock may differ.
"""

from __future__ import annotations

import dataclasses
import functools
import json

import numpy as np
import pytest

from repro.engine import (
    CHECKPOINT_VERSION,
    CheckpointError,
    EngineResult,
    MarketplaceEngine,
    ShardedEngine,
    UniformRouter,
    generate_workload,
    restore_engine,
    save_checkpoint,
)
from repro.engine.routing import ArrivalRouter
from repro.market.acceptance import paper_acceptance_model
from repro.sim.stream import SharedArrivalStream

SEED = 9
NUM_INTERVALS = 60


def strip_timing(result: EngineResult) -> EngineResult:
    """Results minus wall-clock (the only field allowed to differ)."""
    return dataclasses.replace(result, elapsed_seconds=0.0)


def make_stream() -> SharedArrivalStream:
    means = 1300.0 + 450.0 * np.sin(np.linspace(0.0, 4.0 * np.pi, NUM_INTERVALS))
    return SharedArrivalStream(means)


def workload():
    # Adaptive campaigns included: their repricer observations and suffix
    # solve caches are the hardest state to round-trip.
    return generate_workload(
        14, NUM_INTERVALS, seed=3, adaptive_fraction=0.4
    )


ENGINES = {
    "market": lambda: MarketplaceEngine(
        make_stream(), paper_acceptance_model(), planning="stationary"
    ),
    "sharded-1-serial": lambda: ShardedEngine(
        make_stream(), paper_acceptance_model(), num_shards=1,
        executor="serial", planning="stationary",
    ),
    "sharded-3-serial": lambda: ShardedEngine(
        make_stream(), paper_acceptance_model(), num_shards=3,
        executor="serial", planning="stationary",
    ),
    "sharded-3-thread": lambda: ShardedEngine(
        make_stream(), paper_acceptance_model(), num_shards=3,
        executor="thread", planning="stationary",
    ),
}


@functools.lru_cache(maxsize=None)
def run_uninterrupted(flavour: str) -> EngineResult:
    engine = ENGINES[flavour]()
    engine.submit(workload())
    return engine.run(seed=SEED)


def run_interrupted(flavour: str, stop_tick: int, bundle_dir) -> EngineResult:
    engine = ENGINES[flavour]()
    engine.submit(workload())
    core = engine.start(seed=SEED)
    for _ in range(stop_tick):
        if core.done:
            break
        core.tick()
    save_checkpoint(engine, bundle_dir)
    engine.close()
    del engine, core  # the restored engine must stand entirely on the bundle
    restored = restore_engine(bundle_dir)
    try:
        return restored.run_to_completion()
    finally:
        restored.close()


class TestRoundTrip:
    @pytest.mark.parametrize("flavour", list(ENGINES))
    @pytest.mark.parametrize("stop_tick", [0, 1, 7, 23])
    def test_resume_is_bit_identical(self, flavour, stop_tick, tmp_path):
        base = run_uninterrupted(flavour)
        resumed = run_interrupted(flavour, stop_tick, tmp_path / "ck")
        assert strip_timing(resumed) == strip_timing(base)

    @pytest.mark.parametrize("flavour", ["market", "sharded-3-serial"])
    def test_every_tick_is_a_valid_checkpoint(self, flavour, tmp_path):
        """Property sweep: snapshot at *each* tick of a short run."""
        base = run_uninterrupted(flavour)
        total_ticks = base.intervals_run
        for stop in range(0, total_ticks + 1, 5):
            resumed = run_interrupted(flavour, stop, tmp_path / f"ck{stop}")
            assert strip_timing(resumed) == strip_timing(base), (
                f"divergence when checkpointing at tick {stop}"
            )

    def test_restored_session_supports_midflight_submit(self, tmp_path):
        engine = ENGINES["market"]()
        engine.submit(workload())
        core = engine.start(seed=SEED)
        for _ in range(5):
            core.tick()
        save_checkpoint(engine, tmp_path / "ck")
        engine.close()
        restored = restore_engine(tmp_path / "ck")
        late = dataclasses.replace(
            workload()[0], campaign_id="late-arrival", submit_interval=30
        )
        restored.submit(late)
        result = restored.run_to_completion()
        restored.close()
        assert result.num_campaigns == 15
        assert any(o.spec.campaign_id == "late-arrival" for o in result.outcomes)

    def test_resume_then_checkpoint_again(self, tmp_path):
        """A resumed session is itself checkpointable (chained restarts)."""
        base = run_uninterrupted("market")
        engine = ENGINES["market"]()
        engine.submit(workload())
        core = engine.start(seed=SEED)
        for _ in range(4):
            core.tick()
        save_checkpoint(engine, tmp_path / "ck1")
        engine.close()
        second = restore_engine(tmp_path / "ck1")
        for _ in range(6):
            second.tick()
        save_checkpoint(second, tmp_path / "ck2")
        second.close()
        third = restore_engine(tmp_path / "ck2")
        result = third.run_to_completion()
        third.close()
        assert strip_timing(result) == strip_timing(base)


class TestBundleContract:
    def test_bundle_layout_and_version(self, tmp_path):
        engine = ENGINES["market"]()
        engine.submit(workload())
        engine.start(seed=SEED)
        bundle = save_checkpoint(engine, tmp_path / "ck")
        engine.close()
        manifest = json.loads((bundle / "manifest.json").read_text())
        assert manifest["version"] == CHECKPOINT_VERSION
        assert manifest["engine"] == "marketplace"
        assert (bundle / manifest["arrays"]).is_file()

    def test_repeated_saves_are_self_cleaning(self, tmp_path):
        """Periodic checkpointing to one path must not leak payload files,
        and the surviving pair must stay loadable after every overwrite."""
        engine = ENGINES["market"]()
        engine.submit(workload())
        core = engine.start(seed=SEED)
        for _ in range(3):
            core.tick()
            save_checkpoint(engine, tmp_path / "ck")
        engine.close()
        payloads = list((tmp_path / "ck").glob("arrays-*.npz"))
        assert len(payloads) == 1
        assert not list((tmp_path / "ck").glob("*.tmp"))
        restored = restore_engine(tmp_path / "ck")
        assert restored.core is not None and restored.core.clock == 3
        restored.close()

    def test_torn_save_leaves_previous_bundle_usable(self, tmp_path):
        """A save killed after writing the payload but before the manifest
        rename (the worst torn-write window) must leave the *previous*
        checkpoint fully restorable."""
        engine = ENGINES["market"]()
        engine.submit(workload())
        core = engine.start(seed=SEED)
        core.tick()
        bundle = save_checkpoint(engine, tmp_path / "ck")
        before = (bundle / "manifest.json").read_bytes()
        core.tick()
        # Simulate the kill: a newer orphan payload appears, manifest stays.
        (bundle / "arrays-deadbeefcafe.npz").write_bytes(b"torn")
        (bundle / "manifest.json").write_bytes(before)
        engine.close()
        restored = restore_engine(bundle)
        assert restored.core is not None and restored.core.clock == 1
        restored.close()

    def test_unknown_version_rejected(self, tmp_path):
        engine = ENGINES["market"]()
        engine.submit(workload())
        engine.start(seed=SEED)
        bundle = save_checkpoint(engine, tmp_path / "ck")
        engine.close()
        manifest = json.loads((bundle / "manifest.json").read_text())
        manifest["version"] = CHECKPOINT_VERSION + 1
        (bundle / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="version"):
            restore_engine(bundle)

    def test_missing_bundle_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint bundle"):
            restore_engine(tmp_path / "nowhere")

    def _saved_bundle(self, tmp_path):
        engine = ENGINES["market"]()
        engine.submit(workload())
        engine.start(seed=SEED)
        bundle = save_checkpoint(engine, tmp_path / "ck")
        engine.close()
        return bundle

    def test_truncated_manifest_raises_checkpoint_error(self, tmp_path):
        bundle = self._saved_bundle(tmp_path)
        text = (bundle / "manifest.json").read_text()
        (bundle / "manifest.json").write_text(text[: len(text) // 2])
        with pytest.raises(CheckpointError, match="corrupt or unreadable"):
            restore_engine(bundle)

    def test_missing_payload_raises_checkpoint_error(self, tmp_path):
        bundle = self._saved_bundle(tmp_path)
        for payload in bundle.glob("arrays-*.npz"):
            payload.unlink()
        with pytest.raises(CheckpointError, match="corrupt or unreadable"):
            restore_engine(bundle)

    def test_snapshot_without_session_rejected(self, tmp_path):
        engine = ENGINES["market"]()
        engine.submit(workload())
        with pytest.raises(CheckpointError, match="no active serving session"):
            save_checkpoint(engine, tmp_path / "ck")

    def test_custom_router_rejected_at_save(self, tmp_path):
        class OpaqueRouter(ArrivalRouter):
            def split(self, arrived, prices, rng):
                raise NotImplementedError

            def fractions(self, prices):
                raise NotImplementedError

        engine = MarketplaceEngine(
            make_stream(), paper_acceptance_model(), router=OpaqueRouter()
        )
        engine.submit(workload())
        engine.start(seed=SEED)
        with pytest.raises(CheckpointError, match="router"):
            save_checkpoint(engine, tmp_path / "ck")
        engine.close()

    def test_executor_instance_rejected_at_save(self, tmp_path):
        import concurrent.futures

        with concurrent.futures.ThreadPoolExecutor(max_workers=2) as pool:
            engine = ShardedEngine(
                make_stream(), paper_acceptance_model(), num_shards=2,
                executor=pool, planning="stationary",
            )
            engine.submit(workload())
            engine.start(seed=SEED)
            with pytest.raises(CheckpointError, match="executor"):
                save_checkpoint(engine, tmp_path / "ck")
            engine.close()

    def test_uniform_router_round_trips(self, tmp_path):
        model = paper_acceptance_model()
        def build():
            engine = MarketplaceEngine(
                make_stream(), model, router=UniformRouter(model),
                planning="stationary",
            )
            engine.submit(workload())
            return engine
        base_engine = build()
        base = base_engine.run(seed=SEED)
        engine = build()
        core = engine.start(seed=SEED)
        for _ in range(7):
            core.tick()
        save_checkpoint(engine, tmp_path / "ck")
        engine.close()
        restored = restore_engine(tmp_path / "ck")
        assert isinstance(restored.router, UniformRouter)
        result = restored.run_to_completion()
        restored.close()
        assert strip_timing(result) == strip_timing(base)
