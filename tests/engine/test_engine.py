"""Tests for the marketplace engine clock, cache wiring, and re-planning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    BUDGET,
    DEADLINE,
    CampaignSpec,
    MarketplaceEngine,
    PolicyCache,
    UniformRouter,
    generate_workload,
)
from repro.sim.stream import SharedArrivalStream


@pytest.fixture
def stream() -> SharedArrivalStream:
    """A busy 48-interval stream with a mild diurnal swing."""
    means = 900.0 + 500.0 * np.sin(np.linspace(0.0, 4.0 * np.pi, 48))
    return SharedArrivalStream(means)


@pytest.fixture
def engine(stream, paper_acceptance) -> MarketplaceEngine:
    return MarketplaceEngine(stream, paper_acceptance)


def deadline_spec(**overrides) -> CampaignSpec:
    base = dict(
        campaign_id="dl-0",
        kind=DEADLINE,
        num_tasks=12,
        submit_interval=0,
        horizon_intervals=12,
        max_price=25,
        penalty_per_task=120.0,
    )
    base.update(overrides)
    return CampaignSpec(**base)


def budget_spec(**overrides) -> CampaignSpec:
    base = dict(
        campaign_id="bg-0",
        kind=BUDGET,
        num_tasks=10,
        submit_interval=0,
        horizon_intervals=20,
        max_price=25,
        budget=140.0,
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestSubmission:
    def test_duplicate_ids_rejected(self, engine):
        engine.submit(deadline_spec())
        with pytest.raises(ValueError, match="duplicate"):
            engine.submit(deadline_spec())

    def test_campaign_beyond_stream_rejected(self, engine):
        with pytest.raises(ValueError, match="beyond"):
            engine.submit(deadline_spec(submit_interval=40, horizon_intervals=12))

    def test_invalid_planning_mode_rejected(self, stream, paper_acceptance):
        with pytest.raises(ValueError, match="planning"):
            MarketplaceEngine(stream, paper_acceptance, planning="psychic")

    def test_planning_means_shape_checked(self, stream, paper_acceptance):
        with pytest.raises(ValueError, match="planning_means"):
            MarketplaceEngine(
                stream, paper_acceptance, planning_means=np.ones(3)
            )


class TestSingleCampaign:
    def test_deadline_campaign_finishes_on_a_busy_market(self, engine):
        engine.submit(deadline_spec())
        result = engine.run(seed=1)
        (outcome,) = result.outcomes
        assert outcome.finished
        assert outcome.completed == 12
        assert outcome.total_cost > 0
        assert outcome.penalty == 0.0
        assert result.max_concurrent == 1

    def test_budget_campaign_stays_within_budget(self, engine):
        engine.submit(budget_spec())
        result = engine.run(seed=2)
        (outcome,) = result.outcomes
        assert outcome.within_budget
        assert outcome.total_cost <= 140.0 + 1e-9

    def test_two_price_budget_never_overspends(self, paper_acceptance):
        """Several completions in one tick must step the semi-static price
        sequence down per task, not all pay the posted top price —
        otherwise a two-price Algorithm 3 allocation busts its budget."""
        for seed in range(5):
            busy = MarketplaceEngine(
                SharedArrivalStream(np.full(24, 3000.0)), paper_acceptance
            )
            busy.submit(
                budget_spec(num_tasks=30, budget=285.0, horizon_intervals=24)
            )
            (outcome,) = busy.run(seed=seed).outcomes
            assert outcome.within_budget, f"seed {seed}: {outcome.total_cost}"
            assert outcome.total_cost <= 285.0 + 1e-9

    def test_unfinished_deadline_charges_penalty(self, paper_acceptance):
        # A near-dead marketplace: almost nobody arrives.
        quiet = MarketplaceEngine(
            SharedArrivalStream(np.full(6, 0.1)), paper_acceptance
        )
        quiet.submit(deadline_spec(horizon_intervals=6))
        (outcome,) = quiet.run(seed=3).outcomes
        assert not outcome.finished
        assert outcome.penalty == pytest.approx(120.0 * outcome.remaining)

    def test_early_stop_after_last_retirement(self, engine):
        engine.submit(deadline_spec(horizon_intervals=6))
        result = engine.run(seed=4)
        assert result.intervals_run <= 6

    def test_idle_gap_before_late_submission(self, engine):
        engine.submit(deadline_spec(submit_interval=30, horizon_intervals=6))
        result = engine.run(seed=5)
        assert result.intervals_run <= 6
        assert result.outcomes[0].finished


class TestPolicyCache:
    def test_identical_campaigns_solve_once(self, engine):
        engine.submit(
            [deadline_spec(campaign_id=f"dl-{i}") for i in range(5)]
        )
        result = engine.run(seed=6)
        stats = result.cache_stats
        assert stats.misses == 1
        assert stats.hits == 4
        assert sum(o.num_solves for o in result.outcomes) == 1
        hits = [o.cache_hit for o in result.outcomes]
        assert sum(hits) == 4

    def test_budget_allocations_cached_too(self, engine):
        engine.submit([budget_spec(campaign_id=f"bg-{i}") for i in range(3)])
        stats = engine.run(seed=7).cache_stats
        assert stats.misses == 1 and stats.hits == 2

    def test_stationary_planning_canonicalizes_submit_times(
        self, stream, paper_acceptance
    ):
        engine = MarketplaceEngine(stream, paper_acceptance, planning="stationary")
        engine.submit(
            [deadline_spec(campaign_id=f"dl-{i}", submit_interval=4 * i,
                           horizon_intervals=12) for i in range(4)]
        )
        stats = engine.run(seed=8).cache_stats
        assert stats.misses == 1 and stats.hits == 3

    def test_sliced_planning_distinguishes_submit_times(
        self, stream, paper_acceptance
    ):
        engine = MarketplaceEngine(stream, paper_acceptance, planning="sliced")
        engine.submit(
            [deadline_spec(campaign_id=f"dl-{i}", submit_interval=4 * i,
                           horizon_intervals=12) for i in range(4)]
        )
        stats = engine.run(seed=9).cache_stats
        assert stats.misses == 4

    def test_disabled_cache_solves_every_time(self, stream, paper_acceptance):
        engine = MarketplaceEngine(
            stream, paper_acceptance, cache=PolicyCache(max_entries=0)
        )
        engine.submit([deadline_spec(campaign_id=f"dl-{i}") for i in range(3)])
        result = engine.run(seed=10)
        assert result.cache_stats.hits == 0
        assert sum(o.num_solves for o in result.outcomes) == 3


class TestAdaptiveReplanning:
    def test_adaptive_campaign_resolves_midflight(self, stream, paper_acceptance):
        # Realized arrivals are half the planning forecast: the repricer
        # must notice and re-plan.
        engine = MarketplaceEngine(
            stream.scaled(0.5),
            paper_acceptance,
            planning_means=stream.arrival_means,
        )
        engine.submit(deadline_spec(adaptive=True, resolve_every=2))
        (outcome,) = engine.run(seed=11).outcomes
        assert outcome.num_solves >= 2
        assert not outcome.cache_hit

    def test_adaptive_outprices_static_in_a_drought(self, stream, paper_acceptance):
        """Under a 60% arrival shortfall the adaptive campaign finishes more."""

        def run(adaptive: bool) -> tuple[int, float]:
            engine = MarketplaceEngine(
                stream.scaled(0.4),
                paper_acceptance,
                planning_means=stream.arrival_means,
            )
            engine.submit(
                deadline_spec(
                    campaign_id="c", num_tasks=40, horizon_intervals=24,
                    adaptive=adaptive, resolve_every=1,
                )
            )
            (outcome,) = engine.run(seed=12).outcomes
            return outcome.completed, outcome.average_reward

        static_done, _ = run(adaptive=False)
        adaptive_done, adaptive_reward = run(adaptive=True)
        assert adaptive_done >= static_done
        assert adaptive_reward > 0


class TestMultiCampaignRuns:
    def test_smoke_50_concurrent_heterogeneous_campaigns(
        self, paper_acceptance
    ):
        """The acceptance-criterion run: >= 50 staggered heterogeneous
        campaigns, one shared stream, deterministic seed, policy cache
        demonstrably avoiding re-solves."""
        means = 1500.0 + 600.0 * np.sin(np.linspace(0.0, 6.0 * np.pi, 96))
        stream = SharedArrivalStream(means)
        engine = MarketplaceEngine(stream, paper_acceptance, planning="stationary")
        specs = generate_workload(55, stream.num_intervals, seed=13)
        engine.submit(specs)
        result = engine.run(seed=13)
        assert result.num_campaigns == 55
        kinds = {o.spec.kind for o in result.outcomes}
        sizes = {o.spec.num_tasks for o in result.outcomes}
        assert kinds == {DEADLINE, BUDGET} and len(sizes) >= 3
        assert result.max_concurrent >= 2
        assert result.total_completed > 0
        assert result.total_cost > 0
        assert result.completion_rate > 0.5
        assert result.cache_stats.hit_rate > 0
        assert result.cache_stats.hits + result.cache_stats.misses > 0
        assert result.campaigns_per_second > 0
        # Conservation: every submitted task is either completed or remaining.
        submitted = sum(s.num_tasks for s in specs)
        assert result.total_completed + result.total_remaining == submitted

    def test_deterministic_under_seed(self, paper_acceptance):
        def run() -> tuple:
            stream = SharedArrivalStream(np.full(48, 800.0))
            engine = MarketplaceEngine(stream, paper_acceptance)
            engine.submit(generate_workload(20, 48, seed=14))
            return engine.run(seed=14).outcomes

        assert run() == run()

    def test_uniform_router_contention_hurts_throughput(
        self, stream, paper_acceptance
    ):
        """Under attention-limited routing, 8 rivals finish less than solo."""

        def completions(num_campaigns: int) -> float:
            engine = MarketplaceEngine(
                stream, paper_acceptance, router=UniformRouter(paper_acceptance)
            )
            engine.submit(
                [
                    deadline_spec(campaign_id=f"dl-{i}", num_tasks=30,
                                  horizon_intervals=12)
                    for i in range(num_campaigns)
                ]
            )
            result = engine.run(seed=15)
            return result.total_completed / num_campaigns

        assert completions(8) < completions(1)

    def test_summary_mentions_key_metrics(self, engine):
        engine.submit([deadline_spec(campaign_id=f"dl-{i}") for i in range(3)])
        text = engine.run(seed=16).summary()
        assert "campaigns/sec" in text
        assert "hit rate" in text
        assert "completion" in text
