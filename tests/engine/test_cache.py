"""Tests for the policy cache (LRU memoization behind signatures)."""

from __future__ import annotations

import pytest

from repro.engine.cache import PolicyCache


class TestGetOrSolve:
    def test_miss_then_hit(self):
        cache = PolicyCache()
        calls = []

        def solve():
            calls.append(1)
            return "policy"

        value, hit = cache.get_or_solve("sig", solve)
        assert (value, hit) == ("policy", False)
        value, hit = cache.get_or_solve("sig", solve)
        assert (value, hit) == ("policy", True)
        assert len(calls) == 1

    def test_distinct_signatures_solve_separately(self):
        cache = PolicyCache()
        a, _ = cache.get_or_solve(("n", 1), lambda: "a")
        b, _ = cache.get_or_solve(("n", 2), lambda: "b")
        assert (a, b) == ("a", "b")
        assert len(cache) == 2

    def test_stats_counters(self):
        cache = PolicyCache()
        cache.get_or_solve("x", lambda: 1)
        cache.get_or_solve("x", lambda: 1)
        cache.get_or_solve("y", lambda: 2)
        stats = cache.stats
        assert stats.hits == 1
        assert stats.misses == 2
        assert stats.lookups == 3
        assert stats.hit_rate == pytest.approx(1 / 3)
        assert stats.entries == 2

    def test_hit_rate_zero_before_lookups(self):
        assert PolicyCache().stats.hit_rate == 0.0


class TestBounds:
    def test_lru_eviction(self):
        cache = PolicyCache(max_entries=2)
        cache.get_or_solve("a", lambda: 1)
        cache.get_or_solve("b", lambda: 2)
        cache.get_or_solve("a", lambda: 1)  # refresh a; b is now LRU
        cache.get_or_solve("c", lambda: 3)  # evicts b
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.stats.evictions == 1

    def test_zero_capacity_disables_storage(self):
        cache = PolicyCache(max_entries=0)
        cache.get_or_solve("a", lambda: 1)
        _, hit = cache.get_or_solve("a", lambda: 1)
        assert not hit
        assert len(cache) == 0
        assert cache.stats.misses == 2

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="max_entries"):
            PolicyCache(max_entries=-1)

    def test_clear_resets(self):
        cache = PolicyCache()
        cache.get_or_solve("a", lambda: 1)
        cache.get_or_solve("a", lambda: 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.lookups == 0
