"""Tests for the multi-campaign marketplace engine."""
