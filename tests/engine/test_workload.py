"""Tests for workload generation and campaign spec validation."""

from __future__ import annotations

import dataclasses

import pytest

from repro.engine.campaign import BUDGET, DEADLINE, CampaignOutcome, CampaignSpec
from repro.engine.workload import (
    DEFAULT_TEMPLATES,
    CampaignTemplate,
    generate_workload,
)


def make_spec(**overrides) -> CampaignSpec:
    base = dict(
        campaign_id="c0",
        kind=DEADLINE,
        num_tasks=10,
        submit_interval=0,
        horizon_intervals=6,
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestCampaignSpec:
    def test_deadline_defaults(self):
        spec = make_spec()
        assert spec.end_interval == 6
        assert spec.price_grid().tolist() == [float(c) for c in range(1, 31)]

    def test_budget_requires_budget(self):
        with pytest.raises(ValueError, match="budget"):
            make_spec(kind=BUDGET)

    def test_budget_rejects_adaptive(self):
        with pytest.raises(ValueError, match="adaptive"):
            make_spec(kind=BUDGET, budget=100.0, adaptive=True)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"kind": "auction"},
            {"num_tasks": 0},
            {"submit_interval": -1},
            {"horizon_intervals": 0},
            {"max_price": 0},
            {"penalty_per_task": -1.0},
            {"resolve_every": 0},
        ],
    )
    def test_invalid_fields_rejected(self, overrides):
        with pytest.raises(ValueError):
            make_spec(**overrides)

    def test_outcome_properties(self):
        outcome = CampaignOutcome(
            spec=make_spec(kind=BUDGET, budget=120.0),
            completed=8,
            remaining=2,
            total_cost=90.0,
            penalty=0.0,
            finished_interval=None,
            cache_hit=True,
            num_solves=0,
        )
        assert not outcome.finished
        assert outcome.average_reward == pytest.approx(9.0)
        assert outcome.within_budget


class TestTemplates:
    def test_default_pool_is_heterogeneous(self):
        kinds = {t.kind for t in DEFAULT_TEMPLATES}
        sizes = {t.num_tasks for t in DEFAULT_TEMPLATES}
        horizons = {t.horizon_intervals for t in DEFAULT_TEMPLATES}
        assert kinds == {DEADLINE, BUDGET}
        assert len(sizes) >= 4 and len(horizons) >= 4

    def test_budget_template_computes_budget(self):
        template = CampaignTemplate("b", BUDGET, 30, 12, per_task_budget=9.0)
        spec = template.spec("b-1", submit_interval=3)
        assert spec.budget == pytest.approx(270.0)
        assert not spec.adaptive

    def test_adaptive_flag_only_applies_to_deadline(self):
        template = CampaignTemplate("b", BUDGET, 30, 12)
        assert not template.spec("b-1", 0, adaptive=True).adaptive


class TestGenerateWorkload:
    def test_count_ids_and_fit(self):
        specs = generate_workload(50, 96, seed=1)
        assert len(specs) == 50
        assert len({s.campaign_id for s in specs}) == 50
        assert all(s.end_interval <= 96 for s in specs)

    def test_reproducible(self):
        assert generate_workload(20, 96, seed=5) == generate_workload(20, 96, seed=5)
        assert generate_workload(20, 96, seed=5) != generate_workload(20, 96, seed=6)

    def test_staggered_submissions(self):
        specs = generate_workload(50, 96, seed=2)
        assert len({s.submit_interval for s in specs}) > 3

    def test_kind_mix_follows_fraction(self):
        specs = generate_workload(300, 96, seed=3, budget_fraction=0.4)
        budget = sum(1 for s in specs if s.kind == BUDGET)
        assert 0.3 < budget / 300 < 0.5

    def test_all_deadline_when_fraction_zero(self):
        specs = generate_workload(30, 96, seed=4, budget_fraction=0.0)
        assert all(s.kind == DEADLINE for s in specs)

    def test_adaptive_fraction(self):
        specs = generate_workload(
            200, 96, seed=5, budget_fraction=0.0, adaptive_fraction=0.5
        )
        adaptive = sum(1 for s in specs if s.adaptive)
        assert 0.35 < adaptive / 200 < 0.65

    def test_templates_too_long_are_rejected(self):
        long_only = tuple(
            dataclasses.replace(t, horizon_intervals=999) for t in DEFAULT_TEMPLATES
        )
        with pytest.raises(ValueError, match="fits"):
            generate_workload(10, 96, templates=long_only)

    def test_duplicate_shapes_exist_for_cache(self):
        """The workload's whole point: repeated (template, submit) shapes."""
        specs = generate_workload(60, 96, seed=7, submit_waves=4)
        shapes = {
            (s.kind, s.num_tasks, s.horizon_intervals, s.submit_interval)
            for s in specs
        }
        assert len(shapes) < len(specs)
