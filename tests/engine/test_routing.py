"""Tests for the arrival routers splitting the shared worker stream."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.routing import LogitRouter, UniformRouter
from repro.market.acceptance import EmpiricalAcceptance, paper_acceptance_model


@pytest.fixture
def logit_router(paper_acceptance):
    return LogitRouter(paper_acceptance)


@pytest.fixture
def uniform_router(paper_acceptance):
    return UniformRouter(paper_acceptance)


class TestInvariants:
    @pytest.mark.parametrize("router_name", ["logit_router", "uniform_router"])
    def test_counts_are_consistent(self, router_name, request, rng):
        router = request.getfixturevalue(router_name)
        prices = [5.0, 15.0, 25.0]
        considered, accepted = router.split(5000, prices, rng)
        assert considered.shape == accepted.shape == (3,)
        assert np.all(accepted <= considered)
        assert considered.sum() <= 5000

    @pytest.mark.parametrize("router_name", ["logit_router", "uniform_router"])
    def test_zero_arrivals(self, router_name, request, rng):
        router = request.getfixturevalue(router_name)
        considered, accepted = router.split(0, [10.0, 20.0], rng)
        assert considered.tolist() == [0, 0]
        assert accepted.tolist() == [0, 0]

    @pytest.mark.parametrize("router_name", ["logit_router", "uniform_router"])
    def test_no_live_campaigns(self, router_name, request, rng):
        router = request.getfixturevalue(router_name)
        considered, accepted = router.split(100, [], rng)
        assert considered.size == 0 and accepted.size == 0

    @pytest.mark.parametrize("router_name", ["logit_router", "uniform_router"])
    def test_negative_arrivals_rejected(self, router_name, request, rng):
        router = request.getfixturevalue(router_name)
        with pytest.raises(ValueError, match="arrived"):
            router.split(-1, [10.0], rng)

    def test_deterministic_under_seed(self, logit_router):
        a = logit_router.split(1000, [5.0, 15.0], np.random.default_rng(3))
        b = logit_router.split(1000, [5.0, 15.0], np.random.default_rng(3))
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])


class TestLogitRouter:
    def test_single_campaign_reduces_to_acceptance_model(self, logit_router, rng):
        """Alone on the marketplace, choice probability equals Eq. 3's p(c)."""
        price, arrived, reps = 15.0, 2000, 60
        p = logit_router.model.probability(price)
        totals = [logit_router.split(arrived, [price], rng)[1][0] for _ in range(reps)]
        mean = np.mean(totals)
        expected = arrived * p
        # 6-sigma band around the binomial mean.
        sigma = np.sqrt(arrived * p * (1 - p) / reps)
        assert abs(mean - expected) < 6 * sigma

    def test_higher_price_attracts_more_workers(self, logit_router, rng):
        considered, _ = logit_router.split(200_000, [5.0, 25.0], rng)
        assert considered[1] > considered[0]

    def test_contention_cannibalizes_acceptance(self, logit_router):
        """K identical campaigns together draw less than K times one alone."""
        price, arrived = 20.0, 1_000_000
        solo = logit_router.split(arrived, [price], np.random.default_rng(0))[1][0]
        tenfold = logit_router.split(
            arrived, [price] * 10, np.random.default_rng(0)
        )[1]
        assert tenfold.sum() < 10 * solo
        # ... but each individual campaign still gets close to its solo share
        # (the competing mass M dominates a handful of rivals).
        assert tenfold.sum() > 9 * solo

    def test_requires_logit_model(self):
        table = EmpiricalAcceptance({5.0: 0.01, 30.0: 0.05})
        with pytest.raises(TypeError, match="LogitAcceptance"):
            LogitRouter(table)


class TestUniformRouter:
    def test_attention_split_is_uniform(self, uniform_router, rng):
        considered, _ = uniform_router.split(90_000, [5.0, 15.0, 25.0], rng)
        assert considered.sum() == 90_000
        assert np.all(np.abs(considered - 30_000) < 1_500)

    def test_acceptance_follows_price(self, uniform_router, rng):
        p_model = paper_acceptance_model()
        considered, accepted = uniform_router.split(200_000, [5.0, 25.0], rng)
        for i, price in enumerate([5.0, 25.0]):
            expected = considered[i] * p_model.probability(price)
            assert accepted[i] == pytest.approx(expected, rel=0.25, abs=30)

    def test_works_with_empirical_model(self, rng):
        router = UniformRouter(EmpiricalAcceptance({1.0: 0.0, 30.0: 0.5}))
        considered, accepted = router.split(10_000, [1.0, 30.0], rng)
        assert accepted[0] == 0
        assert accepted[1] > 0


class _CountingGenerator:
    """Duck-typed generator proxy counting the router's draw calls."""

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)
        self.multinomial_calls = 0
        self.binomial_calls = 0

    def multinomial(self, n, pvals):
        self.multinomial_calls += 1
        return self._rng.multinomial(n, pvals)

    def binomial(self, n, p):
        self.binomial_calls += 1
        return self._rng.binomial(n, p)


class TestUniformRouterDrawDiscipline:
    """Regression for conditional RNG consumption (the ``if p > 0`` skip).

    The router must issue the *same sequence of generator calls* whatever
    the posted prices, otherwise every later draw of an engine run shifts
    depending on whether some price happened to hit zero acceptance —
    silently decorrelating runs that differ only in one campaign's policy.
    """

    ZERO_BELOW_10 = EmpiricalAcceptance({10.0: 0.0, 30.0: 0.5})

    def test_zero_acceptance_price_still_draws(self):
        router = UniformRouter(self.ZERO_BELOW_10)
        with_zero = _CountingGenerator()
        router.split(500, [5.0, 20.0], with_zero)
        without_zero = _CountingGenerator()
        router.split(500, [15.0, 20.0], without_zero)
        assert with_zero.multinomial_calls == without_zero.multinomial_calls == 1
        assert with_zero.binomial_calls == without_zero.binomial_calls == 1

    def test_zero_acceptance_price_accepts_nothing(self, rng):
        router = UniformRouter(self.ZERO_BELOW_10)
        considered, accepted = router.split(10_000, [5.0, 25.0], rng)
        assert accepted[0] == 0
        assert considered[0] > 0  # attention was still spent
        assert accepted[1] > 0


class TestLogitWeightHelper:
    def test_split_and_fractions_share_the_same_weights(self, logit_router):
        """The realized split's choice law must equal the factored
        fractions — the sharding invariance proof rests on it."""
        prices = [4.0, 12.0, 27.0]
        accept, consider = logit_router.fractions(prices)
        arrived = 2_000_000
        considered, accepted = logit_router.split(
            arrived, prices, np.random.default_rng(6)
        )
        np.testing.assert_array_equal(considered, accepted)
        np.testing.assert_allclose(accepted / arrived, accept, atol=5e-4)
        assert consider == pytest.approx(list(accept))
