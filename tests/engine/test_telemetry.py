"""Telemetry collection and serialization.

The collector's contract: one entry per tick across every series, campaign
records in departure order, per-tick deltas (cache, adaptive solves) that
survive serialization — so a telemetry object restored mid-run keeps
recording where it left off — and a bit-exact JSON round trip.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import MarketplaceEngine, Telemetry, generate_workload
from repro.engine.telemetry import SERIES_FIELDS, TELEMETRY_VERSION
from repro.market.acceptance import paper_acceptance_model
from repro.sim.stream import SharedArrivalStream

NUM_INTERVALS = 30


@pytest.fixture
def engine() -> MarketplaceEngine:
    means = 700.0 + 200.0 * np.sin(np.linspace(0.0, 2.5 * np.pi, NUM_INTERVALS))
    return MarketplaceEngine(
        SharedArrivalStream(means), paper_acceptance_model(), planning="stationary"
    )


def drive(engine: MarketplaceEngine, telemetry: Telemetry, ticks=None) -> None:
    core = engine.core if engine.core is not None else engine.start(seed=2)
    n = 0
    while not core.done and (ticks is None or n < ticks):
        report = core.tick()
        telemetry.record_tick(core, report)
        n += 1


class TestCollection:
    def test_one_entry_per_tick_in_every_series(self, engine):
        engine.submit(generate_workload(8, NUM_INTERVALS, seed=1))
        telemetry = Telemetry()
        drive(engine, telemetry)
        assert telemetry.num_ticks > 0
        for key in SERIES_FIELDS:
            assert len(telemetry.series[key]) == telemetry.num_ticks
        # Every campaign left exactly once.
        assert len(telemetry.campaigns) == 8
        assert telemetry.peak_live == max(telemetry.series["num_live"])

    def test_series_totals_match_engine_result(self, engine):
        engine.submit(generate_workload(8, NUM_INTERVALS, seed=1))
        telemetry = Telemetry()
        drive(engine, telemetry)
        result = engine.core.result()
        assert sum(telemetry.series["arrived"]) == result.total_arrivals
        assert sum(telemetry.series["accepted"]) == result.total_accepted
        assert sum(telemetry.series["considered"]) == result.total_considered
        assert sum(telemetry.series["retired"]) == result.num_campaigns
        # Per-tick cache deltas add up to the session totals.
        assert sum(telemetry.series["cache_hits"]) == result.cache_stats.hits
        assert sum(telemetry.series["cache_misses"]) == result.cache_stats.misses

    def test_adaptive_solves_counted_per_tick(self, engine):
        engine.submit(generate_workload(
            10, NUM_INTERVALS, seed=1, adaptive_fraction=1.0, budget_fraction=0.0
        ))
        telemetry = Telemetry()
        drive(engine, telemetry)
        adaptive_total = sum(
            r.num_solves for r in telemetry.campaigns if r.adaptive
        )
        assert adaptive_total > 0
        assert sum(telemetry.series["repricer_solves"]) == adaptive_total

    def test_idle_ticks_recorded(self, engine):
        engine.submit(generate_workload(4, NUM_INTERVALS, seed=1,
                                        submit_waves=1))
        # Force a late-submitting campaign so the clock idles to it.
        from repro.engine import CampaignSpec

        engine.submit(CampaignSpec(
            campaign_id="late", kind="deadline", num_tasks=5,
            submit_interval=NUM_INTERVALS - 4, horizon_intervals=4,
        ))
        telemetry = Telemetry()
        drive(engine, telemetry)
        assert any(telemetry.series["idle"])
        # Idle ticks report no arrivals and no live campaigns.
        for idle, arrived, live in zip(
            telemetry.series["idle"],
            telemetry.series["arrived"],
            telemetry.series["num_live"],
        ):
            if idle:
                assert arrived == 0 and live == 0


class TestSerialization:
    def test_json_round_trip_is_bit_exact(self, engine):
        engine.submit(generate_workload(8, NUM_INTERVALS, seed=1))
        telemetry = Telemetry()
        drive(engine, telemetry)
        clone = Telemetry.from_dict(telemetry.to_dict())
        assert clone == telemetry
        import json

        reparsed = Telemetry.from_dict(json.loads(telemetry.to_json()))
        assert reparsed == telemetry

    def test_save_load(self, engine, tmp_path):
        engine.submit(generate_workload(6, NUM_INTERVALS, seed=1))
        telemetry = Telemetry()
        drive(engine, telemetry)
        path = telemetry.save(tmp_path / "telemetry.json")
        assert Telemetry.load(path) == telemetry

    def test_resumed_collector_continues_deltas(self, engine):
        """Serialize mid-run, keep recording on the clone: identical to
        never having serialized (the delta baselines travel along)."""
        engine.submit(generate_workload(8, NUM_INTERVALS, seed=1))
        whole = Telemetry()
        half = Telemetry()
        core = engine.start(seed=2)
        n = 0
        while not core.done:
            report = core.tick()
            whole.record_tick(core, report)
            if n < 7:
                half.record_tick(core, report)
            elif n == 7:
                half = Telemetry.from_dict(half.to_dict())  # simulate resume
                half.record_tick(core, report)
            else:
                half.record_tick(core, report)
            n += 1
        assert half == whole

    def test_version_gate(self):
        with pytest.raises(ValueError, match="version"):
            Telemetry.from_dict({"version": TELEMETRY_VERSION + 1})

    def test_summary_mentions_key_counters(self, engine):
        engine.submit(generate_workload(6, NUM_INTERVALS, seed=1))
        telemetry = Telemetry()
        drive(engine, telemetry)
        text = telemetry.summary()
        assert "ticks recorded" in text
        assert "cache" in text
