"""Process-executor failure semantics: typed errors, no hangs, clean resume.

The matrix suite proves the happy path is bit-identical; this file proves
the *unhappy* path is survivable.  The contract
(:mod:`repro.engine.procpool`):

* a worker process dying mid-run (``kill -9``, OOM, segfault) surfaces as
  a typed :class:`~repro.engine.EngineError` naming the shard — never a
  hang waiting on a dead pipe and never a bare ``BrokenPipeError``;
* a handler exception inside a worker is reported back without killing
  the worker, so a poisoned message is recoverable;
* a checkpoint bundle saved before the crash restores and finishes
  bit-identically to the uninterrupted run — the documented recovery
  path for a lost session;
* teardown is idempotent and safe whatever state the workers are in.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import signal
import time

import numpy as np
import pytest

from repro.engine import (
    EngineError,
    ShardedEngine,
    generate_workload,
    restore_engine,
    save_checkpoint,
)
from repro.engine.procpool import START_METHOD_ENV, _ProcessBackend
from repro.market.acceptance import paper_acceptance_model
from repro.sim.stream import SharedArrivalStream

SEED = 11
NUM_INTERVALS = 40


def make_stream() -> SharedArrivalStream:
    means = 900.0 + 300.0 * np.sin(np.linspace(0.0, 3.0 * np.pi, NUM_INTERVALS))
    return SharedArrivalStream(means)


def make_engine(num_shards: int = 3) -> ShardedEngine:
    engine = ShardedEngine(
        make_stream(), paper_acceptance_model(), num_shards=num_shards,
        executor="process", planning="stationary",
    )
    engine.submit(
        generate_workload(12, NUM_INTERVALS, seed=7, adaptive_fraction=0.25)
    )
    return engine


def outcome_key(result):
    return [
        (
            o.spec.campaign_id,
            o.completed,
            o.remaining,
            o.total_cost,
            o.penalty,
            o.finished_interval,
            o.cancelled,
            o.num_solves,
        )
        for o in sorted(result.outcomes, key=lambda o: o.spec.campaign_id)
    ]


def tick_until_workers(core) -> _ProcessBackend:
    """Advance until the lazy worker pool exists; return the backend."""
    backend = core.backend
    assert isinstance(backend, _ProcessBackend)
    while backend._workers is None and not core.done:
        core.tick()
    assert backend._workers is not None, "workload never went live"
    return backend


class TestWorkerDeath:
    def test_sigkill_mid_run_raises_typed_engine_error(self):
        engine = make_engine()
        try:
            core = engine.start(seed=SEED)
            backend = tick_until_workers(core)
            victim, _conn = backend._workers[1]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10)
            # The next ticks must fail fast with the typed error — the
            # poll/is_alive loop turns the dead pipe into a diagnosis, so
            # this raises rather than blocking on recv forever.
            with pytest.raises(EngineError, match="shard worker 1"):
                for _ in range(5):
                    core.tick()
        finally:
            engine.close()

    def test_engine_error_names_the_recovery_path(self):
        engine = make_engine(num_shards=2)
        try:
            core = engine.start(seed=SEED)
            backend = tick_until_workers(core)
            victim, _conn = backend._workers[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=10)
            with pytest.raises(EngineError, match="restore the latest checkpoint"):
                for _ in range(5):
                    core.tick()
        finally:
            engine.close()

    def test_engine_error_is_a_runtime_error(self):
        # Callers that guard engine loops with ``except RuntimeError``
        # (the serving gateway) catch worker deaths without importing the
        # process module.
        assert issubclass(EngineError, RuntimeError)

    def test_checkpoint_saved_before_kill_resumes_bit_identically(self, tmp_path):
        reference = make_engine()
        uninterrupted = reference.run(seed=SEED)

        engine = make_engine()
        core = engine.start(seed=SEED)
        backend = tick_until_workers(core)
        for _ in range(6):
            core.tick()
        save_checkpoint(engine, tmp_path / "pre-crash")
        victim, _conn = backend._workers[2]
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=10)
        with pytest.raises(EngineError):
            for _ in range(5):
                core.tick()
        engine.close()

        restored = restore_engine(tmp_path / "pre-crash")
        try:
            resumed = restored.run_to_completion()
        finally:
            restored.close()
        assert outcome_key(resumed) == outcome_key(uninterrupted)
        assert dataclasses.replace(
            resumed, elapsed_seconds=0.0
        ) == dataclasses.replace(uninterrupted, elapsed_seconds=0.0)


class TestWorkerErrors:
    def test_poisoned_message_reports_without_killing_the_worker(self):
        engine = make_engine(num_shards=2)
        try:
            core = engine.start(seed=SEED)
            backend = tick_until_workers(core)
            with pytest.raises(EngineError, match="unknown worker message"):
                backend._request(0, "frobnicate", None)
            proc, _conn = backend._workers[0]
            assert proc.is_alive()
            core.tick()  # the session keeps serving after the bad message
        finally:
            engine.close()


class TestLifecycle:
    def test_close_is_idempotent(self):
        engine = make_engine(num_shards=2)
        core = engine.start(seed=SEED)
        tick_until_workers(core)
        engine.close()
        engine.close()

    def test_backend_apis_safe_before_workers_start(self):
        from repro.engine import LogitRouter

        backend = _ProcessBackend(
            make_stream(), LogitRouter(paper_acceptance_model()),
            num_shards=2, seed=SEED,
        )
        assert backend.cancel("nobody") is None
        assert backend.live_stats() == []
        assert backend.num_live() == 0
        exported, rng_state = backend.export_live()
        assert exported == []
        assert rng_state["bit_generator"]
        backend.close()  # nothing started: a no-op, not an error

    def test_process_pool_instance_still_rejected(self):
        import concurrent.futures

        with pytest.raises(ValueError, match="executor='process'"):
            ShardedEngine(
                make_stream(),
                paper_acceptance_model(),
                num_shards=2,
                executor=concurrent.futures.ProcessPoolExecutor(max_workers=1),
            )

    def test_spawn_start_method_matches_serial(self, monkeypatch):
        if "spawn" not in __import__("multiprocessing").get_all_start_methods():
            pytest.skip("spawn start method unavailable")
        monkeypatch.setenv(START_METHOD_ENV, "spawn")
        spawned = make_engine(num_shards=2).run(seed=SEED)
        monkeypatch.delenv(START_METHOD_ENV)
        serial = ShardedEngine(
            make_stream(), paper_acceptance_model(), num_shards=2,
            executor="serial", planning="stationary",
        )
        serial.submit(
            generate_workload(12, NUM_INTERVALS, seed=7, adaptive_fraction=0.25)
        )
        assert outcome_key(spawned) == outcome_key(serial.run(seed=SEED))


# ----------------------------------------------------------------------
# close() escalation: a wedged worker can never hang teardown
# ----------------------------------------------------------------------
def _wedged_main(conn) -> None:
    """The worst-case worker: SIGTERM masked, never reads the pipe.

    Models a shard stuck in a native kernel that installed its own
    signal disposition — ``close()`` must escalate to SIGKILL.
    """
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    while True:
        time.sleep(0.02)


def _deaf_main(conn) -> None:
    """A worker that ignores the protocol but still honors SIGTERM."""
    while True:
        time.sleep(0.02)


def make_backend_with(target) -> tuple[_ProcessBackend, object]:
    """A backend whose single 'worker' is a stub running ``target``."""
    from repro.engine import LogitRouter

    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("fork start method unavailable")
    ctx = multiprocessing.get_context("fork")
    parent_conn, child_conn = ctx.Pipe()
    proc = ctx.Process(target=target, args=(child_conn,), daemon=True)
    proc.start()
    child_conn.close()
    backend = _ProcessBackend(
        make_stream(), LogitRouter(paper_acceptance_model()),
        num_shards=1, seed=SEED,
    )
    backend._workers = [(proc, parent_conn)]
    return backend, proc


class TestWedgedWorkerClose:
    def test_sigterm_masked_worker_cannot_hang_close(self, monkeypatch):
        from repro.engine import procpool

        monkeypatch.setattr(procpool, "_CLOSE_GRACE_SECONDS", 0.3)
        backend, proc = make_backend_with(_wedged_main)
        started = time.monotonic()
        backend.close()
        elapsed = time.monotonic() - started
        proc.join(timeout=5.0)  # reap; close() already joined it
        assert not proc.is_alive(), "close() left the wedged worker running"
        assert elapsed < 5.0, f"close() took {elapsed:.1f}s — unbounded join?"
        assert proc.exitcode == -signal.SIGKILL

    def test_unresponsive_worker_dies_at_sigterm_without_sigkill(
        self, monkeypatch
    ):
        from repro.engine import procpool

        monkeypatch.setattr(procpool, "_CLOSE_GRACE_SECONDS", 0.3)
        backend, proc = make_backend_with(_deaf_main)
        backend.close()
        proc.join(timeout=5.0)
        assert not proc.is_alive()
        assert proc.exitcode == -signal.SIGTERM
