"""Tests for the canonical problem signatures the policy cache keys on."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.budget import budget_signature
from repro.market.acceptance import (
    EmpiricalAcceptance,
    LogitAcceptance,
    paper_acceptance_model,
)
from tests.conftest import make_problem


class TestAcceptanceSignatures:
    def test_logit_equal_params_equal_signature(self):
        assert LogitAcceptance(15, -0.39, 2000).signature() == \
            LogitAcceptance(15.0, -0.39, 2000.0).signature()

    def test_logit_differs_on_any_param(self):
        base = LogitAcceptance(15, -0.39, 2000).signature()
        assert LogitAcceptance(16, -0.39, 2000).signature() != base
        assert LogitAcceptance(15, -0.40, 2000).signature() != base
        assert LogitAcceptance(15, -0.39, 1999).signature() != base

    def test_empirical_signature_covers_table(self):
        a = EmpiricalAcceptance({5.0: 0.01, 10.0: 0.02})
        b = EmpiricalAcceptance({5.0: 0.01, 10.0: 0.02})
        c = EmpiricalAcceptance({5.0: 0.01, 10.0: 0.03})
        assert a.signature() == b.signature()
        assert a.signature() != c.signature()

    def test_cross_model_signatures_differ(self):
        logit = paper_acceptance_model()
        table = EmpiricalAcceptance(
            {c: logit.probability(c) for c in (1.0, 10.0, 20.0)}
        )
        assert logit.signature() != table.signature()


class TestDeadlineSignature:
    def test_identical_problems_share_signature(self):
        assert make_problem().signature() == make_problem().signature()

    def test_signature_is_hashable(self):
        assert isinstance(hash(make_problem().signature()), int)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_tasks": 6},
            {"arrival_means": np.array([300.0, 450.0, 201.0])},
            {"s": 16.0},
            {"max_price": 13.0},
            {"penalty": 31.0},
            {"existence": 1.0},
            {"truncation_eps": None},
        ],
    )
    def test_signature_differs_on_each_field(self, kwargs):
        assert make_problem(**kwargs).signature() != make_problem().signature()

    def test_rounding_absorbs_float_noise(self):
        means = np.array([300.0, 450.0, 200.0])
        jitter = means + 1e-12
        assert (
            make_problem(arrival_means=means).signature()
            == make_problem(arrival_means=jitter).signature()
        )


class TestBudgetSignature:
    def test_equal_instances_share_signature(self, paper_acceptance):
        grid = np.arange(1.0, 31.0)
        assert budget_signature(50, 600.0, paper_acceptance, grid) == \
            budget_signature(50, 600.0, paper_acceptance, grid.copy())

    def test_differs_on_each_field(self, paper_acceptance):
        grid = np.arange(1.0, 31.0)
        base = budget_signature(50, 600.0, paper_acceptance, grid)
        assert budget_signature(51, 600.0, paper_acceptance, grid) != base
        assert budget_signature(50, 601.0, paper_acceptance, grid) != base
        assert budget_signature(50, 600.0, paper_acceptance, grid[:-1]) != base
        other = paper_acceptance.with_params(s=16.0)
        assert budget_signature(50, 600.0, other, grid) != base

    def test_budget_never_collides_with_deadline(self, paper_acceptance):
        problem = make_problem()
        sig = budget_signature(
            problem.num_tasks, 600.0, paper_acceptance, problem.price_grid
        )
        assert sig != problem.signature()
        assert sig[0] == "budget" and problem.signature()[0] == "deadline"
