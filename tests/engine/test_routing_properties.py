"""Property-based routing invariants (hypothesis).

The scenario layer leans on two router guarantees for its determinism
contract, so they are asserted for *arbitrary* price vectors and campaign
counts rather than hand-picked cases:

* ``fractions`` is a probability split of one arriving worker: fractions
  are non-negative, ``accept <= consider`` elementwise, and the total
  probability mass — campaign choices plus the implied walk-away — sums
  to exactly 1 (LogitRouter: choice shares + M-mass; UniformRouter:
  uniform attention).
* ``split`` conserves arrivals: campaign-routed workers never exceed the
  realized arrival count, ``accepted <= considered`` elementwise, and the
  realized split agrees with ``fractions`` in expectation structure
  (UniformRouter routes *every* arrival to exactly one campaign).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.engine import LogitRouter, UniformRouter
from repro.market.acceptance import paper_acceptance_model

MODEL = paper_acceptance_model()

#: Arbitrary non-negative posted rewards, any live-campaign count 0..40.
prices = st.lists(
    st.floats(min_value=0.0, max_value=500.0,
              allow_nan=False, allow_infinity=False),
    min_size=0,
    max_size=40,
)
arrivals = st.integers(min_value=0, max_value=20_000)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def total_mass(router, price_vec):
    """Campaign probability mass plus the implied walk-away mass."""
    accept, consider = router.fractions(price_vec)
    if isinstance(router, LogitRouter):
        weights = np.exp(np.clip(np.asarray(price_vec) / router.model.s
                                 - router.model.b, None, 700.0))
        walk = router.model.m / (weights.sum() + router.model.m)
        return consider.sum() + walk
    # UniformRouter: every worker considers exactly one campaign (when any
    # is live), so the attention fractions alone carry the whole mass.
    return consider.sum() if len(price_vec) else 1.0


@settings(max_examples=200, deadline=None)
@given(price_vec=prices)
def test_fractions_form_a_probability_split(price_vec):
    for router in (LogitRouter(MODEL), UniformRouter(MODEL)):
        accept, consider = router.fractions(price_vec)
        assert accept.shape == consider.shape == (len(price_vec),)
        assert np.all(accept >= 0.0) and np.all(consider >= 0.0)
        assert np.all(accept <= consider + 1e-12)
        assert consider.sum() <= 1.0 + 1e-9
        assert np.isclose(total_mass(router, price_vec), 1.0, atol=1e-9)


@settings(max_examples=200, deadline=None)
@given(price_vec=prices, arrived=arrivals, seed=seeds)
def test_split_conserves_arrivals(price_vec, arrived, seed):
    for router in (LogitRouter(MODEL), UniformRouter(MODEL)):
        rng = np.random.default_rng(seed)
        considered, accepted = router.split(arrived, price_vec, rng)
        assert considered.shape == accepted.shape == (len(price_vec),)
        assert np.all(accepted >= 0) and np.all(considered >= 0)
        assert np.all(accepted <= considered)
        assert considered.sum() <= arrived
        if isinstance(router, UniformRouter) and len(price_vec) and arrived:
            # Uniform attention routes every arrival to exactly one campaign.
            assert considered.sum() == arrived


@settings(max_examples=100, deadline=None)
@given(price_vec=prices, arrived=arrivals, seed=seeds)
def test_split_is_deterministic_under_a_seed(price_vec, arrived, seed):
    for router in (LogitRouter(MODEL), UniformRouter(MODEL)):
        a = router.split(arrived, price_vec, np.random.default_rng(seed))
        b = router.split(arrived, price_vec, np.random.default_rng(seed))
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])


@settings(max_examples=100, deadline=None)
@given(price_vec=prices)
def test_logit_and_uniform_fractions_agree_on_edge_shapes(price_vec):
    """Empty marketplaces and single campaigns degrade gracefully."""
    logit, uniform = LogitRouter(MODEL), UniformRouter(MODEL)
    if not price_vec:
        for router in (logit, uniform):
            accept, consider = router.fractions(price_vec)
            assert accept.size == 0 and consider.size == 0
        return
    single = [price_vec[0]]
    accept, _ = logit.fractions(single)
    # One live campaign: the logit share reduces to the paper's p(c).
    assert np.isclose(accept[0], MODEL.probability(single[0]), atol=1e-12)
