"""Streaming mode is a memory optimization, never a behavior change.

Contracts under test:

* A run fed by ``submit_source`` is **bit-identical** to submitting
  ``list(source)`` up front: same outcomes, same aggregate, same chained
  checksum, same telemetry-visible counters — pooled or sharded, keeping
  or streaming, with or without a JSONL spill.
* Cancelling a campaign the source has not materialized yet drops it
  exactly like cancelling a materialized pending spec.
* ``EngineResult``'s summary statistics are O(1) reads off a carried
  ``OutcomeAggregate`` — streaming results answer them with zero
  materialized outcomes.
* Checkpoint bundles persist the source cursor + aggregate + spill
  offset: a streamed run killed mid-flight resumes bit-identically.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.engine import (
    CampaignSpec,
    DEADLINE,
    EngineResult,
    ListSource,
    MarketplaceEngine,
    OutcomeAggregate,
    ShardedEngine,
    StreamedWorkload,
    generate_workload,
    replay_outcomes,
    restore_engine,
    save_checkpoint,
)
from repro.market.acceptance import paper_acceptance_model
from repro.sim.stream import SharedArrivalStream


def make_stream(n: int = 48) -> SharedArrivalStream:
    means = 900.0 + 400.0 * np.sin(np.linspace(0.0, 4.0 * np.pi, n))
    return SharedArrivalStream(means)


def make_engine(sharded: bool = False, n: int = 48, **kwargs):
    stream = make_stream(n)
    if sharded:
        return ShardedEngine(
            stream, paper_acceptance_model(), planning="stationary",
            executor="serial", **kwargs,
        )
    return MarketplaceEngine(
        stream, paper_acceptance_model(), planning="stationary", **kwargs
    )


def make_source(n: int = 40, seed: int = 13) -> StreamedWorkload:
    return StreamedWorkload(
        n, 48, seed=seed, campaigns_per_wave=8, adaptive_fraction=0.3
    )


def strip_timing(result: EngineResult) -> EngineResult:
    return dataclasses.replace(result, elapsed_seconds=0.0)


SHARDED = pytest.mark.parametrize(
    "sharded", [False, True], ids=["market", "sharded"]
)


class TestStreamingEqualsMaterialized:
    @SHARDED
    def test_source_run_equals_list_run(self, sharded):
        source = make_source()
        materialized = make_engine(sharded)
        materialized.submit(list(source))
        expected = materialized.run(seed=5)

        streamed = make_engine(sharded)
        streamed.submit_source(make_source())
        got = streamed.run(seed=5)

        assert strip_timing(got) == strip_timing(expected)
        assert got.checksum == expected.checksum

    @SHARDED
    def test_streaming_sink_matches_keeping_sink(self, sharded, tmp_path):
        materialized = make_engine(sharded)
        materialized.submit(list(make_source()))
        expected = materialized.run(seed=5)

        spill = tmp_path / "outcomes.jsonl"
        streamed = make_engine(sharded)
        streamed.submit_source(make_source())
        got = streamed.run(seed=5, keep_outcomes=False, outcomes_path=spill)

        assert got.outcomes == ()  # nothing materialized...
        assert got.checksum == expected.checksum  # ...yet nothing lost
        assert got.num_campaigns == expected.num_campaigns
        assert got.total_cost == pytest.approx(expected.total_cost)
        assert got.completion_rate == pytest.approx(expected.completion_rate)
        assert strip_timing(got).summary() == strip_timing(expected).summary()
        # The spill carries full fidelity: replay reconstructs the exact
        # retirement stream the materialized run kept in memory.
        assert list(replay_outcomes(spill)) == list(expected.outcomes)

    def test_list_source_equals_plain_submit(self):
        specs = generate_workload(24, 48, seed=21, adaptive_fraction=0.3)
        plain = make_engine()
        plain.submit(specs)
        expected = plain.run(seed=7)

        sourced = make_engine()
        sourced.submit_source(ListSource(specs))
        got = sourced.run(seed=7)
        assert strip_timing(got) == strip_timing(expected)

    def test_source_merges_with_static_submissions(self):
        specs = generate_workload(16, 48, seed=3)
        source = make_source(24, seed=6)

        together = make_engine()
        together.submit(specs + list(source))
        expected = together.run(seed=9)

        mixed = make_engine()
        mixed.submit(specs)
        mixed.submit_source(make_source(24, seed=6))
        got = mixed.run(seed=9)
        assert strip_timing(got) == strip_timing(expected)

    def test_mid_run_submit_with_source_attached(self):
        late = CampaignSpec(
            campaign_id="late-0", kind=DEADLINE, num_tasks=10,
            submit_interval=30, horizon_intervals=12, max_price=25,
        )
        upfront = make_engine()
        upfront.submit(list(make_source(20)) + [late])
        expected = upfront.run(seed=4)

        streamed = make_engine()
        streamed.submit_source(make_source(20))
        core = streamed.start(seed=4)
        for _ in range(10):
            core.tick()
        streamed.submit([late])
        result = core.run_to_completion()
        assert result.checksum == expected.checksum


class TestStreamedCancellation:
    def test_cancel_unmaterialized_campaign(self):
        source = make_source(30)
        victim = list(source)[-1].campaign_id  # last wave: far future

        materialized = make_engine()
        materialized.submit(list(source))
        m_core = materialized.start(seed=2)
        m_core.tick()
        assert materialized.cancel(victim) is None
        expected = m_core.run_to_completion()

        streamed = make_engine()
        streamed.submit_source(make_source(30))
        s_core = streamed.start(seed=2)
        s_core.tick()
        # The victim does not exist yet — no spec has been built for it.
        assert streamed.cancel(victim) is None
        got = s_core.run_to_completion()

        assert strip_timing(got) == strip_timing(expected)
        assert got.num_campaigns == 29
        assert all(o.spec.campaign_id != victim for o in got.outcomes)

    def test_cancel_unknown_id_tombstones_while_streaming(self):
        # While the source is still producing, "unknown" and "not yet
        # materialized" are indistinguishable — the id is tombstoned and
        # the run is otherwise unaffected.  Once the source is exhausted
        # the strict KeyError contract returns.
        streamed = make_engine()
        streamed.submit_source(make_source(10))
        core = streamed.start(seed=2)
        assert streamed.cancel("never-submitted") is None
        result = core.run_to_completion()
        assert result.num_campaigns == 10

        exhausted = make_engine()
        exhausted.submit_source(make_source(10))
        core = exhausted.start(seed=2)
        while not core.done:
            core.tick()
        with pytest.raises(KeyError):
            exhausted.cancel("never-submitted")

    def test_cancel_live_campaign_from_source(self):
        source = make_source(10)
        first = next(iter(source)).campaign_id
        streamed = make_engine()
        streamed.submit_source(make_source(10))
        core = streamed.start(seed=2)
        while core.num_live == 0:
            core.tick()
        outcome = streamed.cancel(first)
        assert outcome is not None and outcome.cancelled
        result = core.run_to_completion()
        assert result.num_campaigns == 10
        assert result.aggregate.num_cancelled == 1


class TestConstantTimeResults:
    def test_streaming_result_answers_without_outcomes(self):
        streamed = make_engine()
        streamed.submit_source(make_source(12))
        result = streamed.run(seed=3, keep_outcomes=False)
        assert result.outcomes == ()
        assert result.aggregate is not None
        assert result.num_campaigns == 12
        assert 0.0 < result.completion_rate <= 1.0
        assert len(result.checksum) == 64

    def test_materialized_result_folds_lazily_exactly_once(self):
        engine = make_engine()
        engine.submit(generate_workload(8, 48, seed=1))
        result = engine.run(seed=1)
        first = result.aggregate
        _ = result.num_campaigns
        assert result.aggregate is (first or result.aggregate)
        again = result.aggregate
        _ = result.total_cost
        assert result.aggregate is again  # cached, not refolded per read
        assert result.aggregate == OutcomeAggregate.from_outcomes(
            result.outcomes
        )

    def test_pending_id_index_backs_cancel(self):
        # Cancel-of-pending is an id-set discard, not a list scan: the
        # husk stays in _pending but drops out of the live id index.
        engine = make_engine()
        specs = generate_workload(12, 48, seed=2)
        engine.submit(specs)
        core = engine.start(seed=2)
        victim = max(specs, key=lambda s: s.submit_interval)
        before = core.num_pending
        assert engine.cancel(victim.campaign_id) is None
        assert core.num_pending == before - 1
        assert victim.campaign_id not in core._pending_ids
        assert any(
            s.campaign_id == victim.campaign_id for s in core._pending
        )  # the husk is skipped at drain time, not spliced out
        result = core.run_to_completion()
        assert result.num_campaigns == 11


class TestStreamingCheckpoint:
    @pytest.mark.parametrize("keep", [True, False], ids=["keep", "stream"])
    def test_streamed_run_resumes_bit_identically(self, keep, tmp_path):
        baseline = make_engine()
        baseline.submit_source(make_source(30))
        expected = baseline.run(seed=8, keep_outcomes=keep)

        spill = tmp_path / "spill.jsonl" if not keep else None
        engine = make_engine()
        engine.submit_source(make_source(30))
        core = engine.start(seed=8, keep_outcomes=keep, outcomes_path=spill)
        for _ in range(17):
            core.tick()
        bundle = tmp_path / "bundle"
        save_checkpoint(engine, bundle)
        engine.close()

        revived = restore_engine(bundle)
        result = revived.core.run_to_completion()
        revived.close()  # flushes the spill
        assert result.checksum == expected.checksum
        assert result.aggregate == expected.aggregate
        if not keep:
            materialized = make_engine()
            materialized.submit_source(make_source(30))
            full = materialized.run(seed=8)
            assert list(replay_outcomes(spill)) == list(full.outcomes)

    def test_bundle_stores_descriptor_not_specs(self, tmp_path):
        engine = make_engine()
        engine.submit_source(make_source(30))
        core = engine.start(seed=8)
        for _ in range(10):
            core.tick()
        bundle = tmp_path / "bundle"
        save_checkpoint(engine, bundle)
        engine.close()
        manifest = json.loads((bundle / "manifest.json").read_text())
        assert manifest["version"] == 2
        assert manifest["source"]["spec"]["kind"] == "streamed"
        assert manifest["source"]["cursor"] >= core.num_retired
        # Pending campaigns the source has not yielded stay unmaterialized.
        assert len(manifest["specs"]) < 30

    def test_v1_bundle_still_loads(self, tmp_path):
        # A v2 bundle of a fully-materialized run, down-converted to the
        # exact manifest shape version 1 wrote (no source/sink/aggregate
        # keys), must restore and finish bit-identically.
        specs = generate_workload(16, 48, seed=21, adaptive_fraction=0.3)
        baseline = make_engine()
        baseline.submit(specs)
        expected = baseline.run(seed=5)

        engine = make_engine()
        engine.submit(specs)
        core = engine.start(seed=5)
        for _ in range(13):
            core.tick()
        bundle = tmp_path / "bundle"
        save_checkpoint(engine, bundle)
        engine.close()

        path = bundle / "manifest.json"
        manifest = json.loads(path.read_text())
        manifest["version"] = 1
        for key in ("source", "dropped", "sink", "aggregate"):
            manifest.pop(key, None)
        path.write_text(json.dumps(manifest))

        revived = restore_engine(bundle)
        result = revived.core.run_to_completion()
        assert strip_timing(result) == strip_timing(expected)

    def test_source_attach_rules(self):
        engine = make_engine()
        engine.submit_source(make_source(10))
        with pytest.raises(RuntimeError):
            engine.submit_source(make_source(10))  # one source per engine
        engine2 = make_engine()
        engine2.submit(generate_workload(4, 48, seed=0))
        engine2.start(seed=0)
        with pytest.raises(RuntimeError):
            engine2.submit_source(make_source(10))  # not mid-session
