"""Shard determinism and the factored arrival split.

The contract under test: sharding is a pure throughput lever.  The same
seed must produce identical per-campaign outcomes for one shard, many
shards, serial or threaded execution — because every random decision is
keyed by campaign, not by shard layout.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    CampaignSpec,
    LogitRouter,
    PolicyCache,
    ShardedEngine,
    UniformRouter,
    generate_workload,
    shard_of,
)
from repro.market.acceptance import paper_acceptance_model
from repro.sim.stream import SharedArrivalStream


@pytest.fixture
def stream() -> SharedArrivalStream:
    means = 1400.0 + 500.0 * np.sin(np.linspace(0.0, 4.0 * np.pi, 72))
    return SharedArrivalStream(means)


def run_sharded(stream, num_shards, executor="serial", router=None, seed=5):
    engine = ShardedEngine(
        stream,
        paper_acceptance_model(),
        num_shards=num_shards,
        router=router,
        cache=PolicyCache(max_entries=256),
        planning="stationary",
        executor=executor,
    )
    engine.submit(generate_workload(36, stream.num_intervals, seed=17))
    return engine.run(seed=seed)


def outcome_key(result):
    return [
        (
            o.spec.campaign_id,
            o.completed,
            o.remaining,
            round(o.total_cost, 9),
            round(o.penalty, 9),
            o.finished_interval,
        )
        for o in result.outcomes
    ]


class TestShardDeterminism:
    def test_one_vs_many_shards_identical_outcomes(self, stream):
        one = run_sharded(stream, 1)
        three = run_sharded(stream, 3)
        five = run_sharded(stream, 5)
        assert outcome_key(one) == outcome_key(three) == outcome_key(five)
        assert one.total_completed == three.total_completed
        assert one.total_arrivals == three.total_arrivals == five.total_arrivals
        assert one.total_accepted == three.total_accepted

    def test_executor_choice_never_changes_results(self, stream):
        serial = run_sharded(stream, 4, executor="serial")
        threaded = run_sharded(stream, 4, executor="thread")
        assert outcome_key(serial) == outcome_key(threaded)

    def test_same_seed_reproducible(self, stream):
        assert outcome_key(run_sharded(stream, 2)) == outcome_key(
            run_sharded(stream, 2)
        )

    def test_different_seeds_differ(self, stream):
        assert outcome_key(run_sharded(stream, 2, seed=5)) != outcome_key(
            run_sharded(stream, 2, seed=6)
        )

    def test_uniform_router_is_also_shard_invariant(self, stream):
        router = UniformRouter(paper_acceptance_model())
        one = run_sharded(stream, 1, router=router)
        four = run_sharded(stream, 4, router=router)
        assert outcome_key(one) == outcome_key(four)
        # Uniform attention considers more workers than it converts.
        assert one.total_considered > one.total_accepted

    def test_result_reports_shard_count(self, stream):
        result = run_sharded(stream, 4)
        assert result.num_shards == 4
        assert "across 4 shards" in result.summary()


class TestShardAssignment:
    def test_stable_and_in_range(self):
        ids = [f"camp-{i}" for i in range(200)]
        first = [shard_of(cid, 7) for cid in ids]
        assert first == [shard_of(cid, 7) for cid in ids]
        assert set(first) <= set(range(7))
        assert len(set(first)) > 1  # actually spreads

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError, match="num_shards"):
            shard_of("x", 0)


class TestValidation:
    def test_submit_checks_match_the_unsharded_engine(self, stream):
        engine = ShardedEngine(stream, paper_acceptance_model(), num_shards=2)
        spec = CampaignSpec(
            campaign_id="dl-0",
            kind="deadline",
            num_tasks=10,
            submit_interval=0,
            horizon_intervals=12,
        )
        engine.submit(spec)
        with pytest.raises(ValueError, match="duplicate"):
            engine.submit(spec)
        with pytest.raises(ValueError, match="beyond"):
            engine.submit(
                CampaignSpec(
                    campaign_id="dl-late",
                    kind="deadline",
                    num_tasks=10,
                    submit_interval=70,
                    horizon_intervals=12,
                )
            )

    def test_bad_constructor_arguments(self, stream):
        acceptance = paper_acceptance_model()
        with pytest.raises(ValueError, match="num_shards"):
            ShardedEngine(stream, acceptance, num_shards=0)
        with pytest.raises(ValueError, match="executor"):
            ShardedEngine(stream, acceptance, executor="rocket")
        import concurrent.futures

        with pytest.raises(ValueError, match="process pools"):
            ShardedEngine(
                stream,
                acceptance,
                executor=concurrent.futures.ProcessPoolExecutor(max_workers=1),
            )

    def test_external_executor_instance_accepted(self, stream):
        import concurrent.futures

        with concurrent.futures.ThreadPoolExecutor(max_workers=2) as pool:
            a = run_sharded(stream, 2)
            engine = ShardedEngine(
                stream,
                paper_acceptance_model(),
                num_shards=2,
                cache=PolicyCache(max_entries=256),
                planning="stationary",
                executor=pool,
            )
            engine.submit(generate_workload(36, stream.num_intervals, seed=17))
            b = engine.run(seed=5)
        assert outcome_key(a) == outcome_key(b)


class TestRouterFractions:
    def test_logit_single_campaign_reduces_to_acceptance_probability(self):
        model = paper_acceptance_model()
        router = LogitRouter(model)
        accept, consider = router.fractions([12.0])
        assert accept[0] == pytest.approx(model.probability(12.0))
        assert np.array_equal(accept, consider)

    def test_logit_fractions_leave_walkaway_mass(self):
        router = LogitRouter(paper_acceptance_model())
        accept, _ = router.fractions([5.0, 10.0, 20.0])
        assert np.all(accept > 0)
        assert accept.sum() < 1.0
        assert accept[2] > accept[0]  # higher reward draws more workers

    def test_uniform_fractions(self):
        model = paper_acceptance_model()
        router = UniformRouter(model)
        accept, consider = router.fractions([5.0, 25.0])
        assert consider == pytest.approx([0.5, 0.5])
        assert accept[0] == pytest.approx(0.5 * model.probability(5.0))
        assert np.all(accept <= consider)

    def test_empty_price_vector(self):
        router = LogitRouter(paper_acceptance_model())
        accept, consider = router.fractions([])
        assert accept.size == 0 and consider.size == 0


class TestStreamSplit:
    def test_split_preserves_total_mean(self, stream):
        shards = stream.split(4)
        assert len(shards) == 4
        total = sum(s.arrival_means for s in shards)
        assert np.allclose(total, stream.arrival_means)

    def test_split_validation(self, stream):
        with pytest.raises(ValueError, match="num_shards"):
            stream.split(0)
