"""Property-based streaming equivalence (hypothesis).

The streaming refactor's one contract — materialize-nothing runs are
bit-identical to materialize-everything runs — is asserted here for
*arbitrary* workload shapes rather than hand-picked cases:

* For any ``StreamedWorkload`` (campaign count, seeds, kind mix, wave
  size) and any engine seed, running it through ``submit_source`` with a
  streaming sink yields the same aggregate, the same chained checksum,
  and a spill whose bytes replay to exactly the outcome list the
  materialized run kept in memory.
* Killing the streamed run at an arbitrary tick and resuming it from the
  checkpoint bundle lands on the same fingerprint.
* Driven through a scenario (cancellations included), streaming and
  materialized telemetry serialize identically.
"""

from __future__ import annotations

import hashlib

from hypothesis import HealthCheck, given, settings, strategies as st
import numpy as np
import pytest

from repro.engine import (
    MarketplaceEngine,
    OutcomeAggregate,
    StreamedWorkload,
    replay_outcomes,
    restore_engine,
    save_checkpoint,
)
from repro.market.acceptance import paper_acceptance_model
from repro.scenario import Scenario, ScenarioDriver
from repro.scenario.events import Cancellation
from repro.sim.stream import SharedArrivalStream

N_INTERVALS = 30


def make_engine() -> MarketplaceEngine:
    means = 700.0 + 300.0 * np.sin(np.linspace(0.0, 3.0 * np.pi, N_INTERVALS))
    return MarketplaceEngine(
        SharedArrivalStream(means), paper_acceptance_model(),
        planning="stationary",
    )


workloads = st.builds(
    StreamedWorkload,
    num_campaigns=st.integers(min_value=2, max_value=12),
    num_intervals=st.just(N_INTERVALS),
    seed=st.integers(min_value=0, max_value=2**16),
    budget_fraction=st.sampled_from([0.0, 0.3, 0.7, 1.0]),
    adaptive_fraction=st.sampled_from([0.0, 0.4]),
    campaigns_per_wave=st.integers(min_value=1, max_value=5),
)
engine_seeds = st.integers(min_value=0, max_value=2**16)


def file_sha256(path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


@settings(
    max_examples=12, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(source=workloads, seed=engine_seeds)
def test_streaming_equals_materialized(source, seed, tmp_path):
    materialized = make_engine()
    materialized.submit(list(source))
    expected = materialized.run(seed=seed)

    spill = tmp_path / f"spill-{seed}-{source.seed}.jsonl"
    streamed = make_engine()
    streamed.submit_source(source)
    got = streamed.run(seed=seed, keep_outcomes=False, outcomes_path=spill)

    assert got.outcomes == ()
    assert got.checksum == expected.checksum
    assert got.aggregate == OutcomeAggregate.from_outcomes(expected.outcomes)
    replayed = list(replay_outcomes(spill))
    assert replayed == list(expected.outcomes)
    # The spill bytes themselves are deterministic: a second streamed run
    # writes the identical file.
    again = tmp_path / f"again-{seed}-{source.seed}.jsonl"
    rerun = make_engine()
    rerun.submit_source(source)
    rerun.run(seed=seed, keep_outcomes=False, outcomes_path=again)
    assert file_sha256(again) == file_sha256(spill)
    spill.unlink()
    again.unlink()


@settings(
    max_examples=10, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    source=workloads,
    seed=engine_seeds,
    stop_frac=st.floats(min_value=0.05, max_value=0.95),
)
def test_checkpoint_resume_at_fuzzed_tick(source, seed, stop_frac, tmp_path):
    baseline = make_engine()
    baseline.submit_source(source)
    expected = baseline.run(seed=seed, keep_outcomes=False)

    engine = make_engine()
    engine.submit_source(source)
    core = engine.start(seed=seed, keep_outcomes=False)
    stop_tick = max(1, int(N_INTERVALS * stop_frac))
    while core.clock < stop_tick and not core.done:
        core.tick()
    bundle = tmp_path / f"bundle-{seed}-{source.seed}"
    save_checkpoint(engine, bundle)
    engine.close()

    revived = restore_engine(bundle)
    result = revived.core.run_to_completion()
    revived.close()
    assert result.checksum == expected.checksum
    assert result.aggregate == expected.aggregate


@settings(
    max_examples=8, deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    source=workloads,
    cancel_tick=st.integers(min_value=1, max_value=N_INTERVALS - 1),
    victim_index=st.integers(min_value=0, max_value=11),
)
def test_scenario_telemetry_parity_under_cancellation(
    source, cancel_tick, victim_index, tmp_path
):
    victim = list(source)[victim_index % source.num_campaigns].campaign_id
    scenario = Scenario(
        name="prop-cancel", seed=3,
        events=(Cancellation(tick=cancel_tick, campaign_id=victim),),
    )

    materialized = make_engine()
    materialized.submit(list(source))
    m_driver = ScenarioDriver(materialized, scenario)
    m_driver.start()
    while not m_driver.done:
        m_driver.step()
    m_result = m_driver.core.result()
    materialized.close()

    streamed = make_engine()
    streamed.submit_source(source)
    s_driver = ScenarioDriver(streamed, scenario, keep_outcomes=False)
    s_driver.start()
    while not s_driver.done:
        s_driver.step()
    s_result = s_driver.core.result()
    streamed.close()

    assert s_result.checksum == m_result.checksum
    assert s_result.aggregate == m_result.aggregate
    assert s_driver.telemetry.to_dict() == m_driver.telemetry.to_dict()
