"""The streaming outcome boundary: aggregates, sinks, spill, replay.

Contracts under test:

* ``OutcomeAggregate.fold`` is exactly a left fold: folding outcomes one
  at a time equals ``from_outcomes`` over the same sequence, and every
  statistic matches the materialized-list computation.
* The chained checksum fingerprints the retirement *stream*: same
  outcomes in a different order hash differently, any record perturbation
  hashes differently, and ``to_dict``/``from_dict`` round-trip the digest
  so a resumed run keeps folding the same chain.
* ``OutcomeSink(keep=False)`` retains no outcome objects yet reports the
  same aggregate as a keeping sink fed the same stream.
* Spill files replay bit-identically through ``replay_outcomes``, and
  ``resume_offset`` truncates a dirty tail so checkpoint restore can
  reopen a spill mid-stream without duplicating records.
"""

from __future__ import annotations

import json

import pytest

from repro.engine import (
    CampaignOutcome,
    CampaignSpec,
    DEADLINE,
    BUDGET,
    OutcomeAggregate,
    OutcomeSink,
    outcome_from_record,
    outcome_record,
    replay_outcomes,
)


def make_outcome(i: int, *, cancelled: bool = False) -> CampaignOutcome:
    kind = BUDGET if i % 3 == 0 else DEADLINE
    spec = CampaignSpec(
        campaign_id=f"c{i:03d}",
        kind=kind,
        num_tasks=10 + i,
        submit_interval=i,
        horizon_intervals=8,
        budget=500.0 if kind == BUDGET else None,
        penalty_per_task=0.0 if kind == BUDGET else 25.0,
        max_price=30,
        adaptive=(i % 4 == 0 and kind == DEADLINE),
    )
    return CampaignOutcome(
        spec=spec,
        completed=8 + i,
        remaining=2 if i % 2 else 0,
        total_cost=12.5 * (i + 1),
        penalty=25.0 if (kind == DEADLINE and i % 2) else 0.0,
        finished_interval=None if i % 2 else i + 7,
        cache_hit=(i % 2 == 1),
        num_solves=0 if i % 2 == 1 else 1 + i % 3,
        cancelled=cancelled,
    )


OUTCOMES = [make_outcome(i) for i in range(9)] + [
    make_outcome(9, cancelled=True)
]


class TestOutcomeAggregate:
    def test_fold_matches_from_outcomes(self):
        agg = OutcomeAggregate()
        for o in OUTCOMES:
            agg.fold(o)
        assert agg == OutcomeAggregate.from_outcomes(OUTCOMES)

    def test_statistics_match_materialized_computation(self):
        agg = OutcomeAggregate.from_outcomes(OUTCOMES)
        assert agg.num_campaigns == len(OUTCOMES)
        assert agg.total_completed == sum(o.completed for o in OUTCOMES)
        assert agg.total_remaining == sum(o.remaining for o in OUTCOMES)
        assert agg.total_cost == pytest.approx(
            sum(o.total_cost for o in OUTCOMES)
        )
        assert agg.total_penalty == pytest.approx(
            sum(o.penalty for o in OUTCOMES)
        )
        assert agg.num_deadline == sum(
            1 for o in OUTCOMES if o.spec.kind == DEADLINE
        )
        assert agg.num_budget == sum(
            1 for o in OUTCOMES if o.spec.kind == BUDGET
        )
        assert agg.num_adaptive == sum(1 for o in OUTCOMES if o.spec.adaptive)
        assert agg.num_cancelled == 1
        assert agg.num_cache_hits == sum(1 for o in OUTCOMES if o.cache_hit)
        assert agg.num_finished == sum(1 for o in OUTCOMES if o.finished)
        assert agg.total_solves == sum(o.num_solves for o in OUTCOMES)
        total = agg.total_completed + agg.total_remaining
        assert agg.completion_rate == pytest.approx(agg.total_completed / total)

    def test_empty_aggregate(self):
        agg = OutcomeAggregate()
        assert agg.num_campaigns == 0
        assert agg.completion_rate == 0.0
        assert agg.checksum == ("0" * 64)

    def test_checksum_is_order_sensitive(self):
        fwd = OutcomeAggregate.from_outcomes(OUTCOMES)
        rev = OutcomeAggregate.from_outcomes(list(reversed(OUTCOMES)))
        assert fwd.checksum != rev.checksum
        # Counters, by contrast, are order-free.
        assert fwd.num_campaigns == rev.num_campaigns
        assert fwd.total_cost == pytest.approx(rev.total_cost)

    def test_checksum_detects_perturbation(self):
        import dataclasses

        tweaked = list(OUTCOMES)
        tweaked[3] = dataclasses.replace(tweaked[3], total_cost=0.01)
        assert (
            OutcomeAggregate.from_outcomes(tweaked).checksum
            != OutcomeAggregate.from_outcomes(OUTCOMES).checksum
        )

    def test_dict_round_trip_continues_the_chain(self):
        head, tail = OUTCOMES[:6], OUTCOMES[6:]
        agg = OutcomeAggregate.from_outcomes(head)
        revived = OutcomeAggregate.from_dict(
            json.loads(json.dumps(agg.to_dict()))
        )
        assert revived == agg
        for o in tail:
            agg.fold(o)
            revived.fold(o)
        assert revived.checksum == agg.checksum
        assert revived == OutcomeAggregate.from_outcomes(OUTCOMES)

    def test_copy_is_independent(self):
        agg = OutcomeAggregate.from_outcomes(OUTCOMES[:3])
        dup = agg.copy()
        agg.fold(OUTCOMES[3])
        assert dup == OutcomeAggregate.from_outcomes(OUTCOMES[:3])
        assert dup != agg


class TestOutcomeRecord:
    def test_record_round_trip(self):
        for o in OUTCOMES:
            assert outcome_from_record(outcome_record(o)) == o

    def test_record_without_spec_round_trips_with_external_spec(self):
        o = OUTCOMES[4]
        rec = outcome_record(o, with_spec=False)
        assert "spec" not in rec
        assert outcome_from_record(rec, spec=o.spec) == o

    def test_record_is_json_safe(self):
        for o in OUTCOMES:
            clone = json.loads(json.dumps(outcome_record(o)))
            assert outcome_from_record(clone) == o


class TestOutcomeSink:
    def test_streaming_sink_keeps_nothing_but_aggregates_everything(self):
        keeping, streaming = OutcomeSink(keep=True), OutcomeSink(keep=False)
        keeping.extend(OUTCOMES)
        streaming.extend(OUTCOMES)
        assert len(keeping.outcomes) == len(OUTCOMES)
        assert streaming.outcomes == []
        assert streaming.aggregate == keeping.aggregate
        assert streaming.aggregate.checksum == keeping.aggregate.checksum

    def test_has_retired(self):
        sink = OutcomeSink(keep=True)
        sink.extend(OUTCOMES[:3])
        assert sink.has_retired(OUTCOMES[0].spec.campaign_id)
        assert not sink.has_retired("nope")
        # Streaming sinks drop the id set along with the list.
        assert not OutcomeSink(keep=False).has_retired(
            OUTCOMES[0].spec.campaign_id
        )

    def test_spill_replays_bit_identically(self, tmp_path):
        path = tmp_path / "outcomes.jsonl"
        sink = OutcomeSink(keep=False, spill_path=path)
        sink.extend(OUTCOMES)
        sink.close()
        replayed = list(replay_outcomes(path))
        assert replayed == OUTCOMES
        assert (
            OutcomeAggregate.from_outcomes(replayed).checksum
            == sink.aggregate.checksum
        )

    def test_resume_offset_truncates_dirty_tail(self, tmp_path):
        path = tmp_path / "outcomes.jsonl"
        first = OutcomeSink(keep=False, spill_path=path)
        first.extend(OUTCOMES[:4])
        first.flush()
        offset = first.spill_offset
        first.extend(OUTCOMES[4:6])  # beyond the "checkpoint": a dirty tail
        first.close()
        resumed = OutcomeSink(
            keep=False, spill_path=path, resume_offset=offset
        )
        resumed.extend(OUTCOMES[4:])
        resumed.close()
        assert list(replay_outcomes(path)) == OUTCOMES

    def test_resume_offset_requires_existing_file(self, tmp_path):
        with pytest.raises(ValueError):
            OutcomeSink(
                keep=False,
                spill_path=tmp_path / "missing.jsonl",
                resume_offset=10,
            )

    def test_restore_installs_without_refolding(self):
        agg = OutcomeAggregate.from_outcomes(OUTCOMES[:5])
        sink = OutcomeSink(keep=True)
        sink.restore(agg, list(OUTCOMES[:5]))
        sink.extend(OUTCOMES[5:])
        assert sink.aggregate == OutcomeAggregate.from_outcomes(OUTCOMES)
        assert sink.outcomes == list(OUTCOMES)
        assert sink.has_retired(OUTCOMES[2].spec.campaign_id)
