"""Lazy workload sources: ordering, determinism, skip-resume, descriptors.

Contracts under test:

* Every source yields specs in nondecreasing ``(submit_interval,
  campaign_id)`` order — the admission order the clock's sorted pending
  queue would produce, which is what makes streamed runs bit-identical
  to materialized ones.
* ``iterate(skip=n)`` equals ``iterate()`` minus its first ``n`` specs,
  spec-for-spec — the checkpoint fast-forward contract.
* ``to_dict``/``source_from_dict`` round-trip a source into an equivalent
  generator (descriptors are declarative: a million-campaign stream
  serializes to a handful of parameters).
* ``StreamedWorkload`` is deterministic in its seed and validates its
  parameters the way ``generate_workload`` does.
"""

from __future__ import annotations

import json

import pytest

from repro.engine import (
    CampaignSpec,
    DEADLINE,
    BUDGET,
    CampaignTemplate,
    ListSource,
    StreamedWorkload,
    generate_workload,
    source_from_dict,
)
from repro.engine.source import _submission_key


def assert_sorted(specs):
    keys = [_submission_key(s) for s in specs]
    assert keys == sorted(keys)


class TestListSource:
    def test_sorts_on_construction(self):
        specs = generate_workload(24, 48, seed=11)
        shuffled = list(reversed(specs))
        source = ListSource(shuffled)
        out = list(source)
        assert_sorted(out)
        assert sorted(s.campaign_id for s in out) == sorted(
            s.campaign_id for s in specs
        )
        assert len(source) == len(specs)

    def test_skip_is_a_suffix(self):
        source = ListSource(generate_workload(24, 48, seed=11))
        full = list(source.iterate())
        for skip in (0, 1, 7, len(full), len(full) + 5):
            assert list(source.iterate(skip=skip)) == full[skip:]

    def test_dict_round_trip(self):
        source = ListSource(generate_workload(10, 48, seed=3))
        clone = source_from_dict(json.loads(json.dumps(source.to_dict())))
        assert isinstance(clone, ListSource)
        assert list(clone) == list(source)


class TestStreamedWorkload:
    def test_yields_in_submission_order(self):
        source = StreamedWorkload(500, 96, seed=5, campaigns_per_wave=40)
        specs = list(source)
        assert len(specs) == 500
        assert_sorted(specs)

    def test_ids_are_unique_and_prefixed(self):
        source = StreamedWorkload(200, 96, seed=5, id_prefix="zz")
        ids = [s.campaign_id for s in source]
        assert len(set(ids)) == 200
        assert all(i.startswith("zz") for i in ids)

    def test_deterministic_in_seed(self):
        a = list(StreamedWorkload(120, 96, seed=9))
        b = list(StreamedWorkload(120, 96, seed=9))
        c = list(StreamedWorkload(120, 96, seed=10))
        assert a == b
        assert a != c

    def test_skip_equals_suffix_of_full_pass(self):
        source = StreamedWorkload(150, 96, seed=2, campaigns_per_wave=32)
        full = list(source.iterate())
        for skip in (0, 1, 31, 32, 33, 149, 150):
            assert list(source.iterate(skip=skip)) == full[skip:]

    def test_every_campaign_fits_the_stream(self):
        source = StreamedWorkload(300, 48, seed=1, campaigns_per_wave=50)
        for spec in source:
            assert spec.submit_interval + spec.horizon_intervals <= 48

    def test_draws_both_kinds_and_adaptive(self):
        specs = list(StreamedWorkload(400, 96, seed=0))
        kinds = {s.kind for s in specs}
        assert kinds == {DEADLINE, BUDGET}
        assert any(s.adaptive for s in specs)
        assert any(not s.adaptive for s in specs if s.kind == DEADLINE)

    def test_kind_fractions_respect_extremes(self):
        all_budget = list(
            StreamedWorkload(50, 96, seed=0, budget_fraction=1.0)
        )
        assert {s.kind for s in all_budget} == {BUDGET}
        all_deadline = list(
            StreamedWorkload(
                50, 96, seed=0, budget_fraction=0.0, adaptive_fraction=0.0
            )
        )
        assert {s.kind for s in all_deadline} == {DEADLINE}
        assert not any(s.adaptive for s in all_deadline)

    def test_dict_round_trip(self):
        source = StreamedWorkload(
            80, 96, seed=4, budget_fraction=0.4, adaptive_fraction=0.1,
            campaigns_per_wave=16, id_prefix="rt",
        )
        clone = source_from_dict(json.loads(json.dumps(source.to_dict())))
        assert isinstance(clone, StreamedWorkload)
        assert list(clone) == list(source)

    def test_custom_templates(self):
        templates = [
            CampaignTemplate(
                name="tiny-dl", kind=DEADLINE, num_tasks=6,
                horizon_intervals=5, max_price=12,
            ),
            CampaignTemplate(
                name="tiny-b", kind=BUDGET, num_tasks=8,
                horizon_intervals=6, max_price=10,
            ),
        ]
        specs = list(
            StreamedWorkload(60, 24, seed=3, templates=templates)
        )
        assert {s.num_tasks for s in specs} <= {6, 8}
        assert_sorted(specs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_campaigns=0),
            dict(num_intervals=0),
            dict(budget_fraction=1.5),
            dict(adaptive_fraction=-0.1),
            dict(campaigns_per_wave=0),
            dict(templates=[]),
            dict(num_intervals=2),  # nothing fits a 2-interval stream
        ],
    )
    def test_validation(self, kwargs):
        base = dict(num_campaigns=10, num_intervals=96, seed=0)
        base.update(kwargs)
        with pytest.raises(ValueError):
            StreamedWorkload(**base)


def test_unknown_descriptor_kind_rejected():
    with pytest.raises(ValueError):
        source_from_dict({"kind": "mystery"})
