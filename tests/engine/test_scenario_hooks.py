"""Engine-level scenario hooks: rate modulation and mid-flight cancellation.

These are the clock capabilities the scenario layer is built on, tested
directly against both engine front-ends (no ScenarioDriver involved):

* ``set_rate_multipliers`` scales the *rate* each tick runs under —
  equivalent to running an unmodulated engine on a pre-scaled stream,
  invariant to the shard layout, and validated for shape/finiteness.
* ``cancel`` retires a live campaign with partial utility (no terminal
  penalty), drops a pending one from the queue, raises on unknown ids,
  and never perturbs the surviving campaigns' random draws on the
  factored backend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    CampaignSpec,
    MarketplaceEngine,
    ShardedEngine,
    generate_workload,
)
from repro.market.acceptance import paper_acceptance_model
from repro.sim.stream import SharedArrivalStream

NUM_INTERVALS = 36


def make_stream() -> SharedArrivalStream:
    means = 900.0 + 300.0 * np.sin(np.linspace(0.0, 3.0 * np.pi, NUM_INTERVALS))
    return SharedArrivalStream(means)


def make_engine(kind: str, stream: SharedArrivalStream | None = None,
                planning_means=None):
    stream = stream if stream is not None else make_stream()
    if kind == "sharded":
        return ShardedEngine(
            stream,
            paper_acceptance_model(),
            num_shards=3,
            executor="serial",
            planning="stationary",
            planning_means=planning_means,
        )
    return MarketplaceEngine(
        stream,
        paper_acceptance_model(),
        planning="stationary",
        planning_means=planning_means,
    )


def outcome_key(result):
    return [
        (o.spec.campaign_id, o.completed, o.remaining, o.total_cost,
         o.penalty, o.finished_interval, o.cancelled)
        for o in sorted(result.outcomes, key=lambda o: o.spec.campaign_id)
    ]


# ----------------------------------------------------------------------
# Rate modulation
# ----------------------------------------------------------------------
class TestRateModulation:
    @pytest.mark.parametrize("kind", ["marketplace", "sharded"])
    def test_uniform_modulation_equals_scaled_stream(self, kind):
        """A flat 1.7x multiplier array == running on a 1.7x stream.

        Modulation only shifts *realized* arrivals — campaigns keep
        planning against the unmodulated forecast — so the scaled-stream
        twin must also plan against the original means (the CLI's
        ``--surge`` does exactly this).
        """
        specs = generate_workload(10, NUM_INTERVALS, seed=3)

        modulated = make_engine(kind)
        modulated.submit(specs)
        core = modulated.start(seed=11)
        core.set_rate_multipliers(np.full(NUM_INTERVALS, 1.7))
        result_mod = core.run_to_completion()
        modulated.close()

        scaled = make_engine(
            kind,
            make_stream().scaled(1.7),
            planning_means=make_stream().arrival_means,
        )
        scaled.submit(specs)
        result_scaled = scaled.run(seed=11)

        assert outcome_key(result_mod) == outcome_key(result_scaled)
        assert result_mod.total_arrivals == result_scaled.total_arrivals

    def test_modulation_is_shard_invariant(self):
        """A windowed shock yields identical outcomes for 1 vs 4 shards."""
        multipliers = np.ones(NUM_INTERVALS)
        multipliers[10:20] = 2.5
        results = []
        for shards in (1, 4):
            stream = make_stream()
            engine = ShardedEngine(
                stream,
                paper_acceptance_model(),
                num_shards=shards,
                executor="serial",
                planning="stationary",
            )
            engine.submit(generate_workload(12, NUM_INTERVALS, seed=5))
            core = engine.start(seed=9)
            core.set_rate_multipliers(multipliers)
            results.append(core.run_to_completion())
            engine.close()
        assert outcome_key(results[0]) == outcome_key(results[1])
        assert results[0].total_arrivals == results[1].total_arrivals

    def test_default_is_unmodulated(self):
        engine = make_engine("marketplace")
        core = engine.start(seed=0)
        assert core.rate_multipliers is None
        assert core.rate_factor(0) == 1.0
        engine.close()

    def test_clearing_restores_default(self):
        engine = make_engine("marketplace")
        core = engine.start(seed=0)
        core.set_rate_multipliers(np.full(NUM_INTERVALS, 0.5))
        assert core.rate_factor(3) == 0.5
        core.set_rate_multipliers(None)
        assert core.rate_multipliers is None
        engine.close()

    @pytest.mark.parametrize(
        "bad",
        [np.ones(NUM_INTERVALS - 1), np.full(NUM_INTERVALS, -0.1),
         np.full(NUM_INTERVALS, np.inf)],
        ids=["wrong-shape", "negative", "non-finite"],
    )
    def test_rejects_bad_multipliers(self, bad):
        engine = make_engine("marketplace")
        core = engine.start(seed=0)
        with pytest.raises(ValueError):
            core.set_rate_multipliers(bad)
        engine.close()


# ----------------------------------------------------------------------
# Cancellation
# ----------------------------------------------------------------------
def spec(cid: str, submit: int = 0, horizon: int = 12, tasks: int = 40):
    return CampaignSpec(
        campaign_id=cid,
        kind="deadline",
        num_tasks=tasks,
        submit_interval=submit,
        horizon_intervals=horizon,
        penalty_per_task=90.0,
    )


class TestCancellation:
    @pytest.mark.parametrize("kind", ["marketplace", "sharded"])
    def test_cancel_live_reports_partial_utility(self, kind):
        engine = make_engine(kind)
        engine.submit([spec("keep"), spec("drop")])
        engine.start(seed=4)
        for _ in range(5):
            engine.tick()
        outcome = engine.cancel("drop")
        assert outcome is not None
        assert outcome.cancelled
        assert outcome.penalty == 0.0  # the requester withdrew
        assert outcome.completed + outcome.remaining == 40
        assert outcome in engine.core.outcomes
        result = engine.run_to_completion()
        ids = {o.spec.campaign_id: o for o in result.outcomes}
        assert ids["drop"].cancelled and not ids["keep"].cancelled
        # The survivor still pays its terminal penalty if it missed tasks.
        assert not ids["keep"].cancelled

    @pytest.mark.parametrize("kind", ["marketplace", "sharded"])
    def test_cancel_pending_frees_the_id(self, kind):
        engine = make_engine(kind)
        engine.submit([spec("now"), spec("later", submit=20, horizon=10)])
        engine.start(seed=4)
        engine.tick()
        assert engine.cancel("later") is None  # dropped, nothing to account
        assert engine.core.num_pending == 0
        # The id is reusable after a pending cancellation.
        engine.submit([spec("later", submit=10, horizon=10)])
        result = engine.run_to_completion()
        assert {o.spec.campaign_id for o in result.outcomes} == {"now", "later"}

    def test_cancel_unknown_or_retired_raises(self):
        engine = make_engine("marketplace")
        engine.submit([spec("only", horizon=3)])
        engine.start(seed=4)
        with pytest.raises(KeyError):
            engine.cancel("ghost")
        for _ in range(3):
            engine.tick()
        assert engine.core.done
        with pytest.raises(KeyError):
            engine.cancel("only")
        engine.close()

    def test_cancel_requires_active_session(self):
        engine = make_engine("marketplace")
        with pytest.raises(RuntimeError):
            engine.cancel("anything")

    def test_cancellation_does_not_perturb_survivors_when_sharded(self):
        """Factored draws are per-campaign: cancelling one campaign leaves
        every survivor's outcome exactly as in the run where the cancelled
        campaign simply never existed after that tick... i.e. identical to
        the uncancelled run for campaigns whose draws never depended on it.
        """
        # Run A: two campaigns, cancel one at tick 4.
        engine_a = make_engine("sharded")
        engine_a.submit([spec("stays", tasks=500), spec("goes", tasks=500)])
        engine_a.start(seed=8)
        for _ in range(4):
            engine_a.tick()
        engine_a.cancel("goes")
        result_a = engine_a.run_to_completion()
        # Run B: identical, never cancelled.
        engine_b = make_engine("sharded")
        engine_b.submit([spec("stays", tasks=500), spec("goes", tasks=500)])
        result_b = engine_b.run(seed=8)
        # On the factored backend the survivor's private generator stream
        # is untouched by the cancellation (prices differ only through the
        # fractions, which the survivor's own draws absorb identically
        # only when routing is price-independent per campaign — so compare
        # the cancelled campaign's frozen state instead).
        goes_a = next(o for o in result_a.outcomes if o.spec.campaign_id == "goes")
        goes_b = next(o for o in result_b.outcomes if o.spec.campaign_id == "goes")
        assert goes_a.cancelled and not goes_b.cancelled
        # Up to the cancellation tick both runs are identical, so the
        # cancelled campaign can never report more work than its
        # uninterrupted twin.
        assert goes_a.completed <= goes_b.completed
        assert goes_a.total_cost <= goes_b.total_cost

    def test_cancelled_outcome_in_summary(self):
        engine = make_engine("marketplace")
        engine.submit([spec("a"), spec("b")])
        engine.start(seed=4)
        engine.tick()
        engine.cancel("b")
        result = engine.run_to_completion()
        assert "1 cancelled" in result.summary()
