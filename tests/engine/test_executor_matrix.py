"""The differential executor/kernel matrix: every cell, bit-identical.

This is the proof obligation for the process executor and the compiled
kernels: the engine's behaviour is a function of ``(workload, scenario,
seed)`` and **nothing else**.  The sweep runs the canonical golden
scenario through every cell of

    {pooled, sharded x {1, 3, 5} shards}
  x {serial, thread, process} executors
  x {numpy, numba} kernel backends           (tests/kernel_modes.py)
  x {uninterrupted, checkpoint/resume at a fuzzed tick}
  x {materialized, streaming}                 (lazy source + spill sink)

and asserts the full JSON-normalized payload — deterministic
``EngineResult`` fields *and* per-tick telemetry — is equal across every
cell of each family.  There are two baselines by design: pooled and
sharded engines realize arrivals through different mechanisms (one
marketplace draw vs. factored per-campaign draws), so their traces are
not comparable to each other; within each family, every knob must be
invisible.

The sharded/pooled baselines are additionally pinned to the committed
golden traces, so a matrix-wide drift (all cells equal, all wrong)
cannot slip through.

Note for single-core CI: these tests assert *invariance*, not scaling —
the process executor must produce identical bits even when its workers
time-slice one core.  Throughput claims live in ``benchmarks/``.
"""

from __future__ import annotations

import json
import zlib

import pytest

from repro.engine import (
    ListSource,
    MarketplaceEngine,
    ShardedEngine,
    generate_workload,
    replay_outcomes,
)
from repro.market.acceptance import paper_acceptance_model
from repro.scenario import ScenarioDriver

from tests.golden.cases import (
    BASE_SEED,
    NUM_INTERVALS,
    golden_scenario,
    make_stream,
    result_to_dict,
    run_case,
    trace_path,
)
from tests.kernel_modes import KERNEL_MODES, kernel_mode

SHARD_COUNTS = (1, 3, 5)
EXECUTORS = ("serial", "thread", "process")
#: "stream"/"stream-resume" rerun the cell with a lazy ListSource feeding
#: the same specs and a streaming (keep=False, JSONL-spill) sink — the
#: payload's outcome block is rebuilt from the spill, so these cells prove
#: the memory mode changes no bit of the trace.
RUN_MODES = ("full", "resume", "stream", "stream-resume")


def cell_id(*parts) -> str:
    return "-".join(str(p) for p in parts)


SHARDED_CELLS = [
    pytest.param(s, e, k, m, id=cell_id(s, e, k, m))
    for s in SHARD_COUNTS
    for e in EXECUTORS
    for k in KERNEL_MODES
    for m in RUN_MODES
]
POOLED_CELLS = [
    pytest.param(k, m, id=cell_id(k, m))
    for k in KERNEL_MODES
    for m in RUN_MODES
]


def resume_tick(cell: str) -> int:
    """Deterministically fuzzed mid-run checkpoint tick for one cell.

    Keyed by the cell name so different cells pause at different ticks
    (exercising many cut points across the sweep) while any given cell
    is reproducible run to run.
    """
    return 3 + zlib.crc32(cell.encode()) % (NUM_INTERVALS - 10)


def build_matrix_driver(
    num_shards: int, executor: str, streaming: bool = False, spill=None
) -> ScenarioDriver:
    """The golden-case workload + scenario on an arbitrary engine shape."""
    if num_shards:
        engine: MarketplaceEngine | ShardedEngine = ShardedEngine(
            make_stream(), paper_acceptance_model(), num_shards=num_shards,
            executor=executor, planning="stationary",
        )
    else:
        engine = MarketplaceEngine(
            make_stream(), paper_acceptance_model(), planning="stationary"
        )
    specs = generate_workload(4, NUM_INTERVALS, seed=BASE_SEED)
    if streaming:
        engine.submit_source(ListSource(specs))
        return ScenarioDriver(
            engine, golden_scenario(),
            keep_outcomes=False, outcomes_path=spill,
        )
    engine.submit(specs)
    return ScenarioDriver(engine, golden_scenario())


def finish(driver: ScenarioDriver, spill=None) -> dict:
    """Drive to exhaustion; return the JSON-normalized comparison payload.

    Streaming cells materialize nothing in-process: their outcome block
    is rebuilt from the JSONL spill after the run closes.
    """
    result = driver.run()
    outcomes = list(replay_outcomes(spill)) if spill is not None else None
    return json.loads(json.dumps({
        "result": result_to_dict(result, outcomes=outcomes),
        "telemetry": driver.telemetry.to_dict(),
    }))


def run_cell(num_shards, executor, mode, cell, tmp_path) -> dict:
    streaming = mode.startswith("stream")
    spill = tmp_path / f"{cell}.jsonl" if streaming else None
    driver = build_matrix_driver(
        num_shards, executor, streaming=streaming, spill=spill
    )
    if mode in ("full", "stream"):
        return finish(driver, spill=spill)
    # Checkpoint/resume cell: pause at the fuzzed tick, snapshot, abandon
    # the original session, and finish from the bundle.  The payload must
    # be indistinguishable from never having stopped.  (Streaming bundles
    # persist the source cursor + aggregate + spill offset, so the spill
    # file keeps growing seamlessly across the cut.)
    driver.start()
    for _ in range(resume_tick(cell)):
        driver.step()
    bundle = driver.save(tmp_path / cell)
    driver.engine.close()
    return finish(ScenarioDriver.resume(bundle), spill=spill)


def normalized(payload: dict) -> dict:
    """Strip the one field that legitimately varies: the shard count."""
    payload = json.loads(json.dumps(payload))
    payload["result"].pop("num_shards")
    return payload


@pytest.fixture(scope="module")
def sharded_baseline():
    with kernel_mode("numpy"):
        return finish(build_matrix_driver(3, "serial"))


@pytest.fixture(scope="module")
def pooled_baseline():
    with kernel_mode("numpy"):
        return finish(build_matrix_driver(0, "serial"))


class TestBaselines:
    """Anchor the in-memory baselines to the committed golden traces."""

    def test_sharded_baseline_is_the_committed_golden(self, sharded_baseline):
        golden = json.loads(trace_path("sharded3_small").read_text())
        assert sharded_baseline["result"] == golden["result"]
        assert sharded_baseline["telemetry"] == golden["telemetry"]

    def test_pooled_baseline_is_the_committed_golden(self, pooled_baseline):
        golden = json.loads(trace_path("pooled_small").read_text())
        assert pooled_baseline["result"] == golden["result"]
        assert pooled_baseline["telemetry"] == golden["telemetry"]

    def test_pooled_and_sharded_are_distinct_baselines(
        self, pooled_baseline, sharded_baseline
    ):
        # Different arrival mechanisms: the two families are intentionally
        # separate equivalence classes, not one.
        assert normalized(pooled_baseline) != normalized(sharded_baseline)


class TestShardedMatrix:
    @pytest.mark.parametrize(
        "num_shards,executor,kernels_name,mode", SHARDED_CELLS
    )
    def test_cell_matches_baseline(
        self, num_shards, executor, kernels_name, mode, sharded_baseline,
        tmp_path,
    ):
        cell = cell_id("sharded", num_shards, executor, kernels_name, mode)
        with kernel_mode(kernels_name):
            payload = run_cell(num_shards, executor, mode, cell, tmp_path)
        assert payload["result"]["num_shards"] == num_shards
        assert normalized(payload) == normalized(sharded_baseline), (
            f"cell {cell} diverged from the serial/numpy baseline"
        )


class TestPooledMatrix:
    @pytest.mark.parametrize("kernels_name,mode", POOLED_CELLS)
    def test_cell_matches_baseline(
        self, kernels_name, mode, pooled_baseline, tmp_path
    ):
        cell = cell_id("pooled", kernels_name, mode)
        with kernel_mode(kernels_name):
            payload = run_cell(0, "serial", mode, cell, tmp_path)
        assert normalized(payload) == normalized(pooled_baseline), (
            f"cell {cell} diverged from the pooled baseline"
        )


class TestGoldenTraceInvariance:
    """The committed sharded golden byte-compares under every knob.

    ``make regen-golden`` runs the same check before writing anything;
    here it gates every PR.
    """

    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("kernels_name", KERNEL_MODES)
    def test_sharded_golden_invariant(self, executor, kernels_name):
        golden = json.loads(trace_path("sharded3_small").read_text())
        with kernel_mode(kernels_name):
            assert run_case("sharded3_small", executor=executor) == golden

    @pytest.mark.parametrize("kernels_name", KERNEL_MODES)
    def test_pooled_golden_invariant_under_kernels(self, kernels_name):
        golden = json.loads(trace_path("pooled_small").read_text())
        with kernel_mode(kernels_name):
            assert run_case("pooled_small") == golden

    @pytest.mark.parametrize("case", ("pooled_small", "sharded3_small"))
    def test_golden_invariant_under_streaming(self, case):
        # The committed traces byte-compare when the same workload is fed
        # lazily and the outcome block is replayed from a streaming spill.
        golden = json.loads(trace_path(case).read_text())
        assert run_case(case, streaming=True) == golden
