"""The cache's batch drain and the engine's batched admission path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import BatchPolicySolver
from repro.engine import MarketplaceEngine, PolicyCache, generate_workload
from repro.market.acceptance import paper_acceptance_model
from repro.sim.stream import SharedArrivalStream


@pytest.fixture
def stream() -> SharedArrivalStream:
    means = 1200.0 + 400.0 * np.sin(np.linspace(0.0, 4.0 * np.pi, 64))
    return SharedArrivalStream(means)


class TestGetOrSolveMany:
    def solve_many(self, requests):
        self.calls.append(list(requests))
        return [f"policy-{r}" for r in requests]

    def setup_method(self):
        self.calls = []

    def test_all_misses_solved_in_one_call(self):
        cache = PolicyCache()
        out = cache.get_or_solve_many(
            [("a", 1), ("b", 2), ("c", 3)], self.solve_many
        )
        assert out == [("policy-1", False), ("policy-2", False), ("policy-3", False)]
        assert self.calls == [[1, 2, 3]]
        assert cache.stats.misses == 3 and cache.stats.hits == 0

    def test_cached_entries_answered_without_solving(self):
        cache = PolicyCache()
        cache.get_or_solve(("a"), lambda: "old-a")
        out = cache.get_or_solve_many([("a", 1), ("b", 2)], self.solve_many)
        assert out == [("old-a", True), ("policy-2", False)]
        assert self.calls == [[2]]
        assert cache.stats.hits == 1 and cache.stats.misses == 2  # incl. old miss

    def test_duplicates_within_batch_solved_once_scored_as_hits(self):
        cache = PolicyCache()
        out = cache.get_or_solve_many(
            [("a", 1), ("a", 1), ("b", 2), ("a", 1)], self.solve_many
        )
        assert [hit for _, hit in out] == [False, True, False, True]
        assert self.calls == [[1, 2]]
        assert cache.stats.misses == 2 and cache.stats.hits == 2
        # ...and the entries are stored for later lookups.
        assert "a" in cache and "b" in cache

    def test_disabled_cache_solves_every_item(self):
        cache = PolicyCache(max_entries=0)
        out = cache.get_or_solve_many(
            [("a", 1), ("a", 1), ("b", 2)], self.solve_many
        )
        assert [hit for _, hit in out] == [False, False, False]
        assert self.calls == [[1, 1, 2]]
        assert cache.stats.misses == 3 and len(cache) == 0

    def test_eviction_respects_capacity(self):
        cache = PolicyCache(max_entries=2)
        cache.get_or_solve_many([("a", 1), ("b", 2), ("c", 3)], self.solve_many)
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert "a" not in cache and "c" in cache

    def test_length_mismatch_rejected(self):
        cache = PolicyCache()
        with pytest.raises(ValueError, match="returned"):
            cache.get_or_solve_many([("a", 1)], lambda requests: [])

    def test_empty_items(self):
        cache = PolicyCache()
        assert cache.get_or_solve_many([], self.solve_many) == []
        assert self.calls == []


class TestBatchPolicySolverStats:
    def test_counters_accumulate(self):
        from repro.core.deadline.model import DeadlineProblem, PenaltyScheme
        from repro.market.acceptance import paper_acceptance_model

        solver = BatchPolicySolver()
        assert solver.stats.batches == 0
        assert solver.stats.mean_batch_size == 0.0
        problems = [
            DeadlineProblem(
                num_tasks=6,
                arrival_means=np.full(4, 30.0 + i),
                acceptance=paper_acceptance_model(),
                price_grid=np.arange(1.0, 11.0),
                penalty=PenaltyScheme(per_task=50.0),
            )
            for i in range(3)
        ]
        solver.solve_deadline_many(problems)
        solver.solve_deadline_many(problems[:1])
        stats = solver.stats
        assert stats.batches == 2
        assert stats.instances == 4
        assert stats.largest_batch == 3
        assert stats.mean_batch_size == pytest.approx(2.0)
        solver.solve_deadline_many([])  # empty drains are not counted
        assert solver.stats.batches == 2


class TestEngineBatchAdmission:
    def outcome_key(self, result):
        return [
            (
                o.spec.campaign_id,
                o.completed,
                o.remaining,
                round(o.total_cost, 9),
                o.finished_interval,
                o.cache_hit,
                o.num_solves,
            )
            for o in result.outcomes
        ]

    def run(self, stream, batch_solve, cache_entries=256):
        engine = MarketplaceEngine(
            stream,
            paper_acceptance_model(),
            cache=PolicyCache(max_entries=cache_entries),
            planning="stationary",
            batch_solve=batch_solve,
        )
        engine.submit(generate_workload(40, stream.num_intervals, seed=13))
        return engine.run(seed=13)

    def test_batch_and_scalar_paths_agree_exactly(self, stream):
        batch = self.run(stream, True)
        scalar = self.run(stream, False)
        assert self.outcome_key(batch) == self.outcome_key(scalar)
        assert batch.cache_stats.hits == scalar.cache_stats.hits
        assert batch.cache_stats.misses == scalar.cache_stats.misses

    def test_batch_and_scalar_agree_with_cache_disabled(self, stream):
        batch = self.run(stream, True, cache_entries=0)
        scalar = self.run(stream, False, cache_entries=0)
        assert self.outcome_key(batch) == self.outcome_key(scalar)
        assert batch.cache_stats.misses == scalar.cache_stats.misses

    def test_batch_stats_reported(self, stream):
        result = self.run(stream, True)
        assert result.batch_stats is not None
        # Single-spec ticks fall back to scalar admission, so the batch
        # solver sees at most (and usually most of) the cache misses.
        assert 0 < result.batch_stats.instances <= result.cache_stats.misses
        assert "batch solver" in result.summary()

    def test_scalar_path_reports_no_batch_stats(self, stream):
        result = self.run(stream, False)
        assert result.batch_stats is None
        assert "batch solver" not in result.summary()
