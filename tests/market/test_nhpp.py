"""Tests for the NHPP counting process and interval means (Eq. 1/4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.market.nhpp import NHPP, interval_means
from repro.market.rates import ConstantRate, PiecewiseConstantRate


class TestIntervalMeans:
    def test_constant_rate(self):
        means = interval_means(ConstantRate(6.0), horizon=4.0, num_intervals=4)
        assert np.allclose(means, 6.0)

    def test_piecewise_rate(self):
        rate = PiecewiseConstantRate([0.0, 1.0, 2.0], [2.0, 4.0])
        means = interval_means(rate, horizon=2.0, num_intervals=4)
        assert np.allclose(means, [1.0, 1.0, 2.0, 2.0])

    def test_start_offset(self):
        rate = PiecewiseConstantRate([0.0, 1.0, 2.0], [2.0, 4.0])
        means = interval_means(rate, horizon=1.0, num_intervals=2, start=1.0)
        assert np.allclose(means, [2.0, 2.0])

    def test_total_preserved(self):
        rate = PiecewiseConstantRate.from_uniform_bins(0.3, [5.0, 1.0, 9.0, 2.0])
        means = interval_means(rate, horizon=1.2, num_intervals=5)
        assert means.sum() == pytest.approx(rate.integral(0.0, 1.2))

    def test_validation(self):
        with pytest.raises(ValueError):
            interval_means(ConstantRate(1.0), horizon=0.0, num_intervals=2)
        with pytest.raises(ValueError):
            interval_means(ConstantRate(1.0), horizon=1.0, num_intervals=0)


class TestNHPPSampling:
    def test_mean_count(self, rng):
        process = NHPP(ConstantRate(30.0))
        counts = [process.sample_count(0.0, 2.0, rng) for _ in range(2000)]
        assert np.mean(counts) == pytest.approx(60.0, rel=0.05)

    def test_arrivals_sorted_and_in_window(self, rng):
        rate = PiecewiseConstantRate.from_uniform_bins(1.0, [10.0, 40.0, 5.0])
        process = NHPP(rate)
        times = process.sample_arrivals(0.5, 2.5, rng)
        assert np.all(np.diff(times) >= 0)
        assert times.min() >= 0.5 and times.max() <= 2.5

    def test_arrival_counts_match_rate_profile(self, rng):
        rate = PiecewiseConstantRate.from_uniform_bins(1.0, [5.0, 50.0])
        process = NHPP(rate)
        first, second = 0, 0
        for _ in range(300):
            times = process.sample_arrivals(0.0, 2.0, rng)
            first += np.sum(times < 1.0)
            second += np.sum(times >= 1.0)
        assert second / max(first, 1) == pytest.approx(10.0, rel=0.25)

    def test_empty_window(self, rng):
        process = NHPP(ConstantRate(5.0))
        assert process.sample_arrivals(1.0, 1.0, rng).size == 0

    def test_reversed_window_rejected(self, rng):
        with pytest.raises(ValueError):
            NHPP(ConstantRate(5.0)).sample_arrivals(2.0, 1.0, rng)

    def test_generic_rate_uses_resolution(self, rng):
        process = NHPP(ConstantRate(40.0))
        times = process.sample_arrivals(0.0, 3.0, rng, resolution=0.25)
        assert times.size > 0
        assert np.all((times >= 0.0) & (times <= 3.0))


class TestThinning:
    def test_thin_scales_rate(self):
        process = NHPP(ConstantRate(10.0))
        thinned = process.thin(0.3)
        assert thinned.mean(0.0, 1.0) == pytest.approx(3.0)

    def test_thin_probability_validated(self):
        with pytest.raises(ValueError):
            NHPP(ConstantRate(1.0)).thin(1.5)

    def test_thin_arrivals_fraction(self, rng):
        process = NHPP(ConstantRate(1.0))
        arrivals = np.linspace(0.0, 1.0, 5000)
        kept = process.thin_arrivals(arrivals, 0.2, rng)
        assert kept.size / arrivals.size == pytest.approx(0.2, abs=0.03)

    def test_thin_arrivals_empty(self, rng):
        assert NHPP(ConstantRate(1.0)).thin_arrivals([], 0.5, rng).size == 0

    def test_thinned_count_statistics(self, rng):
        # Thinned NHPP is an NHPP with rate lambda * p (Section 2.1).
        process = NHPP(ConstantRate(50.0))
        direct = NHPP(ConstantRate(50.0 * 0.1))
        thin_counts = [
            process.thin_arrivals(process.sample_arrivals(0.0, 1.0, rng), 0.1, rng).size
            for _ in range(800)
        ]
        direct_counts = [direct.sample_count(0.0, 1.0, rng) for _ in range(800)]
        assert np.mean(thin_counts) == pytest.approx(np.mean(direct_counts), rel=0.15)
        assert np.var(thin_counts) == pytest.approx(np.var(direct_counts), rel=0.3)
