"""Tests for the estimation pipelines (rates, Table 2 regression, Eq. 13)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.market.acceptance import LogitAcceptance
from repro.market.estimation import (
    WageRegressionResult,
    derive_acceptance_model,
    estimate_piecewise_rate,
    fit_logit_acceptance,
    fit_wage_workload_regression,
)


class TestEstimatePiecewiseRate:
    def test_mle_is_count_over_width(self):
        rate = estimate_piecewise_rate([10, 20, 0], bin_hours=0.5)
        assert rate.rate(0.25) == pytest.approx(20.0)
        assert rate.rate(0.75) == pytest.approx(40.0)
        assert rate.rate(1.25) == pytest.approx(0.0)

    def test_total_mass_preserved(self):
        counts = [7, 3, 11, 2]
        rate = estimate_piecewise_rate(counts, bin_hours=0.25)
        assert rate.integral(0.0, 1.0) == pytest.approx(sum(counts))

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_piecewise_rate([1, 2], bin_hours=0.0)
        with pytest.raises(ValueError):
            estimate_piecewise_rate([-1], bin_hours=1.0)


class TestWageWorkloadRegression:
    def test_exact_recovery_without_noise(self):
        wages = np.linspace(0.0005, 0.003, 40)
        workload = np.exp(809.0 * wages + 6.28)
        fit = fit_wage_workload_regression(wages, workload)
        assert fit.alpha == pytest.approx(809.0, rel=1e-9)
        assert fit.bias == pytest.approx(6.28, rel=1e-9)
        assert fit.residual_std == pytest.approx(0.0, abs=1e-9)
        assert fit.num_points == 40

    def test_noisy_recovery(self, rng):
        wages = rng.uniform(0.0003, 0.004, 200)
        workload = np.exp(748.0 * wages + 3.66 + rng.normal(0, 0.3, 200))
        fit = fit_wage_workload_regression(wages, workload)
        assert fit.alpha == pytest.approx(748.0, rel=0.12)
        assert fit.bias == pytest.approx(3.66, abs=0.35)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_wage_workload_regression([1.0], [2.0, 3.0])
        with pytest.raises(ValueError):
            fit_wage_workload_regression([1.0], [2.0])
        with pytest.raises(ValueError):
            fit_wage_workload_regression([1.0, 2.0], [1.0, 0.0])


class TestDeriveAcceptanceModel:
    def test_paper_numbers_give_eq13(self):
        # Section 5.1.2: alpha=809, bias=6.28, 120s task, total=6000/h, M=2000
        # => s ~ 15, b ~ -0.39.
        fit = WageRegressionResult(alpha=809.0, bias=6.28, residual_std=0.0, num_points=100)
        model = derive_acceptance_model(fit, task_seconds=120.0)
        assert model.s == pytest.approx(14.83, abs=0.05)
        assert model.b == pytest.approx(-0.39, abs=0.02)
        assert model.m == 2000.0

    def test_validation(self):
        good = WageRegressionResult(alpha=800.0, bias=6.0, residual_std=0.0, num_points=10)
        with pytest.raises(ValueError):
            derive_acceptance_model(good, task_seconds=0.0)
        bad_slope = WageRegressionResult(alpha=-1.0, bias=6.0, residual_std=0.0, num_points=10)
        with pytest.raises(ValueError):
            derive_acceptance_model(bad_slope, task_seconds=120.0)


class TestFitLogitAcceptance:
    def test_recovers_parameters_fixed_m(self):
        truth = LogitAcceptance(s=15.0, b=-0.39, m=2000.0)
        prices = np.arange(2.0, 40.0, 2.0)
        probs = truth.probabilities(prices)
        fit = fit_logit_acceptance(prices, probs, m=2000.0)
        assert fit.s == pytest.approx(15.0, rel=1e-4)
        assert fit.b == pytest.approx(-0.39, abs=1e-3)

    def test_recovers_parameters_free_m(self):
        truth = LogitAcceptance(s=12.0, b=0.5, m=800.0)
        prices = np.arange(1.0, 60.0, 1.5)
        probs = truth.probabilities(prices)
        fit = fit_logit_acceptance(prices, probs)
        assert fit.probabilities(prices) == pytest.approx(probs, rel=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_logit_acceptance([1.0, 2.0], [0.1, 0.2])  # too few for free M
        with pytest.raises(ValueError):
            fit_logit_acceptance([1.0, 2.0, 3.0], [0.0, 0.1, 0.2])
        with pytest.raises(ValueError):
            fit_logit_acceptance([1.0], [0.1, 0.2], m=100.0)
