"""Tests for the general Eq. 2 conditional-logit market."""

from __future__ import annotations

import numpy as np
import pytest

from repro.market.acceptance import AcceptanceModel
from repro.market.choice import ConditionalLogitMarket, conditional_logit_probabilities


@pytest.fixture
def market():
    # Two attributes: (reward-derived utility term, task-type indicator).
    beta = np.array([1.0, 0.5])
    competitors = np.array([[0.0, 1.0], [0.5, 0.0], [1.0, 1.0], [-0.5, 0.0]])
    return ConditionalLogitMarket(beta, competitors)


class TestAcceptanceProbability:
    def test_matches_full_logit(self, market):
        # p must equal the first entry of the full choice distribution over
        # [our task] + competitors.
        ours = np.array([0.8, 1.0])
        utilities = np.concatenate(
            [
                [ours @ market.beta],
                market.competitor_attributes @ market.beta,
            ]
        )
        expected = conditional_logit_probabilities(utilities)[0]
        assert market.acceptance_probability(ours) == pytest.approx(expected)

    def test_monotone_in_utility(self, market):
        low = market.acceptance_probability(np.array([0.0, 0.0]))
        high = market.acceptance_probability(np.array([2.0, 0.0]))
        assert high > low

    def test_saturates(self, market):
        assert market.acceptance_probability(np.array([10_000.0, 0.0])) == 1.0

    def test_shape_checked(self, market):
        with pytest.raises(ValueError):
            market.acceptance_probability(np.array([1.0]))

    def test_stable_under_huge_competitor_utilities(self):
        market = ConditionalLogitMarket(
            np.array([1.0]), np.array([[1000.0], [999.0]])
        )
        p = market.acceptance_probability(np.array([998.0]))
        assert 0.0 < p < 1.0
        assert np.isfinite(p)


class TestAcceptanceModelView:
    def test_is_acceptance_model(self, market):
        model = market.acceptance_model(lambda c: np.array([c / 50.0, 1.0]))
        assert isinstance(model, AcceptanceModel)
        probs = model.probabilities([0.0, 25.0, 50.0])
        assert np.all(np.diff(probs) > 0)

    def test_usable_by_deadline_solver(self, market):
        from repro.core.deadline.model import DeadlineProblem, PenaltyScheme
        from repro.core.deadline.vectorized import solve_deadline

        model = market.acceptance_model(lambda c: np.array([c / 10.0 - 3.0, 0.0]))
        problem = DeadlineProblem(
            num_tasks=4,
            arrival_means=np.array([60.0, 80.0]),
            acceptance=model,
            price_grid=np.arange(1.0, 11.0),
            penalty=PenaltyScheme(per_task=30.0),
        )
        policy = solve_deadline(problem)
        assert policy.optimal_value > 0

    def test_negative_price_rejected(self, market):
        model = market.acceptance_model(lambda c: np.array([c, 0.0]))
        with pytest.raises(ValueError):
            model.probability(-1.0)

    def test_callable_required(self, market):
        with pytest.raises(TypeError):
            market.acceptance_model("not callable")


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            ConditionalLogitMarket(np.array([]), np.zeros((1, 0)))
        with pytest.raises(ValueError):
            ConditionalLogitMarket(np.array([1.0]), np.zeros((0, 1)))
        with pytest.raises(ValueError):
            ConditionalLogitMarket(np.array([1.0, 2.0]), np.zeros((3, 1)))
