"""Tests for the synthetic mturk-tracker trace."""

from __future__ import annotations

import numpy as np
import pytest

from repro.market.tracker import SyntheticTrackerTrace, TrackerConfig


class TestTrackerConfig:
    def test_defaults(self):
        config = TrackerConfig()
        assert config.num_days == 28
        assert config.bin_hours == pytest.approx(1.0 / 3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TrackerConfig(num_days=0)
        with pytest.raises(ValueError):
            TrackerConfig(base_rate=-1.0)
        with pytest.raises(ValueError):
            TrackerConfig(diurnal_amplitude=1.0)

    def test_holiday_depresses_rate(self):
        config = TrackerConfig()
        holiday = config.true_rate_at(12.0)  # day 0 = holiday
        normal = config.true_rate_at(12.0 + 7 * 24.0)  # same weekday, week later
        assert holiday < normal

    def test_weekend_factor(self):
        config = TrackerConfig(holiday_days=())
        # Start Wednesday: day 3 = Saturday.
        weekend = config.true_rate_at(12.0 + 3 * 24.0)
        weekday = config.true_rate_at(12.0 + 7 * 24.0)
        assert weekend == pytest.approx(weekday * config.weekend_factor)


class TestSyntheticTrackerTrace:
    def test_shapes(self):
        trace = SyntheticTrackerTrace()
        assert trace.counts.size == 28 * 72
        assert trace.bins_per_day == 72

    def test_deterministic_given_seed(self):
        a = SyntheticTrackerTrace(seed=1)
        b = SyntheticTrackerTrace(seed=1)
        c = SyntheticTrackerTrace(seed=2)
        assert np.array_equal(a.counts, b.counts)
        assert not np.array_equal(a.counts, c.counts)

    def test_counts_near_true_rates(self):
        trace = SyntheticTrackerTrace()
        observed = trace.observed_rates()
        truth = trace.true_rates()
        # Poisson noise around truth: relative error small in aggregate.
        assert observed.mean() == pytest.approx(truth.mean(), rel=0.02)

    def test_rate_function_total(self):
        trace = SyntheticTrackerTrace()
        rate = trace.rate_function()
        assert rate.integral(0.0, 28 * 24.0) == pytest.approx(trace.counts.sum())

    def test_day_accessors(self):
        trace = SyntheticTrackerTrace()
        day_counts = trace.day_counts(3)
        assert day_counts.size == 72
        day_rate = trace.day_rate(3)
        assert day_rate.integral(0.0, 24.0) == pytest.approx(day_counts.sum())

    def test_day_bounds_checked(self):
        trace = SyntheticTrackerTrace()
        with pytest.raises(ValueError):
            trace.day_counts(28)
        with pytest.raises(ValueError):
            trace.day_rate(-1)

    def test_average_day_rate(self):
        trace = SyntheticTrackerTrace()
        avg = trace.average_day_rate([7, 14])
        expected = (trace.day_counts(7) + trace.day_counts(14)) / 2.0
        assert avg.integral(0.0, 24.0) == pytest.approx(expected.sum())

    def test_average_day_rate_empty_rejected(self):
        with pytest.raises(ValueError):
            SyntheticTrackerTrace().average_day_rate([])

    def test_six_hour_series(self):
        trace = SyntheticTrackerTrace()
        series = trace.six_hour_series()
        assert series.size == 28 * 4
        assert series.sum() == trace.counts.sum()

    def test_weekly_periodicity(self):
        trace = SyntheticTrackerTrace()
        series = trace.six_hour_series().astype(float)
        week = 28
        corr = np.corrcoef(series[:-week], series[week:])[0, 1]
        assert corr > 0.8  # the Fig. 1 phenomenon

    def test_calibration_gives_floor_price_near_12(self):
        # The DESIGN.md calibration: average weekday rate ~5080/h makes the
        # Section 5.2.1 floor price come out at ~12 cents.
        trace = SyntheticTrackerTrace()
        day_total = trace.day_counts(7).sum()
        assert day_total / 24.0 == pytest.approx(5080.0, rel=0.05)

    def test_holiday_day_depressed(self):
        trace = SyntheticTrackerTrace()
        assert trace.day_counts(0).sum() < 0.75 * trace.day_counts(7).sum()

    def test_mean_hourly_rate(self):
        trace = SyntheticTrackerTrace()
        expected = trace.counts.sum() / (28 * 24.0)
        assert trace.mean_hourly_rate() == pytest.approx(expected)

    def test_bad_bin_width_rejected(self):
        with pytest.raises(ValueError):
            SyntheticTrackerTrace(TrackerConfig(bin_hours=0.7))
