"""Tests for the acceptance-probability models (Eq. 3 / Eq. 13)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.market.acceptance import (
    EmpiricalAcceptance,
    LogitAcceptance,
    PAPER_B,
    PAPER_M,
    PAPER_S,
    paper_acceptance_model,
)


class TestLogitAcceptance:
    def test_eq13_values(self):
        model = paper_acceptance_model()
        # Eq. 13: p(c) = exp(c/15 + 0.39) / (exp(c/15 + 0.39) + 2000).
        for c in (0.0, 12.0, 16.0, 30.0):
            e = math.exp(c / 15.0 + 0.39)
            assert model.probability(c) == pytest.approx(e / (e + 2000.0), rel=1e-12)

    def test_parameters_match_paper(self):
        model = paper_acceptance_model()
        assert (model.s, model.b, model.m) == (PAPER_S, PAPER_B, PAPER_M)

    def test_monotone_increasing(self):
        model = paper_acceptance_model()
        probs = model.probabilities(np.arange(0.0, 100.0))
        assert np.all(np.diff(probs) > 0)

    def test_bounds(self):
        model = LogitAcceptance(s=1.0, b=0.0, m=1.0)
        assert 0.0 < model.probability(0.0) < 1.0
        assert model.probability(20_000.0) == 1.0  # saturation guard

    def test_vectorized_matches_scalar(self):
        model = paper_acceptance_model()
        grid = np.array([0.0, 3.0, 17.0, 42.0])
        vector = model.probabilities(grid)
        scalars = [model.probability(c) for c in grid]
        assert np.allclose(vector, scalars)

    def test_callable(self):
        model = paper_acceptance_model()
        assert model(10.0) == model.probability(10.0)

    def test_negative_price_rejected(self):
        with pytest.raises(ValueError):
            paper_acceptance_model().probability(-1.0)
        with pytest.raises(ValueError):
            paper_acceptance_model().probabilities([-1.0, 2.0])

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LogitAcceptance(s=0.0, b=0.0, m=1.0)
        with pytest.raises(ValueError):
            LogitAcceptance(s=1.0, b=0.0, m=0.0)

    @given(st.floats(min_value=1e-5, max_value=0.99))
    @settings(max_examples=50, deadline=None)
    def test_inverse_roundtrip(self, p):
        model = paper_acceptance_model()
        price = model.inverse(p)
        if price >= 0:
            assert model.probability(price) == pytest.approx(p, rel=1e-9)

    def test_inverse_rejects_bounds(self):
        model = paper_acceptance_model()
        with pytest.raises(ValueError):
            model.inverse(0.0)
        with pytest.raises(ValueError):
            model.inverse(1.0)
        with pytest.raises(ValueError):
            model.inverse(1.5)

    def test_with_params(self):
        base = paper_acceptance_model()
        changed = base.with_params(m=4000.0)
        assert changed.m == 4000.0
        assert changed.s == base.s and changed.b == base.b
        assert changed.probability(10.0) < base.probability(10.0)

    def test_repr(self):
        assert "LogitAcceptance" in repr(paper_acceptance_model())


class TestEmpiricalAcceptance:
    def test_exact_at_knots(self):
        table = {1.0: 0.1, 2.0: 0.4}
        model = EmpiricalAcceptance(table)
        assert model.probability(1.0) == pytest.approx(0.1)
        assert model.probability(2.0) == pytest.approx(0.4)

    def test_interpolation(self):
        model = EmpiricalAcceptance({0.0: 0.0, 2.0: 0.4})
        assert model.probability(1.0) == pytest.approx(0.2)

    def test_clamping_outside_range(self):
        model = EmpiricalAcceptance({1.0: 0.1, 2.0: 0.4})
        assert model.probability(0.0) == pytest.approx(0.1)
        assert model.probability(5.0) == pytest.approx(0.4)

    def test_vectorized(self):
        model = EmpiricalAcceptance({0.0: 0.0, 1.0: 1.0})
        assert np.allclose(model.probabilities([0.25, 0.75]), [0.25, 0.75])

    def test_prices_accessor_copy(self):
        model = EmpiricalAcceptance({1.0: 0.1})
        prices = model.prices
        prices[0] = 99.0
        assert model.probability(1.0) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            EmpiricalAcceptance({})
        with pytest.raises(ValueError):
            EmpiricalAcceptance({1.0: 1.5})

    def test_repr(self):
        assert "EmpiricalAcceptance" in repr(EmpiricalAcceptance({1.0: 0.5}))
