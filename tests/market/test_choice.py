"""Tests for the discrete-choice substrate (Section 2.2 / Fig. 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.market.choice import (
    ChoiceSetting,
    conditional_logit_probabilities,
    fit_logit_curve,
    sample_gumbel_choice,
    simulate_acceptance_curve,
)


class TestConditionalLogit:
    def test_sums_to_one(self):
        probs = conditional_logit_probabilities([0.0, 1.0, -2.0, 3.0])
        assert probs.sum() == pytest.approx(1.0)

    def test_equal_utilities_uniform(self):
        probs = conditional_logit_probabilities([2.0, 2.0, 2.0])
        assert np.allclose(probs, 1.0 / 3.0)

    def test_shift_invariance(self):
        a = conditional_logit_probabilities([0.0, 1.0, 2.0])
        b = conditional_logit_probabilities([100.0, 101.0, 102.0])
        assert np.allclose(a, b)

    def test_extreme_utilities_stable(self):
        probs = conditional_logit_probabilities([1000.0, 0.0])
        assert probs[0] == pytest.approx(1.0)
        assert np.all(np.isfinite(probs))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            conditional_logit_probabilities([])


class TestGumbelMax:
    def test_matches_logit_distribution(self, rng):
        # The Gumbel-max trick: argmax(u + Gumbel noise) ~ conditional logit.
        utilities = [0.0, 1.0, 2.0]
        expected = conditional_logit_probabilities(utilities)
        draws = np.array(
            [sample_gumbel_choice(utilities, rng) for _ in range(6000)]
        )
        empirical = np.bincount(draws, minlength=3) / draws.size
        assert np.allclose(empirical, expected, atol=0.025)

    def test_empty_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_gumbel_choice([], rng)


class TestChoiceSetting:
    def test_defaults_match_paper(self):
        setting = ChoiceSetting()
        assert setting.num_tasks == 100
        assert setting.reward_scale == 50.0
        assert setting.reward_offset == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ChoiceSetting(num_tasks=1)
        with pytest.raises(ValueError):
            ChoiceSetting(reward_scale=0.0)


class TestSimulateAcceptanceCurve:
    def test_monotone_in_reward(self, rng):
        rewards = [0.0, 50.0, 100.0, 150.0]
        curve = simulate_acceptance_curve(rewards, ChoiceSetting(), 3000, rng)
        # Higher rewards raise our task's mean utility, hence win rate.
        assert curve[-1] > curve[0]
        assert np.all((curve >= 0.0) & (curve <= 1.0))

    def test_invalid_samples_rejected(self, rng):
        with pytest.raises(ValueError):
            simulate_acceptance_curve([1.0], ChoiceSetting(), 0, rng)


class TestFitLogitCurve:
    def test_recovers_synthetic_parameters(self):
        rewards = np.arange(0.0, 151.0, 5.0)
        z = rewards / 50.0 - 1.0
        beta_true, m_true = 2.6, 60.0
        e = np.exp(beta_true * z)
        probs = e / (e + m_true)
        beta, m = fit_logit_curve(rewards, probs)
        assert beta == pytest.approx(beta_true, rel=0.05)
        assert m == pytest.approx(m_true, rel=0.15)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_logit_curve([1.0, 2.0], [0.1])
        with pytest.raises(ValueError):
            fit_logit_curve([1.0, 2.0], [0.1, 0.2])
