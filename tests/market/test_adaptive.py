"""Tests for the adaptive arrival-rate predictor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.market.adaptive import AdaptiveRatePredictor


@pytest.fixture
def predictor():
    return AdaptiveRatePredictor(np.array([100.0, 200.0, 150.0, 100.0]))


class TestObservation:
    def test_starts_neutral(self, predictor):
        assert predictor.factor == 1.0
        assert predictor.num_observations == 0

    def test_underdelivery_lowers_factor(self, predictor):
        predictor.observe(0, 50.0)  # half the forecast
        assert predictor.factor < 1.0

    def test_overdelivery_raises_factor(self, predictor):
        predictor.observe(0, 200.0)
        assert predictor.factor > 1.0

    def test_converges_to_consistent_ratio(self):
        predictor = AdaptiveRatePredictor(np.full(50, 100.0), smoothing=0.4)
        for t in range(50):
            predictor.observe(t, 55.0)
        assert predictor.factor == pytest.approx(0.55, abs=0.02)

    def test_noise_averages_out(self, rng):
        predictor = AdaptiveRatePredictor(np.full(200, 100.0), smoothing=0.2)
        for t in range(200):
            predictor.observe(t, float(rng.poisson(100.0)))
        assert predictor.factor == pytest.approx(1.0, abs=0.1)

    def test_clamping(self):
        predictor = AdaptiveRatePredictor(
            np.full(5, 100.0), smoothing=1.0, min_factor=0.5, max_factor=2.0
        )
        predictor.observe(0, 0.0)
        assert predictor.factor == 0.5
        predictor.observe(1, 10_000.0)
        assert predictor.factor == 2.0

    def test_zero_forecast_interval_skipped(self):
        predictor = AdaptiveRatePredictor(np.array([0.0, 100.0]))
        predictor.observe(0, 42.0)
        assert predictor.factor == 1.0
        assert predictor.num_observations == 0

    def test_validation(self, predictor):
        with pytest.raises(ValueError):
            predictor.observe(99, 10.0)
        with pytest.raises(ValueError):
            predictor.observe(0, -1.0)


class TestCorrectedMeans:
    def test_scaling_and_slicing(self, predictor):
        predictor.observe(0, 50.0)
        corrected = predictor.corrected_means(from_interval=1)
        expected = np.array([200.0, 150.0, 100.0]) * predictor.factor
        assert np.allclose(corrected, expected)

    def test_bounds_checked(self, predictor):
        with pytest.raises(ValueError):
            predictor.corrected_means(from_interval=5)

    def test_reset(self, predictor):
        predictor.observe(0, 10.0)
        predictor.reset()
        assert predictor.factor == 1.0
        assert predictor.num_observations == 0


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveRatePredictor(np.array([]))
        with pytest.raises(ValueError):
            AdaptiveRatePredictor(np.array([-1.0]))
        with pytest.raises(ValueError):
            AdaptiveRatePredictor(np.array([1.0]), smoothing=1.5)
        with pytest.raises(ValueError):
            AdaptiveRatePredictor(np.array([1.0]), min_factor=0.0)
        with pytest.raises(ValueError):
            AdaptiveRatePredictor(np.array([1.0]), min_factor=2.0, max_factor=1.0)
