"""Tests for arrival-rate functions and their exact integration."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.market.rates import (
    ConstantRate,
    PeriodicRate,
    PiecewiseConstantRate,
    ScaledRate,
    ShiftedRate,
    SummedRate,
)


def numeric_integral(rate, s, t, steps=20000):
    grid = np.linspace(s, t, steps)
    values = np.array([rate.rate(x) for x in grid])
    return float(np.trapezoid(values, grid))


class TestConstantRate:
    def test_integral_linear(self):
        rate = ConstantRate(5.0)
        assert rate.integral(1.0, 4.0) == pytest.approx(15.0)

    def test_mean_rate(self):
        assert ConstantRate(5.0).mean_rate(0.0, 10.0) == pytest.approx(5.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantRate(-1.0)

    def test_reversed_interval_rejected(self):
        with pytest.raises(ValueError):
            ConstantRate(1.0).integral(2.0, 1.0)

    def test_mean_rate_degenerate_rejected(self):
        with pytest.raises(ValueError):
            ConstantRate(1.0).mean_rate(1.0, 1.0)


class TestPiecewiseConstantRate:
    def test_rate_lookup(self):
        rate = PiecewiseConstantRate([0.0, 1.0, 3.0], [2.0, 5.0])
        assert rate.rate(0.5) == 2.0
        assert rate.rate(1.0) == 5.0
        assert rate.rate(2.9) == 5.0
        assert rate.rate(-0.1) == 0.0
        assert rate.rate(3.0) == 0.0

    def test_integral_exact(self):
        rate = PiecewiseConstantRate([0.0, 1.0, 3.0], [2.0, 5.0])
        assert rate.integral(0.0, 3.0) == pytest.approx(12.0)
        assert rate.integral(0.5, 2.0) == pytest.approx(0.5 * 2 + 1.0 * 5)
        assert rate.integral(-5.0, 10.0) == pytest.approx(12.0)

    def test_from_uniform_bins(self):
        rate = PiecewiseConstantRate.from_uniform_bins(0.5, [1.0, 2.0, 3.0])
        assert rate.span == pytest.approx(1.5)
        assert rate.integral(0.0, 1.5) == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PiecewiseConstantRate([0.0], [])
        with pytest.raises(ValueError):
            PiecewiseConstantRate([0.0, 1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            PiecewiseConstantRate([0.0, 0.0], [1.0])
        with pytest.raises(ValueError):
            PiecewiseConstantRate([0.0, 1.0], [-1.0])

    @given(
        st.lists(st.floats(min_value=0.0, max_value=50.0), min_size=1, max_size=10),
        st.floats(min_value=0.0, max_value=5.0),
        st.floats(min_value=0.0, max_value=5.0),
        st.floats(min_value=0.0, max_value=5.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_integral_additive(self, values, a, b, c):
        rate = PiecewiseConstantRate.from_uniform_bins(0.7, values)
        lo, mid, hi = sorted((a, b, c))
        total = rate.integral(lo, hi)
        split = rate.integral(lo, mid) + rate.integral(mid, hi)
        assert total == pytest.approx(split, abs=1e-9)


class TestPeriodicRate:
    def test_wraps(self):
        base = PiecewiseConstantRate([0.0, 1.0, 2.0], [1.0, 3.0])
        periodic = PeriodicRate(base, 2.0)
        assert periodic.rate(2.5) == 1.0
        assert periodic.rate(3.5) == 3.0
        assert periodic.rate(-0.5) == 3.0  # negative wraps too

    def test_integral_multiple_periods(self):
        base = PiecewiseConstantRate([0.0, 1.0, 2.0], [1.0, 3.0])
        periodic = PeriodicRate(base, 2.0)
        assert periodic.integral(0.0, 6.0) == pytest.approx(12.0)
        assert periodic.integral(0.5, 4.5) == pytest.approx(
            numeric_integral(periodic, 0.5, 4.5), rel=1e-3
        )

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            PeriodicRate(ConstantRate(1.0), 0.0)


class TestCombinators:
    def test_scaled(self):
        scaled = ScaledRate(ConstantRate(4.0), 0.25)
        assert scaled.rate(0.0) == 1.0
        assert scaled.integral(0.0, 2.0) == pytest.approx(2.0)

    def test_scaled_via_method(self):
        assert ConstantRate(4.0).scaled(2.0).rate(0.0) == 8.0

    def test_scaled_rejects_negative(self):
        with pytest.raises(ValueError):
            ScaledRate(ConstantRate(1.0), -0.5)

    def test_summed(self):
        total = SummedRate([ConstantRate(1.0), ConstantRate(2.0)])
        assert total.rate(0.0) == 3.0
        assert total.integral(0.0, 2.0) == pytest.approx(6.0)

    def test_summed_via_operator(self):
        total = ConstantRate(1.0) + ConstantRate(2.0)
        assert total.rate(5.0) == 3.0

    def test_summed_rejects_empty(self):
        with pytest.raises(ValueError):
            SummedRate([])

    def test_shifted(self):
        base = PiecewiseConstantRate([0.0, 1.0, 2.0], [1.0, 3.0])
        shifted = ShiftedRate(base, 1.0)
        assert shifted.rate(0.0) == 3.0
        assert shifted.integral(0.0, 1.0) == pytest.approx(3.0)
        assert shifted.integral(-1.0, 1.0) == pytest.approx(4.0)

    def test_reprs(self):
        assert "ConstantRate" in repr(ConstantRate(1.0))
        assert "PiecewiseConstantRate" in repr(
            PiecewiseConstantRate([0.0, 1.0], [1.0])
        )
        assert "PeriodicRate" in repr(PeriodicRate(ConstantRate(1.0), 1.0))
        assert "ShiftedRate" in repr(ShiftedRate(ConstantRate(1.0), 1.0))
