"""The serialization-inert contract: live ops scraping never perturbs a run.

The ops plane is wall-clock-tolerant by design (scrape timing is
nondeterministic), so the determinism guarantee it must honor is
*serialization inertness*: with the full observability stack wired —
event log, tracer, metrics registry with phase timings, and a live
:class:`~repro.obs.ops.OpsServer` being scraped mid-run — every
deterministic artifact (engine result, serving telemetry, checkpoint
bundles, golden payloads) stays byte-identical to the dark run.
``scripts/regen_golden.py`` enforces the same contract as a regen
precondition; this suite localizes a violation.
"""

from __future__ import annotations

import json
import pathlib
import urllib.error
import urllib.request

from repro.obs import EventLog, MetricsRegistry, Tracer
from repro.obs.ops import OpsServer
from repro.serve import Gateway, LoadGenerator
from tests.golden.cases import run_serve_case
from tests.serve.conftest import NUM_INTERVALS, make_engine

SEED = 5
TRACE = LoadGenerator(
    NUM_INTERVALS, seed=11, clients=3, rate=2.0, think=1,
).trace("open")


def _scraping_on_tick(ops: OpsServer, every: int = 4):
    """An ``on_tick`` hook that scrapes every endpoint mix periodically."""
    state = {"tick": 0}

    def on_tick(_gateway) -> bool:
        state["tick"] += 1
        if state["tick"] % every == 0:
            for path in ("/metrics", "/healthz", "/readyz", "/tenants", "/slo"):
                try:
                    urllib.request.urlopen(ops.address + path, timeout=5).read()
                except urllib.error.HTTPError:
                    pass  # a 503 is still a served scrape
        return True

    return on_tick


def _bundle_state(bundle: pathlib.Path) -> tuple[dict, dict]:
    """A bundle's full logical content: manifest dict + array payloads.

    The array archive is a zip (``.npz``) whose raw bytes carry archive
    timestamps, so the file name (a content hash) and bytes differ run to
    run even when every array is equal — compare the decoded arrays and
    the manifest (with the archive name normalized) instead.
    """
    import numpy as np

    manifest = json.loads((bundle / "manifest.json").read_text())
    arrays_name = manifest.pop("arrays")
    # The one wall-clock field a checkpoint legitimately carries; it
    # differs between any two runs, scraped or dark.
    manifest["clock"].pop("elapsed_seconds", None)
    with np.load(bundle / arrays_name) as archive:
        arrays = {name: archive[name].tolist() for name in archive.files}
    return manifest, arrays


# ----------------------------------------------------------------------
# Golden payloads: instrumented == dark, byte for byte
# ----------------------------------------------------------------------
def test_instrumented_solo_golden_matches_dark():
    dark = run_serve_case("serve_flash_crowd")
    lit = run_serve_case("serve_flash_crowd", instrumented=True)
    assert json.dumps(lit, sort_keys=True) == json.dumps(dark, sort_keys=True)


def test_instrumented_fleet_golden_matches_dark():
    dark = run_serve_case("serve_flash_crowd", num_gateways=2)
    lit = run_serve_case(
        "serve_flash_crowd", num_gateways=2, instrumented=True
    )
    assert json.dumps(lit, sort_keys=True) == json.dumps(dark, sort_keys=True)


# ----------------------------------------------------------------------
# Checkpoint bundles: a scraped run writes the same bytes
# ----------------------------------------------------------------------
def _run_instrumented(tmp_path: pathlib.Path, tag: str, scrape: bool):
    """One fully-wired replay; returns (gateway, bundle dir, log last_seq).

    Both arms wire identical sinks — the only variable is whether a live
    ops server is being scraped while the run progresses.
    """
    log = EventLog(tmp_path / f"{tag}.sqlite")
    gateway = Gateway(
        make_engine(),
        event_log=log,
        tracer=Tracer(),
        metrics=MetricsRegistry(),
    )
    gateway.start(seed=SEED)
    ops = None
    on_tick = None
    if scrape:
        ops = OpsServer(gateway, metrics=gateway.metrics, event_log=log)
        ops.start_in_thread()
        on_tick = _scraping_on_tick(ops)
    try:
        gateway.replay(TRACE, on_tick=on_tick)
        bundle = gateway.save(tmp_path / f"{tag}-bundle")
    finally:
        if ops is not None:
            ops.close()
    last_seq = log.sync()
    log.close()
    return gateway, bundle, last_seq


def test_scraped_run_checkpoints_byte_identically(tmp_path):
    dark_gw, dark_bundle, dark_seq = _run_instrumented(
        tmp_path, "dark", scrape=False
    )
    lit_gw, lit_bundle, lit_seq = _run_instrumented(
        tmp_path, "lit", scrape=True
    )
    assert lit_gw.telemetry == dark_gw.telemetry
    # Scrapes append nothing to the event log...
    assert lit_seq == dark_seq
    # ...and the checkpoint bundles carry identical state: the manifest
    # (gateway extras and event-log high-water mark included) and every
    # serialized engine array.
    lit_manifest, lit_arrays = _bundle_state(lit_bundle)
    dark_manifest, dark_arrays = _bundle_state(dark_bundle)
    assert lit_manifest == dark_manifest
    assert lit_arrays == dark_arrays
