"""The recovery contract: bundle + event log reproduce a killed run."""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.obs import EventLog
from repro.obs.drill import (
    BUNDLE_NAME,
    LOG_NAME,
    build_drill_gateway,
    drill_start_kwargs,
    drill_trace,
    run_drill_child,
    scratch_baseline,
)
from repro.obs.recovery import (
    bundle_event_seq,
    checkpoint_records,
    reconstruct_trace,
    recover_serve_run,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def finished_drill(tmp_path_factory):
    """One uninterrupted drill run shared by the cheap assertions."""
    workdir = tmp_path_factory.mktemp("drill")
    telemetry = run_drill_child(workdir, checkpoint_every=5)
    return workdir, telemetry


class TestDrillRun:
    def test_child_writes_final_telemetry(self, finished_drill):
        workdir, telemetry = finished_drill
        on_disk = json.loads((workdir / "final_telemetry.json").read_text())
        assert on_disk == telemetry
        assert "serve" in telemetry and "engine" in telemetry

    def test_log_records_every_offer(self, finished_drill):
        workdir, _ = finished_drill
        reader = EventLog.read(workdir / LOG_NAME)
        num_requests = reader.count("request")
        trace = reconstruct_trace(workdir / LOG_NAME)
        assert trace.num_requests == num_requests > 0
        ticks = [timed.tick for timed in trace.requests]
        assert ticks == sorted(ticks)

    def test_scratch_baseline_matches_uninterrupted_run(self, finished_drill):
        workdir, telemetry = finished_drill
        assert scratch_baseline(workdir / LOG_NAME) == telemetry

    def test_recovery_from_final_bundle_matches(self, finished_drill):
        workdir, telemetry = finished_drill
        gateway = recover_serve_run(workdir / BUNDLE_NAME, workdir / LOG_NAME)
        try:
            assert gateway.telemetry.to_dict() == telemetry
        finally:
            gateway.close()

    def test_checkpoint_records_are_ordered(self, finished_drill):
        workdir, _ = finished_drill
        records = checkpoint_records(workdir / LOG_NAME)
        assert records, "drill saved no checkpoints"
        seqs = [r["seq"] for r in records]
        assert seqs == sorted(seqs)
        for record in records:
            assert record["path"] == str(workdir / BUNDLE_NAME)
            assert record["tick"] % 5 == 0
            assert record["last_seq"] <= record["seq"]
        # The bundle on disk is the newest checkpoint.
        assert bundle_event_seq(workdir / BUNDLE_NAME) == records[-1]["last_seq"]

    def test_tail_reconstruction_skips_bundled_requests(self, finished_drill):
        workdir, _ = finished_drill
        full = reconstruct_trace(workdir / LOG_NAME)
        last_seq = bundle_event_seq(workdir / BUNDLE_NAME)
        tail = reconstruct_trace(workdir / LOG_NAME, since_seq=last_seq)
        assert tail.num_requests < full.num_requests


class TestRecoveryGuards:
    def test_bundle_without_log_has_no_seq(self, tmp_path):
        gateway = build_drill_gateway()
        gateway.start(**drill_start_kwargs())
        for timed in drill_trace().requests[:4]:
            gateway.offer(timed.request, client=timed.client)
        gateway.step()
        bundle = gateway.save(tmp_path / BUNDLE_NAME)
        gateway.close()
        assert bundle_event_seq(bundle) is None

    def test_mid_replay_bundle_rejected(self, tmp_path):
        log = EventLog(tmp_path / LOG_NAME)
        gateway = build_drill_gateway(log)
        gateway.start(**drill_start_kwargs())
        bundle = tmp_path / BUNDLE_NAME

        def stop_and_save(gw):
            if gw.core.clock >= 6:
                gw.save(bundle)
                return False
            return None

        gateway.replay(drill_trace(), on_tick=stop_and_save)
        gateway.close()
        with pytest.raises(ValueError, match="interrupted trace replay"):
            recover_serve_run(bundle, tmp_path / LOG_NAME)

    def test_missing_log_raises(self, finished_drill, tmp_path):
        workdir, _ = finished_drill
        with pytest.raises(FileNotFoundError):
            recover_serve_run(workdir / BUNDLE_NAME, tmp_path / "nope.sqlite")


class TestKillMinusNine:
    """The real drill: SIGKILL a live child, recover, compare bit for bit."""

    TICK_SLEEP = 0.02

    def test_sigkill_recovery_is_bit_identical(self, tmp_path):
        workdir = tmp_path / "drill"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_ROOT / "src")]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        child = subprocess.Popen(
            [
                sys.executable, "-m", "repro.obs.drill", str(workdir),
                "--tick-sleep", str(self.TICK_SLEEP),
            ],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            # Wait for a durable checkpoint, then land the kill at an
            # arbitrary later moment (mid-tick, mid-batch — anywhere).
            for line in child.stdout:
                if line.startswith("CHECKPOINT"):
                    break
                assert not line.startswith("DONE"), (
                    "drill finished before the kill landed; raise TICK_SLEEP"
                )
            else:
                pytest.fail("drill exited without printing a checkpoint")
            time.sleep(3 * self.TICK_SLEEP)
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            child.stdout.close()
            if child.poll() is None:
                child.kill()
                child.wait(timeout=30)

        bundle = workdir / BUNDLE_NAME
        log_path = workdir / LOG_NAME
        assert bundle.exists() and log_path.exists()
        gateway = recover_serve_run(bundle, log_path)
        try:
            recovered = gateway.telemetry.to_dict()
        finally:
            gateway.close()
        assert recovered == scratch_baseline(log_path)
