"""Durable event log: append/flush/sync semantics and the read path."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import EVENT_KINDS, Event, EventLog, MetricsRegistry
from repro.obs.eventlog import EventLogError


class TestEvent:
    def test_kinds_are_pinned(self):
        assert EVENT_KINDS == (
            "admission", "cancel", "tick", "request", "response",
            "checkpoint", "run",
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            Event(kind="mystery", tick=0)

    def test_row_round_trip(self):
        event = Event(
            kind="cancel", tick=7, payload={"result": "dropped"},
            campaign_id="c-1", client="alice", trace_id="req-000003",
        )
        row = (5,) + event.to_row()
        back = Event.from_row(row)
        assert back == Event(
            kind="cancel", tick=7, payload={"result": "dropped"},
            campaign_id="c-1", client="alice", trace_id="req-000003", seq=5,
        )

    def test_payload_serializes_sorted(self):
        event = Event(kind="tick", tick=0, payload={"b": 1, "a": 2})
        assert event.to_row()[-1] == json.dumps(
            {"a": 2, "b": 1}, sort_keys=True
        )


class TestEventLog:
    def test_append_assigns_contiguous_seqs(self, tmp_path):
        log = EventLog(tmp_path / "e.sqlite")
        seqs = [log.log("tick", t, {"n": t}) for t in range(10)]
        # Seqs are 1-based: 0 is the "empty log" sentinel, so last_seq
        # doubles as the event count and ``since=0`` means "everything".
        assert seqs == list(range(1, 11))
        assert log.last_seq == 10
        log.close()

    def test_sync_makes_everything_readable(self, tmp_path):
        path = tmp_path / "e.sqlite"
        log = EventLog(path)
        for t in range(25):
            log.log("tick", t)
        durable = log.sync()
        assert durable == 25
        assert log.durable_seq == 25
        assert [e.seq for e in log.events()] == list(range(1, 26))
        log.close()

    def test_reader_after_close(self, tmp_path):
        path = tmp_path / "e.sqlite"
        log = EventLog(path)
        log.log("run", 0, {"action": "start"})
        log.log("admission", 1, {"campaign_ids": ["a", "b"]})
        log.close()
        reader = EventLog.read(path)
        assert reader.last_seq == 2
        assert reader.count() == 2
        assert reader.count("admission") == 1
        (event,) = reader.events(kind="admission")
        assert event.payload == {"campaign_ids": ["a", "b"]}
        assert event.tick == 1

    def test_read_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            EventLog.read(tmp_path / "nope.sqlite")

    def test_events_since_filters_on_log_seq(self, tmp_path):
        log = EventLog(tmp_path / "e.sqlite")
        for t in range(6):
            log.log("tick", t)
        log.sync()
        assert [e.seq for e in log.events(since=3)] == [4, 5, 6]
        assert [e.tick for e in log.events(since=3)] == [3, 4, 5]
        log.close()

    def test_events_limit(self, tmp_path):
        log = EventLog(tmp_path / "e.sqlite")
        for t in range(9):
            log.log("tick", t)
        log.sync()
        assert len(log.events(limit=4)) == 4
        log.close()

    def test_append_after_close_raises(self, tmp_path):
        log = EventLog(tmp_path / "e.sqlite")
        log.close()
        with pytest.raises(EventLogError):
            log.log("tick", 0)

    def test_reopen_continues_sequence(self, tmp_path):
        """A recovered process appends after the durable prefix."""
        path = tmp_path / "e.sqlite"
        log = EventLog(path)
        for t in range(4):
            log.log("tick", t)
        log.close()
        log2 = EventLog(path)
        assert log2.log("run", 4, {"action": "resume"}) == 5
        log2.sync()
        assert [e.kind for e in log2.events()] == ["tick"] * 4 + ["run"]
        log2.close()

    def test_batched_writer_commits_in_order(self, tmp_path):
        """Durable region is always a contiguous seq prefix."""
        log = EventLog(tmp_path / "e.sqlite", batch_size=16)
        for t in range(300):
            log.log("tick", t, {"t": t})
            if t % 50 == 0:
                log.flush()
        log.sync()
        events = log.events()
        assert [e.seq for e in events] == list(range(1, 301))
        assert [e.payload["t"] for e in events] == list(range(300))
        log.close()

    def test_concurrent_appenders_never_lose_events(self, tmp_path):
        log = EventLog(tmp_path / "e.sqlite", batch_size=32)

        def pump(client):
            for t in range(100):
                log.log("request", t, {"n": t}, client=client)

        threads = [
            threading.Thread(target=pump, args=(f"c{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        log.sync()
        events = log.events()
        assert len(events) == 400
        # Per-client payload order follows append order.
        for i in range(4):
            mine = [e.payload["n"] for e in events if e.client == f"c{i}"]
            assert mine == list(range(100))
        log.close()

    def test_metrics_wiring(self, tmp_path):
        registry = MetricsRegistry()
        log = EventLog(tmp_path / "e.sqlite", metrics=registry)
        for t in range(12):
            log.log("tick", t)
        log.sync()
        snapshot = registry.to_dict()
        appended = snapshot["obs_events_appended_total"]["series"][0]["value"]
        committed = snapshot["obs_events_committed_total"]["series"][0]["value"]
        assert appended == 12
        assert committed == 12
        log.close()

    def test_flush_does_not_block(self, tmp_path):
        log = EventLog(tmp_path / "e.sqlite")
        log.log("tick", 0)
        # flush is a wake-up, not a wait: callable any number of times.
        for _ in range(5):
            log.flush()
        assert log.sync() == 1
        log.close()
