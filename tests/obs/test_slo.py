"""SLO objectives and burn rates: windows, policies, and both offline paths."""

from __future__ import annotations

import math

import pytest

from repro.obs import EventLog, SloPolicy
from repro.obs.slo import (
    availability_slo,
    burn_rate,
    event_log_slo,
    event_log_slo_report,
    latency_slo_from_samples,
    render_slo_report,
    telemetry_slo_report,
)


class TestPolicy:
    def test_defaults(self):
        policy = SloPolicy()
        assert policy.availability_objective == 0.99
        assert policy.windows == (8, 32, 128)

    @pytest.mark.parametrize("objective", [0.0, 1.0, -0.5, 1.5])
    def test_objectives_must_be_fractions(self, objective):
        with pytest.raises(ValueError, match="inside"):
            SloPolicy(availability_objective=objective)

    @pytest.mark.parametrize("windows", [(), (0,), (8, 8), (32, 8)])
    def test_windows_strictly_increasing(self, windows):
        with pytest.raises(ValueError, match="strictly increasing"):
            SloPolicy(windows=windows)

    def test_to_dict_is_json_ready(self):
        data = SloPolicy(windows=(4, 16)).to_dict()
        assert data["windows"] == [4, 16]
        assert data["latency_target_ticks"] == 2


class TestBurnRate:
    def test_no_evidence_is_none(self):
        assert burn_rate(0, 0, 0.99) is None

    def test_exact_budget_burns_at_one(self):
        # objective 0.99 -> 1% budget; 1 bad in 100 consumes it exactly.
        assert burn_rate(1, 100, 0.99) == pytest.approx(1.0)

    def test_clean_window_burns_zero(self):
        assert burn_rate(0, 50, 0.99) == 0.0

    def test_ten_times_budget(self):
        assert burn_rate(10, 100, 0.99) == pytest.approx(10.0)

    def test_zero_budget_objective(self):
        # A 100% objective has no error budget: any failure burns at
        # infinity, a clean window still reads zero.
        assert burn_rate(0, 10, 1.0) == 0.0
        assert burn_rate(1, 10, 1.0) == math.inf


class TestAvailability:
    def test_windows_are_trailing_ticks(self):
        # 10 clean ticks, then 2 ticks of heavy rejection.
        admitted = [5] * 10 + [1, 1]
        rejected = [0] * 10 + [4, 4]
        report = availability_slo(
            admitted, rejected, SloPolicy(windows=(2, 8, 32))
        )
        fast = report["windows"]["2"]
        assert fast == {
            "window": 2, "bad": 8, "total": 10,
            "error_rate": pytest.approx(0.8),
            "burn_rate": pytest.approx(80.0),
        }
        slow = report["windows"]["32"]
        assert slow["total"] == 60
        assert slow["bad"] == 8

    def test_burning_requires_every_window_with_evidence(self):
        # Fast window burning, slow window healthy -> not "burning"
        # (the multi-window rule suppresses short blips).
        admitted = [100] * 30 + [0]
        rejected = [0] * 30 + [2]
        report = availability_slo(
            admitted, rejected, SloPolicy(windows=(1, 16))
        )
        assert report["windows"]["1"]["burn_rate"] > 1.0
        assert report["windows"]["16"]["burn_rate"] < 1.0
        assert report["burning"] is False

    def test_sustained_burn_trips(self):
        report = availability_slo(
            [1] * 40, [1] * 40, SloPolicy(windows=(8, 32))
        )
        assert report["burning"] is True


class TestLatencySamples:
    def test_percentiles_and_bad_counts(self):
        samples = [0.001] * 98 + [0.5, 0.9]  # seconds
        report = latency_slo_from_samples(
            samples, SloPolicy(windows=(10, 100), latency_target_ms=250.0)
        )
        assert report["p50_ms"] == pytest.approx(1.0)
        # Nearest-rank p99 of 100 samples is the 99th sorted value.
        assert report["p99_ms"] == pytest.approx(500.0)
        assert report["windows"]["10"]["bad"] == 2
        assert report["windows"]["100"]["bad"] == 2
        assert report["windows"]["100"]["total"] == 100

    def test_short_history_truncates_totals(self):
        report = latency_slo_from_samples(
            [0.001] * 5, SloPolicy(windows=(8, 32))
        )
        assert report["windows"]["8"]["total"] == 5
        assert report["windows"]["32"]["total"] == 5


class TestEventLogSlo:
    def _write_log(self, path, rows):
        log = EventLog(path)
        for kind, tick, payload, client in rows:
            log.log(kind, tick, payload, client=client)
        log.close()

    def test_latency_joins_request_to_response_in_ticks(self, tmp_path):
        path = tmp_path / "events.sqlite"
        self._write_log(path, [
            ("request", 0, {"seq": 0, "request": {"type": "submit-campaign"}}, "a"),
            ("response", 1, {"seq": 0, "kind": "submit-campaign", "status": "ok"}, "a"),
            ("request", 1, {"seq": 1, "request": {"type": "submit-campaign"}}, "a"),
            ("response", 9, {"seq": 1, "kind": "submit-campaign", "status": "ok"}, "a"),
        ])
        report = event_log_slo(
            path, SloPolicy(windows=(4, 16), latency_target_ticks=2)
        )
        # Window of 16 trailing ticks sees both; only the 8-tick join is bad.
        wide = report["latency"]["windows"]["16"]
        assert wide["total"] == 2
        assert wide["bad"] == 1

    def test_rejected_submission_is_availability_bad(self, tmp_path):
        path = tmp_path / "events.sqlite"
        self._write_log(path, [
            ("request", 0, {"seq": 0, "request": {"type": "submit-campaign"}}, "a"),
            ("response", 1, {"seq": 0, "kind": "submit-campaign",
                             "status": "rejected"}, "a"),
            ("request", 0, {"seq": 1, "request": {"type": "quote"}}, "a"),
            ("response", 0, {"seq": 1, "kind": "quote", "status": "ok"}, "a"),
        ])
        report = event_log_slo(path, SloPolicy(windows=(8,)))
        window = report["availability"]["windows"]["8"]
        # Only the submission counts toward availability; the quote does not.
        assert window == {
            "window": 8, "bad": 1, "total": 1,
            "error_rate": 1.0, "burn_rate": pytest.approx(100.0),
        }

    def test_fleet_safe_join_key_is_client_and_seq(self, tmp_path):
        # Two fleet members mint the same ticket seq for different
        # clients; the (client, seq) join must keep the pairs apart.
        path = tmp_path / "events.sqlite"
        self._write_log(path, [
            ("request", 0, {"seq": 0, "request": {"type": "submit-campaign"}}, "a"),
            ("request", 4, {"seq": 0, "request": {"type": "submit-campaign"}}, "b"),
            ("response", 1, {"seq": 0, "kind": "submit-campaign", "status": "ok"}, "a"),
            ("response", 5, {"seq": 0, "kind": "submit-campaign", "status": "ok"}, "b"),
        ])
        report = event_log_slo(
            path, SloPolicy(windows=(16,), latency_target_ticks=2)
        )
        window = report["latency"]["windows"]["16"]
        # Joined per client both latencies are 1 tick; a seq-only join
        # would compute 5 - 0 for client b and flag it bad.
        assert window["total"] == 2
        assert window["bad"] == 0


class TestReports:
    def test_telemetry_report_availability_only(self):
        data = {"serve": {"admitted": [3, 3, 3], "rejected": [0, 0, 3]}}
        report = telemetry_slo_report(data, SloPolicy(windows=(2, 8)))
        assert report["source"] == "telemetry"
        assert "latency" not in report
        assert report["availability"]["windows"]["2"]["bad"] == 3

    def test_event_log_report_renders(self, tmp_path):
        path = tmp_path / "events.sqlite"
        log = EventLog(path)
        log.log("request", 0,
                {"seq": 0, "request": {"type": "submit-campaign"}}, client="c")
        log.log("response", 1,
                {"seq": 0, "kind": "submit-campaign", "status": "ok"},
                client="c")
        log.close()
        report = event_log_slo_report(path)
        text = render_slo_report(report)
        assert "source        : event-log" in text
        assert "availability" in text
        assert "burn" in text
