"""Metrics registry: instrument semantics and both export formats."""

from __future__ import annotations

import json

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.metrics import get_registry, set_registry


class TestInstruments:
    def test_counter_monotone(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_gauge_both_ways(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13.0

    def test_histogram_buckets_are_per_bucket_not_cumulative(self):
        hist = Histogram(buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.6, 3.0, 100.0):
            hist.observe(value)
        # Internal storage is one bucket per observation; the +Inf-only
        # observation (100.0) lands in no finite bucket.
        assert hist.bucket_counts == [1, 2, 1]
        assert hist.count == 5
        assert hist.sum == pytest.approx(106.6)

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())
        with pytest.raises(ValueError):
            Histogram(buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=(1.0, float("inf")))


class TestRegistry:
    def test_get_or_create_identity(self):
        registry = MetricsRegistry()
        a = registry.counter("requests_total")
        b = registry.counter("requests_total")
        assert a is b

    def test_labels_are_distinct_series(self):
        registry = MetricsRegistry()
        ok = registry.counter("responses", labels={"status": "ok"})
        rejected = registry.counter("responses", labels={"status": "rejected"})
        assert ok is not rejected
        ok.inc(3)
        rejected.inc()
        series = registry.to_dict()["responses"]["series"]
        assert {tuple(s["labels"].items()): s["value"] for s in series} == {
            (("status", "ok"),): 3.0,
            (("status", "rejected"),): 1.0,
        }

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("depth")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("depth")

    def test_invalid_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("bad-name")

    def test_prometheus_histogram_is_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "phase_seconds", help="per-phase", buckets=(1.0, 2.0, 4.0)
        )
        for value in (0.5, 1.5, 1.6, 3.0, 100.0):
            hist.observe(value)
        text = registry.to_prometheus()
        assert 'phase_seconds_bucket{le="1"} 1' in text
        assert 'phase_seconds_bucket{le="2"} 3' in text
        assert 'phase_seconds_bucket{le="4"} 4' in text
        assert 'phase_seconds_bucket{le="+Inf"} 5' in text
        assert "phase_seconds_count 5" in text
        assert "# HELP phase_seconds per-phase" in text
        assert "# TYPE phase_seconds histogram" in text

    def test_prometheus_labelled_counter(self):
        registry = MetricsRegistry()
        registry.counter("reqs", labels={"kind": "quote"}).inc(7)
        assert 'reqs{kind="quote"} 7' in registry.to_prometheus()

    def test_json_round_trips(self):
        registry = MetricsRegistry()
        registry.gauge("queue_depth", help="queued").set(4)
        data = json.loads(registry.to_json())
        assert data["queue_depth"]["kind"] == "gauge"
        assert data["queue_depth"]["series"][0]["value"] == 4.0

    def test_save_prom_vs_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("total").inc()
        prom = registry.save(tmp_path / "metrics.prom")
        js = registry.save(tmp_path / "metrics.json")
        assert prom.read_text().startswith("# TYPE total counter")
        assert json.loads(js.read_text())["total"]["kind"] == "counter"

    def test_clear(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.clear()
        assert registry.to_dict() == {}

    def test_default_registry_swap(self):
        replacement = MetricsRegistry()
        previous = set_registry(replacement)
        try:
            assert get_registry() is replacement
        finally:
            set_registry(previous)
        assert get_registry() is previous


class TestPrometheusEscaping:
    """Label values are client-controlled (tenant names reach the
    exposition verbatim), so the writer must escape per the text-format
    spec: backslash, double quote, and newline in label values;
    backslash and newline in HELP text."""

    def test_hostile_tenant_label_round_trips(self):
        registry = MetricsRegistry()
        hostile = 'acme"corp\\prod\nstaging'
        registry.counter(
            "serve_tenant_admitted_total", labels={"tenant": hostile}
        ).inc(3)
        text = registry.to_prometheus()
        expected = (
            'serve_tenant_admitted_total'
            '{tenant="acme\\"corp\\\\prod\\nstaging"} 3'
        )
        assert expected in text
        # One line per sample survives: the raw newline never splits it.
        sample_lines = [
            line for line in text.splitlines()
            if line.startswith("serve_tenant_admitted_total{")
        ]
        assert len(sample_lines) == 1

    def test_backslash_escaped_before_quote(self):
        # Escaping the quote first would double-escape: \" -> \\".
        registry = MetricsRegistry()
        registry.gauge("g", labels={"t": '\\"'}).set(1)
        assert 'g{t="\\\\\\""} 1' in registry.to_prometheus()

    def test_help_text_escapes_newline_and_backslash(self):
        registry = MetricsRegistry()
        registry.counter("c", help="line one\nline \\ two").inc()
        text = registry.to_prometheus()
        assert "# HELP c line one\\nline \\\\ two" in text
        assert text.count("# HELP c ") == 1

    def test_plain_labels_unchanged(self):
        registry = MetricsRegistry()
        registry.counter("reqs", labels={"kind": "quote"}).inc(2)
        assert 'reqs{kind="quote"} 2' in registry.to_prometheus()

    def test_multiple_labels_sorted_and_escaped_independently(self):
        registry = MetricsRegistry()
        registry.counter(
            "c", labels={"b": 'x"y', "a": "plain"}
        ).inc()
        text = registry.to_prometheus()
        assert 'c{a="plain",b="x\\"y"} 1' in text
