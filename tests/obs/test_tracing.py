"""Tracing and tick-phase timing: spans, ids, and the engine wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import MarketplaceEngine, ShardedEngine, generate_workload
from repro.engine.clock import PhaseTimings
from repro.market.acceptance import paper_acceptance_model
from repro.obs import MetricsRegistry, Span, Tracer
from repro.obs.tracing import trace_id_for_seq
from repro.sim.stream import SharedArrivalStream

NUM_INTERVALS = 24


def make_engine(num_shards: int = 0, executor: str = "serial"):
    means = 700.0 + 150.0 * np.sin(
        np.linspace(0.0, 2.0 * np.pi, NUM_INTERVALS)
    )
    if num_shards:
        return ShardedEngine(
            SharedArrivalStream(means), paper_acceptance_model(),
            num_shards=num_shards, executor=executor, planning="stationary",
        )
    return MarketplaceEngine(
        SharedArrivalStream(means), paper_acceptance_model(),
        planning="stationary",
    )


class TestTraceIds:
    def test_derived_from_seq(self):
        assert trace_id_for_seq(0) == "req-000000"
        assert trace_id_for_seq(42) == "req-000042"
        assert trace_id_for_seq(1234567) == "req-1234567"

    def test_deterministic(self):
        assert trace_id_for_seq(7) == trace_id_for_seq(7)


class TestTracer:
    def test_span_lifecycle(self):
        tracer = Tracer()
        span = tracer.start_span("request", "req-000001", attrs={"kind": "quote"})
        assert tracer.num_open == 1
        assert tracer.num_finished == 0
        tracer.finish_span(span, {"status": "ok"})
        assert tracer.num_open == 0
        assert tracer.num_finished == 1
        assert span.duration_s is not None and span.duration_s >= 0
        assert span.attrs == {"kind": "quote", "status": "ok"}

    def test_finish_is_idempotent(self):
        tracer = Tracer()
        span = tracer.start_span("tick", "tick-0")
        tracer.finish_span(span)
        first = span.duration_s
        span.finish()
        assert span.duration_s == first

    def test_ring_bounds_memory(self):
        tracer = Tracer(max_spans=8)
        for i in range(20):
            tracer.finish_span(tracer.start_span("request", f"req-{i:06d}"))
        assert tracer.num_finished == 8
        assert tracer.total_started == 20
        kept = [s.trace_id for s in tracer.spans()]
        assert kept == [f"req-{i:06d}" for i in range(12, 20)]

    def test_bad_max_spans(self):
        with pytest.raises(ValueError, match="max_spans"):
            Tracer(max_spans=0)

    def test_trace_filter_and_parents(self):
        tracer = Tracer()
        root = tracer.start_span("tick", "tick-3")
        child = tracer.start_span("request", "tick-3", parent_id=root.span_id)
        tracer.finish_span(child)
        tracer.finish_span(root)
        trace = tracer.trace("tick-3")
        assert [s["name"] for s in trace] == ["request", "tick"]
        assert trace[0]["parent_id"] == root.span_id
        assert tracer.spans("other") == []

    def test_save(self, tmp_path):
        tracer = Tracer()
        tracer.finish_span(tracer.start_span("request", "req-000000"))
        path = tracer.save(tmp_path / "spans.json")
        import json

        data = json.loads(path.read_text())
        assert data["total_started"] == 1
        assert data["spans"][0]["trace_id"] == "req-000000"

    def test_span_dataclass_shape(self):
        span = Span(
            span_id="s-0", trace_id="t", name="n", parent_id=None,
            started_at=0.0,
        )
        assert span.to_dict()["duration_s"] is None


class TestPhaseTimings:
    def test_phases_are_pinned(self):
        assert PhaseTimings.PHASES == (
            "admission", "price", "split", "observe", "retire",
        )

    def test_record_and_tick_done(self):
        timings = PhaseTimings()
        timings.record("price", 0.5)
        timings.record("price", 0.25)
        timings.record("retire", 0.1)
        last = timings.tick_done()
        assert last["price"] == pytest.approx(0.75)
        assert last["retire"] == pytest.approx(0.1)
        assert timings.ticks == 1
        # last resets per tick, totals accumulate.
        timings.record("price", 1.0)
        assert timings.tick_done()["price"] == pytest.approx(1.0)
        assert timings.totals["price"] == pytest.approx(1.75)
        assert timings.mean_seconds()["price"] == pytest.approx(0.875)

    def test_unknown_phase_rejected(self):
        with pytest.raises(ValueError, match="unknown phase"):
            PhaseTimings().record("teardown", 0.1)

    def test_metrics_histograms(self):
        registry = MetricsRegistry()
        timings = PhaseTimings(metrics=registry)
        timings.record("observe", 0.0002)
        text = registry.to_prometheus()
        assert 'engine_tick_phase_seconds_count{phase="observe"} 1' in text


class TestEnginePhaseTimings:
    @pytest.mark.parametrize("num_shards", [0, 2])
    def test_tick_records_every_backend_phase(self, num_shards):
        engine = make_engine(num_shards)
        engine.submit(generate_workload(6, NUM_INTERVALS, seed=5))
        core = engine.start(seed=5)
        timings = core.enable_phase_timings()
        assert core.phase_timings is timings
        while not core.done:
            core.tick()
        engine.close()
        assert timings.ticks > 0
        for phase in PhaseTimings.PHASES:
            assert timings.totals[phase] > 0.0, f"{phase} never recorded"
        summary = timings.summary()
        assert "admission" in summary and "observe" in summary

    def test_timings_do_not_change_results(self):
        def run(enable):
            engine = make_engine()
            engine.submit(generate_workload(6, NUM_INTERVALS, seed=5))
            core = engine.start(seed=5)
            if enable:
                core.enable_phase_timings()
            while not core.done:
                core.tick()
            result = core.result()
            engine.close()
            import dataclasses

            return dataclasses.replace(result, elapsed_seconds=0.0)

        assert run(True) == run(False)

    def test_disable_detaches_backend_sink(self):
        engine = make_engine()
        engine.submit(generate_workload(3, NUM_INTERVALS, seed=5))
        core = engine.start(seed=5)
        timings = core.enable_phase_timings()
        core.tick()
        ticks_before = timings.ticks
        core.disable_phase_timings()
        core.tick()
        assert timings.ticks == ticks_before
        assert core.phase_timings is None
        engine.close()


class TestShardPhaseTimings:
    """Per-shard phase attribution — every executor, including procpool.

    The aggregate ``price``/``split``/``observe`` timers include
    coordination and IPC wait; ``shard_totals`` must isolate each
    shard's own compute, which for ``executor="process"`` means the
    worker measures itself and ships the elapsed seconds back inside
    its normal reply.
    """

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_every_executor_attributes_all_shard_phases(self, executor):
        engine = make_engine(num_shards=2, executor=executor)
        engine.submit(generate_workload(6, NUM_INTERVALS, seed=5))
        core = engine.start(seed=5)
        timings = core.enable_phase_timings()
        while not core.done:
            core.tick()
        engine.close()
        assert sorted(timings.shard_totals) == [0, 1]
        for shard, totals in timings.shard_totals.items():
            assert sorted(totals) == sorted(PhaseTimings.SHARD_PHASES)
            for phase, seconds in totals.items():
                assert seconds > 0.0, f"shard {shard} {phase} never timed"

    def test_shard_metrics_series_per_shard_and_phase(self):
        registry = MetricsRegistry()
        engine = make_engine(num_shards=2, executor="process")
        engine.submit(generate_workload(6, NUM_INTERVALS, seed=5))
        core = engine.start(seed=5)
        core.enable_phase_timings(PhaseTimings(metrics=registry))
        while not core.done:
            core.tick()
        engine.close()
        text = registry.to_prometheus()
        for shard in ("0", "1"):
            for phase in PhaseTimings.SHARD_PHASES:
                assert (
                    f'engine_shard_phase_seconds_count'
                    f'{{phase="{phase}",shard="{shard}"}}'
                ) in text

    def test_worker_timing_does_not_change_results(self):
        import dataclasses

        def run(enable):
            engine = make_engine(num_shards=2, executor="process")
            engine.submit(generate_workload(6, NUM_INTERVALS, seed=5))
            core = engine.start(seed=5)
            if enable:
                core.enable_phase_timings()
            while not core.done:
                core.tick()
            result = core.result()
            engine.close()
            return dataclasses.replace(result, elapsed_seconds=0.0)

        assert run(True) == run(False)
