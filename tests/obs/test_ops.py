"""The live ops plane: endpoint dispatch, readiness checks, live scrapes."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.engine.campaign import CampaignSpec
from repro.obs import EventLog, MetricsRegistry
from repro.obs.ops import ENDPOINTS, OpsServer
from repro.serve import Gateway, SubmitCampaign
from tests.serve.conftest import make_engine


def spec(cid: str, submit: int = 0) -> CampaignSpec:
    return CampaignSpec(
        campaign_id=cid, kind="deadline", num_tasks=10,
        submit_interval=submit, horizon_intervals=6, max_price=25,
    )


def started_gateway(**kwargs) -> Gateway:
    gateway = Gateway(make_engine(), **kwargs)
    gateway.start(seed=3)
    return gateway


def body_of(reply: tuple[int, str, str]) -> dict:
    return json.loads(reply[2])


# ----------------------------------------------------------------------
# Pure dispatch (no sockets)
# ----------------------------------------------------------------------
class TestDispatch:
    def test_index_lists_endpoints(self):
        status, content_type, body = OpsServer().handle("/")
        assert status == 200
        assert json.loads(body)["endpoints"] == list(ENDPOINTS)

    def test_unknown_path_is_404(self):
        status, _, body = OpsServer().handle("/nope")
        assert status == 404
        assert "/metrics" in json.loads(body)["endpoints"]

    def test_query_strings_are_ignored(self):
        status, _, _ = OpsServer().handle("/healthz?verbose=1")
        assert status == 200

    def test_metrics_without_registry_is_404(self):
        status, _, body = OpsServer().handle("/metrics")
        assert status == 404
        assert "registry" in json.loads(body)["error"]

    def test_tenants_and_slo_need_a_target(self):
        ops = OpsServer(metrics=MetricsRegistry())
        assert ops.handle("/tenants")[0] == 404
        assert ops.handle("/slo")[0] == 404


class TestMetricsEndpoint:
    def test_scrape_refreshes_gauges_from_live_state(self):
        gateway = started_gateway()
        gateway.offer(SubmitCampaign(spec("a")))
        gateway.step()
        gateway.offer(SubmitCampaign(spec("b", submit=2)))  # still queued
        ops = OpsServer(gateway, metrics=MetricsRegistry())
        status, content_type, body = ops.handle("/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        assert 'serve_queue_depth 1' in body.replace("serve_queue_depth 1.0",
                                                     "serve_queue_depth 1")
        assert "engine_live_campaigns 1" in body
        assert "engine_clock_interval 1" in body

    def test_event_log_backlog_gauge(self, tmp_path):
        log = EventLog(tmp_path / "events.sqlite")
        log.log("tick", 0, {})
        ops = OpsServer(metrics=MetricsRegistry(), event_log=log)
        _, _, body = ops.handle("/metrics")
        assert "eventlog_buffered_events 1" in body
        log.close()


# ----------------------------------------------------------------------
# Health and readiness
# ----------------------------------------------------------------------
class TestHealth:
    def test_healthz_without_target_is_still_alive(self):
        reply = OpsServer().handle("/healthz")
        assert reply[0] == 200
        body = body_of(reply)
        assert body["status"] == "alive"
        assert body["started"] is False
        assert body["clock"] is None

    def test_healthz_reports_live_clock(self):
        gateway = started_gateway()
        gateway.offer(SubmitCampaign(spec("a")))
        gateway.step()
        body = body_of(OpsServer(gateway).handle("/healthz"))
        assert body["started"] is True
        assert body["clock"] == 1
        assert body["live"] == 1

    def test_readyz_rejects_an_unstarted_gateway(self):
        gateway = Gateway(make_engine())
        reply = OpsServer(gateway).handle("/readyz")
        assert reply[0] == 503
        body = body_of(reply)
        assert body["ready"] is False
        assert body["checks"]["session"]["ok"] is False

    def test_readyz_passes_on_a_healthy_gateway(self):
        reply = OpsServer(started_gateway()).handle("/readyz")
        assert reply[0] == 200
        body = body_of(reply)
        assert body["ready"] is True
        assert all(check["ok"] for check in body["checks"].values())
        # In-process executor: the shard check degrades to a no-op.
        assert body["checks"]["shards"]["workers"] is None

    def test_readyz_full_queue_is_503(self):
        gateway = started_gateway(max_queue=2)
        gateway.offer(SubmitCampaign(spec("a")))
        gateway.offer(SubmitCampaign(spec("b")))
        reply = OpsServer(gateway).handle("/readyz")
        assert reply[0] == 503
        body = body_of(reply)
        assert body["checks"]["queue"]["ok"] is False
        assert body["checks"]["queue"]["depth"] == 2

    def test_readyz_event_log_writer(self, tmp_path):
        log = EventLog(tmp_path / "events.sqlite")
        reply = OpsServer(started_gateway(), event_log=log).handle("/readyz")
        assert body_of(reply)["checks"]["event_log"]["ok"] is True
        log.close()


# ----------------------------------------------------------------------
# Tenants and SLO views
# ----------------------------------------------------------------------
class TestTenantView:
    def test_tenants_merge_queue_ledger_and_telemetry(self):
        gateway = started_gateway(tenant_weights={"acme": 2.0, "beta": 1.0})
        gateway.offer(SubmitCampaign(spec("a0")), tenant="acme")
        gateway.step()
        gateway.offer(SubmitCampaign(spec("b0", submit=2)), tenant="beta")
        body = body_of(OpsServer(gateway).handle("/tenants"))
        tenants = body["tenants"]
        assert set(tenants) >= {"acme", "beta"}
        assert tenants["acme"]["live"] == 1
        assert tenants["acme"]["weight"] == 2.0
        assert tenants["beta"]["queued"] == 1
        assert tenants["acme"]["totals"]["admitted"] == 1

    def test_slo_reports_burn_rates(self):
        gateway = started_gateway()
        gateway.offer(SubmitCampaign(spec("a")))
        gateway.step()
        reply = OpsServer(gateway).handle("/slo")
        assert reply[0] == 200
        body = body_of(reply)
        assert body["source"] == "live"
        windows = body["availability"]["windows"]
        assert all("burn_rate" in row for row in windows.values())


# ----------------------------------------------------------------------
# The threaded HTTP server (real sockets)
# ----------------------------------------------------------------------
class TestThreadedServer:
    @pytest.fixture()
    def live(self):
        gateway = started_gateway()
        gateway.offer(SubmitCampaign(spec("a")))
        gateway.step()
        ops = OpsServer(gateway, metrics=MetricsRegistry())
        ops.start_in_thread()
        yield ops
        ops.close()

    def _get(self, ops, path):
        with urllib.request.urlopen(f"{ops.address}{path}", timeout=5) as r:
            return r.status, r.read().decode()

    def test_every_endpoint_answers(self, live):
        for path in ENDPOINTS:
            status, body = self._get(live, path)
            assert status == 200, path
            assert body, path

    def test_unknown_path_is_http_404(self, live):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(live, "/nope")
        assert excinfo.value.code == 404

    def test_post_is_method_not_allowed(self, live):
        request = urllib.request.Request(
            f"{live.address}/metrics", data=b"x", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 405

    def test_double_start_refused(self, live):
        with pytest.raises(RuntimeError, match="already running"):
            live.start_in_thread()

    def test_close_is_idempotent(self):
        ops = OpsServer(metrics=MetricsRegistry())
        ops.start_in_thread()
        ops.close()
        ops.close()  # second close must be a no-op
