"""SQL analytics: canned queries vs brute force, goldens, and loading."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import AnalyticsDB, EventLog
from repro.obs.analytics import (
    AnalyticsError,
    canned_queries,
    render_table,
)
from tests.golden.cases import ANALYTICS_WINDOW, analytics_path, run_analytics_case

_TELEMETRY_COLUMNS = (
    "interval", "num_live", "admitted", "arrived", "considered", "accepted",
    "retired", "cancelled", "rate_factor", "cache_hits", "cache_misses",
    "repricer_solves", "tasks_remaining", "idle",
)
_SERVE_COLUMNS = (
    "interval", "queue_depth", "drained", "admitted", "rejected", "cancels",
    "snapshots", "reads",
)


def engine_telemetry(num_ticks, **overrides):
    """Minimal engine-form telemetry dict: zeros except the overrides."""
    series = {col: [0] * num_ticks for col in _TELEMETRY_COLUMNS}
    series["interval"] = list(range(num_ticks))
    series["rate_factor"] = [1.0] * num_ticks
    series.update(overrides)
    return {"series": series, "campaigns": []}


def gateway_telemetry(num_ticks, **serve_overrides):
    """Minimal gateway-form telemetry: serve series wrapping engine series."""
    serve = {col: [0] * num_ticks for col in _SERVE_COLUMNS}
    serve["interval"] = list(range(num_ticks))
    serve.update(serve_overrides)
    return {"serve": serve, "engine": engine_telemetry(num_ticks)}


class TestGolden:
    def test_flash_crowd_analytics_matches_committed(self):
        committed = json.loads(analytics_path().read_text())
        assert run_analytics_case() == committed

    def test_golden_covers_enough_queries(self):
        committed = json.loads(analytics_path().read_text())
        assert committed["window"] == ANALYTICS_WINDOW
        assert len(committed["queries"]) >= 5
        for name, result in committed["queries"].items():
            assert result["rows"], f"{name} golden has no rows"


class TestCatalog:
    def test_names_are_unique_and_pinned(self):
        names = [q.name for q in canned_queries()]
        assert len(names) == len(set(names))
        assert set(names) == {
            "queue-depth", "admission-rates", "cache-hit-trend",
            "campaign-fill", "arrival-modulation", "event-mix",
            "request-outcomes",
        }

    def test_unknown_query_rejected(self):
        with AnalyticsDB() as db:
            with pytest.raises(AnalyticsError, match="unknown canned query"):
                db.run("nope")

    def test_unmet_requires_names_the_fix(self):
        with AnalyticsDB() as db:
            with pytest.raises(AnalyticsError, match="event log"):
                db.run("event-mix")
            with pytest.raises(AnalyticsError, match="gateway telemetry"):
                db.run("queue-depth")

    def test_bad_window_rejected(self):
        with AnalyticsDB() as db:
            db.load_telemetry(engine_telemetry(4))
            with pytest.raises(AnalyticsError, match="window must be >= 1"):
                db.run("cache-hit-trend", window=0)


class TestLoading:
    def test_dict_and_path_load_identically(self, tmp_path):
        data = engine_telemetry(6, arrived=[3, 1, 4, 1, 5, 9])
        path = tmp_path / "telemetry.json"
        path.write_text(json.dumps(data))
        with AnalyticsDB() as from_dict, AnalyticsDB() as from_path:
            from_dict.load_telemetry(data)
            from_path.load_telemetry(path)
            assert from_dict.query("SELECT * FROM telemetry") == \
                from_path.query("SELECT * FROM telemetry")

    def test_gateway_form_fills_serve_and_engine(self):
        data = gateway_telemetry(5, queue_depth=[0, 2, 3, 1, 0])
        with AnalyticsDB() as db:
            db.load_telemetry(data)
            assert {"serve", "telemetry", "campaigns"} <= db.loaded
            _, rows = db.query("SELECT queue_depth FROM serve ORDER BY interval")
            assert [r[0] for r in rows] == [0, 2, 3, 1, 0]

    def test_gateway_form_without_engine_rejected(self):
        data = gateway_telemetry(3)
        del data["engine"]
        with AnalyticsDB() as db:
            with pytest.raises(AnalyticsError, match="no 'engine' section"):
                db.load_telemetry(data)

    def test_non_telemetry_dict_rejected(self):
        with AnalyticsDB() as db:
            with pytest.raises(AnalyticsError, match="not a telemetry file"):
                db.load_telemetry({"what": "ever"})

    def test_missing_series_field_named(self):
        data = engine_telemetry(3)
        del data["series"]["cache_hits"]
        with AnalyticsDB() as db:
            with pytest.raises(AnalyticsError, match="cache_hits"):
                db.load_telemetry(data)


class TestEventQueries:
    @pytest.fixture()
    def event_db(self, tmp_path):
        with EventLog(tmp_path / "events.sqlite") as log:
            for tick in range(6):
                log.log("tick", tick)
            pairs = [  # (request tick, response tick, status)
                (0, 1, "ok"),
                (1, 3, "rejected"),
                (5, None, None),
            ]
            for i, (req_tick, resp_tick, status) in enumerate(pairs):
                trace_id = f"req-{i:06d}"
                log.log("request", req_tick, {"kind": "quote"}, trace_id=trace_id)
                if resp_tick is not None:
                    log.log(
                        "response", resp_tick, {"status": status},
                        trace_id=trace_id,
                    )
            log.sync()
            db = AnalyticsDB().load_event_log(log.path)
        yield db
        db.close()

    def test_event_mix_counts_and_cumulates(self, event_db):
        columns, rows = event_db.run("event-mix", window=4)
        assert columns == ("window_start", "kind", "events", "cumulative")
        result = {(r[0], r[1]): (r[2], r[3]) for r in rows}
        assert result[(0, "tick")] == (4, 4)
        assert result[(4, "tick")] == (2, 6)
        assert result[(0, "request")] == (2, 2)
        assert result[(4, "request")] == (1, 3)
        assert result[(0, "response")] == (2, 2)

    def test_request_outcomes_join(self, event_db):
        columns, rows = event_db.run("request-outcomes", window=4)
        by_window = {r[0]: dict(zip(columns[1:], r[1:])) for r in rows}
        first = by_window[0]
        assert first["requests"] == 2
        assert first["ok"] == 1
        assert first["rejected"] == 1
        assert first["unresolved"] == 0
        assert first["mean_ticks_to_response"] == pytest.approx(1.5)
        tail = by_window[4]
        assert tail["requests"] == 1
        assert tail["unresolved"] == 1
        assert tail["mean_ticks_to_response"] is None


class TestRenderTable:
    def test_alignment_and_none(self):
        text = render_table(
            ("name", "value"), [("queue", 12), ("hit_rate", None)]
        )
        lines = text.splitlines()
        assert lines[0] == "name      value"
        assert lines[1] == "--------  -----"
        assert lines[2] == "queue     12"
        assert lines[3] == "hit_rate"

    def test_empty_rows(self):
        text = render_table(("a",), [])
        assert text.splitlines() == ["a", "-"]


series_strategy = st.lists(
    st.tuples(st.integers(0, 40), st.integers(0, 40)),
    min_size=1,
    max_size=40,
)


class TestAgainstBruteForce:
    @settings(max_examples=30, deadline=None)
    @given(pairs=series_strategy, window=st.integers(1, 10))
    def test_cache_hit_trend_rolling_frame(self, pairs, window):
        hits = [h for h, _ in pairs]
        misses = [m for _, m in pairs]
        with AnalyticsDB() as db:
            db.load_telemetry(
                engine_telemetry(len(pairs), cache_hits=hits, cache_misses=misses)
            )
            rows = db.run_as_dicts("cache-hit-trend", window=window)
        assert len(rows) == len(pairs)
        for tick, row in enumerate(rows):
            lo = max(0, tick - window + 1)
            window_hits = sum(hits[lo:tick + 1])
            window_lookups = window_hits + sum(misses[lo:tick + 1])
            assert row["interval"] == tick
            assert row["window_hits"] == window_hits
            assert row["window_lookups"] == window_lookups
            if window_lookups == 0:
                assert row["hit_rate"] is None
            else:
                assert row["hit_rate"] == pytest.approx(
                    window_hits / window_lookups, abs=1e-4
                )

    @settings(max_examples=30, deadline=None)
    @given(pairs=series_strategy, window=st.integers(1, 10))
    def test_admission_rates_tumbling_windows(self, pairs, window):
        admitted = [a for a, _ in pairs]
        rejected = [r for _, r in pairs]
        with AnalyticsDB() as db:
            db.load_telemetry(
                gateway_telemetry(len(pairs), admitted=admitted, rejected=rejected)
            )
            rows = db.run_as_dicts("admission-rates", window=window)
        starts = sorted({(t // window) * window for t in range(len(pairs))})
        assert [row["window_start"] for row in rows] == starts
        cum_admitted = cum_rejected = 0
        for row in rows:
            lo = row["window_start"]
            hi = min(lo + window, len(pairs))
            win_admitted = sum(admitted[lo:hi])
            win_rejected = sum(rejected[lo:hi])
            cum_admitted += win_admitted
            cum_rejected += win_rejected
            assert row["admitted"] == win_admitted
            assert row["rejected"] == win_rejected
            assert row["cumulative_admitted"] == cum_admitted
            assert row["cumulative_rejected"] == cum_rejected
            total = win_admitted + win_rejected
            if total == 0:
                assert row["rejection_rate"] is None
            else:
                assert row["rejection_rate"] == pytest.approx(
                    win_rejected / total, abs=1e-4
                )

    @settings(max_examples=20, deadline=None)
    @given(
        arrived=st.lists(st.integers(0, 2000), min_size=1, max_size=40),
        window=st.integers(1, 10),
    )
    def test_arrival_modulation_means(self, arrived, window):
        with AnalyticsDB() as db:
            db.load_telemetry(engine_telemetry(len(arrived), arrived=arrived))
            rows = db.run_as_dicts("arrival-modulation", window=window)
        for row in rows:
            lo = row["window_start"]
            hi = min(lo + window, len(arrived))
            assert row["ticks"] == hi - lo
            assert row["total_arrived"] == sum(arrived[lo:hi])
            assert row["mean_arrived"] == pytest.approx(
                sum(arrived[lo:hi]) / (hi - lo), abs=1e-3
            )
