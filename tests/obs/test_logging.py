"""Shared structured-logging path: formats, idempotence, CLI wiring."""

from __future__ import annotations

import io
import json
import logging

import pytest

from repro.cli import main
from repro.obs.logsetup import LOG_LEVELS, setup_logging


@pytest.fixture(autouse=True)
def restore_repro_logger():
    """Leave the shared ``repro`` logger exactly as we found it."""
    logger = logging.getLogger("repro")
    saved = (list(logger.handlers), logger.level, logger.propagate)
    yield
    logger.handlers[:] = saved[0]
    logger.setLevel(saved[1])
    logger.propagate = saved[2]


class TestSetupLogging:
    def test_levels_are_pinned(self):
        assert LOG_LEVELS == ("debug", "info", "warning", "error", "critical")

    def test_configures_repro_logger_only(self):
        stream = io.StringIO()
        logger = setup_logging("info", stream=stream)
        assert logger.name == "repro"
        assert logger.propagate is False
        assert len(logger.handlers) == 1
        assert logging.getLogger().handlers == [] or (
            logger.handlers[0] not in logging.getLogger().handlers
        )

    def test_idempotent_reconfiguration(self):
        stream = io.StringIO()
        setup_logging("debug", stream=stream)
        logger = setup_logging("error", stream=stream)
        assert len(logger.handlers) == 1
        assert logger.level == logging.ERROR

    def test_level_filters(self):
        stream = io.StringIO()
        setup_logging("warning", stream=stream)
        child = logging.getLogger("repro.obs.test")
        child.info("quiet")
        child.warning("loud")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 1
        assert "loud" in lines[0]

    def test_text_format_includes_extra_fields(self):
        stream = io.StringIO()
        setup_logging("info", fmt="text", stream=stream)
        logging.getLogger("repro.obs.test").info(
            "flushed", extra={"batch": 128, "seq": 4096}
        )
        (line,) = stream.getvalue().splitlines()
        assert "repro.obs.test: flushed" in line
        assert line.endswith("batch=128 seq=4096")

    def test_json_format_one_object_per_line(self):
        stream = io.StringIO()
        setup_logging("info", fmt="json", stream=stream)
        logging.getLogger("repro.obs.test").info(
            "flushed", extra={"batch": 128}
        )
        (line,) = stream.getvalue().splitlines()
        record = json.loads(line)
        assert record["level"] == "info"
        assert record["logger"] == "repro.obs.test"
        assert record["message"] == "flushed"
        assert record["batch"] == 128
        assert isinstance(record["ts"], float)

    def test_bad_level_and_format_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            setup_logging("loudest")
        with pytest.raises(ValueError, match="unknown log format"):
            setup_logging("info", fmt="yaml")


class TestCliWiring:
    def test_log_level_flag_configures_logger(self, tmp_path, capsys):
        exit_code = main(
            [
                "engine", "run",
                "--campaigns", "2",
                "--horizon-hours", "8",
                "--log-level", "error",
                "--log-format", "json",
            ]
        )
        assert exit_code == 0
        logger = logging.getLogger("repro")
        assert logger.level == logging.ERROR
        assert len(logger.handlers) == 1

    def test_unknown_log_level_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit):
            main(["engine", "run", "--log-level", "loudest"])
        assert "invalid choice" in capsys.readouterr().err
