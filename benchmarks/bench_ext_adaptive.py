"""Extension benchmark: adaptive arrival-rate prediction.

Not a paper figure — the scheme Section 5.2.5 leaves to future work,
evaluated on the paper's own Fig. 10 holiday scenario.
"""

from __future__ import annotations

from repro.experiments import ext_adaptive


def test_ext_adaptive(benchmark, emit):
    result = benchmark.pedantic(
        ext_adaptive.run_ext_adaptive, rounds=1, iterations=1, warmup_rounds=0
    )
    holiday = result.holiday
    # The statically trained table strands tasks on the holiday; the
    # adaptive repricer rescues them without overpaying.
    assert holiday.static_mean_remaining > 1.0
    assert holiday.adaptive_mean_remaining < 0.5
    assert holiday.adaptive_mean_reward < holiday.static_mean_reward + 2.0
    # The learned correction tracks the true ~45% rate shortfall.
    assert 0.4 <= holiday.adaptive_final_factor <= 0.8
    # On an ordinary day adaptivity is a no-op.
    ordinary = result.ordinary
    assert ordinary.adaptive_mean_remaining < 0.5
    assert abs(ordinary.adaptive_mean_reward - ordinary.static_mean_reward) < 1.0
    emit("ext_adaptive", ext_adaptive.format_result(result))
