"""Serving-gateway throughput: requests/sec and latency through the frontier.

Two tracked surfaces:

* **Sustained request throughput** — the reference serving workload (a
  quote/read-heavy client mix with campaign submissions and
  cancellations riding along, the shape real serving traffic takes)
  replayed through the :class:`~repro.serve.gateway.Gateway`.  The
  acceptance bar is **>= 5,000 requests/sec sustained** — requests
  answered divided by the *whole* wall-clock of the served run, engine
  ticks included.  The result is recorded under the ``"serve"`` key of
  ``BENCH_engine.json`` (alongside the solver fast-path record
  ``docs/performance.md`` explains).
* **Closed-loop latency** — real asyncio client sessions against a live
  ``serve()`` loop, reporting offer→response p50/p95/p99.  Latency is
  wall-clock and machine-dependent, so it is reported, not gated.

Smoke mode: set ``REPRO_BENCH_SMOKE=1`` (CI does, via ``make
serve-smoke``) to shrink the horizon and request volume so the file runs
in seconds while still executing every code path; the committed
``BENCH_engine.json`` record is only rewritten by full (non-smoke) runs.

Run:  pytest benchmarks/bench_serve.py -q
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import time

import numpy as np

from repro.engine import MarketplaceEngine, ShardedEngine
from repro.engine.campaign import CampaignSpec
from repro.market.acceptance import paper_acceptance_model
from repro.serve import (
    Cancel,
    ClientMix,
    Gateway,
    LoadGenerator,
    RequestTrace,
    TimedRequest,
)
from repro.sim.stream import SharedArrivalStream

#: CI smoke mode: tiny horizon, same code paths.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

NUM_INTERVALS = 32 if SMOKE else 96
#: Mean requests per tick of the reference trace (read-heavy mix).
RATE = 60.0 if SMOKE else 120.0
SEED = 33
#: The acceptance bar on the reference workload.  Smoke mode (CI's
#: contended shared runners, smaller horizon) gates on a deliberately
#: loose floor instead — it exists to catch pathological slowdowns, not
#: to flake on machine speed (the same reasoning as bench_scenario.py's
#: relative overhead bar).  The full-run floor tracks the measured
#: ~29k req/s with >2x headroom.
REQUIRED_RPS = 500.0 if SMOKE else 12000.0

#: Noisy-neighbor fairness bar: the victim's p99 queueing latency (in
#: ticks — deterministic, not wall-clock) under a flood from another
#: tenant may not exceed 2x its isolated baseline.
FAIRNESS_P99_FACTOR = 2.0

BENCH_JSON = pathlib.Path(__file__).resolve().parents[1] / "BENCH_engine.json"


def make_engine(num_shards: int = 0):
    means = 1200.0 + 400.0 * np.sin(
        np.linspace(0.0, 4.0 * np.pi, NUM_INTERVALS)
    )
    if num_shards:
        return ShardedEngine(
            SharedArrivalStream(means), paper_acceptance_model(),
            num_shards=num_shards,
            executor="serial" if num_shards == 1 else "thread",
            planning="stationary",
        )
    return MarketplaceEngine(
        SharedArrivalStream(means), paper_acceptance_model(),
        planning="stationary",
    )


def reference_trace():
    """The reference serving workload: mostly reads, plus live mutations."""
    return LoadGenerator(
        NUM_INTERVALS,
        seed=SEED,
        clients=8,
        rate=RATE,
        mix=ClientMix(submit=0.015, quote=0.595, cancel=0.01, query=0.38),
        adaptive_fraction=0.05,
    ).trace("open")


def run_replay(trace):
    """One served replay; returns (gateway, requests_answered, seconds)."""
    gateway = Gateway(make_engine())
    gateway.start(seed=SEED)
    started = time.perf_counter()
    tickets = gateway.replay(trace)
    seconds = time.perf_counter() - started
    assert all(t.done for t in tickets)
    return gateway, len(tickets), seconds


def test_serve_sustained_throughput(emit):
    """Reference workload through the gateway -> BENCH_engine.json 'serve'."""
    trace = reference_trace()
    # Warm-up run (policy solves populate the cache exactly as a long-lived
    # serving deployment's would be), then the measured run.
    run_replay(trace)
    gateway, answered, seconds = run_replay(trace)
    rps = answered / seconds
    assert rps >= REQUIRED_RPS, (
        f"gateway sustained only {rps:,.0f} requests/sec "
        f"(bar: {REQUIRED_RPS:,.0f})"
    )
    serve = gateway.telemetry.serve
    lines = [
        f"serving gateway: {answered} requests over {NUM_INTERVALS} "
        f"intervals{' (smoke)' if SMOKE else ''}",
        "",
        f"sustained  : {rps:10,.0f} requests/sec "
        f"(bar: {REQUIRED_RPS:,.0f}; ticks included)",
        f"admission  : {sum(serve['admitted'])} campaigns admitted, "
        f"{sum(serve['cancels'])} cancels, "
        f"{gateway.telemetry.reads_served} reads",
        f"queue      : peak depth {max(serve['queue_depth'], default=0)}, "
        f"mean batch "
        f"{np.mean([d for d in serve['drained'] if d] or [0.0]):.1f}",
    ]
    if not SMOKE:
        record = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.is_file() else {}
        record["serve"] = {
            "workload": {
                "requests": answered,
                "stream_intervals": NUM_INTERVALS,
                "rate_per_tick": RATE,
                "seed": SEED,
            },
            "seconds": round(seconds, 4),
            "requests_per_second": round(rps, 1),
            "required_requests_per_second": REQUIRED_RPS,
        }
        BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
        lines.append(f"[written to {BENCH_JSON}]")
    emit("serve_throughput", "\n".join(lines))


# ----------------------------------------------------------------------
# Noisy-neighbor fairness
# ----------------------------------------------------------------------
#: Ticks the fairness traces span, and per-tick request volumes.
FAIR_TICKS = 12 if SMOKE else 24
NOISY_PER_TICK = 12 if SMOKE else 16
VICTIM_PER_TICK = 2
#: Per-boundary drain budget: smaller than the combined arrival rate, so
#: the noisy tenant builds a persistent backlog the scheduler must not
#: let the victim drown in.
FAIR_MAX_DRAIN = 8 if SMOKE else 12


def keepalive_spec() -> CampaignSpec:
    """One long-lived campaign so the engine clock runs the whole drill.

    The low ``max_price`` keeps its acceptance rate near zero — it never
    completes inside the horizon, and its solve stays cheap.
    """
    return CampaignSpec(
        campaign_id="keepalive", kind="deadline", num_tasks=10_000,
        submit_interval=0, horizon_intervals=NUM_INTERVALS, max_price=2,
    )


def fairness_trace(tagged: bool) -> RequestTrace:
    """The contended workload: a flood and a modest victim, every tick.

    ``tagged=False`` strips the tenant ids — the FIFO contrast arm, where
    the same arrivals share one global queue.  Requests are Cancels of
    unknown campaigns: they ride the mutation queue (so they experience
    queueing) without touching engine state, keeping the three arms'
    engines identical.  Noisy arrivals precede the victim's within every
    tick — the worst case for FIFO.
    """
    requests = []
    for t in range(FAIR_TICKS):
        for i in range(NOISY_PER_TICK):
            requests.append(TimedRequest(
                t, "noisy", Cancel(f"n-{t}-{i}"),
                **({"tenant": "noisy"} if tagged else {}),
            ))
        for i in range(VICTIM_PER_TICK):
            requests.append(TimedRequest(
                t, "victim", Cancel(f"v-{t}-{i}"),
                **({"tenant": "victim"} if tagged else {}),
            ))
    return RequestTrace("fairness", tuple(requests))


def victim_only_trace() -> RequestTrace:
    return RequestTrace("victim-isolated", tuple(
        TimedRequest(t, "victim", Cancel(f"v-{t}-{i}"), tenant="victim")
        for t in range(FAIR_TICKS)
        for i in range(VICTIM_PER_TICK)
    ))


def run_fairness_arm(trace: RequestTrace, weights=None):
    """Replay one arm; returns per-client queueing latencies in ticks.

    Latency is ``response.tick - arrival tick`` — deterministic engine
    time, so the fairness bar never flakes on machine speed.
    """
    engine = make_engine()
    engine.submit([keepalive_spec()])
    gateway = Gateway(
        engine, max_queue=None, max_drain=FAIR_MAX_DRAIN,
        tenant_weights=weights,
    )
    gateway.start(seed=SEED)
    tickets = gateway.replay(trace)
    latencies: dict[str, list[int]] = {}
    for timed, ticket in zip(trace.requests, tickets):
        latencies.setdefault(timed.client, []).append(
            ticket.response.tick - timed.tick
        )
    return latencies


def p99(values) -> float:
    return float(np.percentile(np.asarray(values, dtype=float), 99))


def test_serve_noisy_neighbor_fairness(emit):
    """Weighted-fair admission holds the victim's p99 under the flood."""
    isolated = run_fairness_arm(victim_only_trace())
    fair = run_fairness_arm(
        fairness_trace(tagged=True),
        weights={"victim": 1.0, "noisy": 1.0},
    )
    fifo = run_fairness_arm(fairness_trace(tagged=False))

    p99_iso = p99(isolated["victim"])
    p99_fair = p99(fair["victim"])
    p99_fifo = p99(fifo["victim"])
    baseline = max(p99_iso, 1.0)
    ratio = p99_fair / baseline
    assert p99_fair <= FAIRNESS_P99_FACTOR * baseline, (
        f"victim p99 {p99_fair:.1f} ticks under contention vs isolated "
        f"{p99_iso:.1f} — the {FAIRNESS_P99_FACTOR}x fairness bar failed"
    )
    # The contrast arm proves the drill bites: the same arrivals through
    # one FIFO queue do drown the victim (deterministic, so assertable).
    assert p99_fifo > FAIRNESS_P99_FACTOR * baseline, (
        f"FIFO contrast arm shows no contention (p99 {p99_fifo:.1f}): "
        "the fairness drill is not exercising a backlog"
    )

    lines = [
        f"noisy-neighbor fairness: {NOISY_PER_TICK}/tick flood vs "
        f"{VICTIM_PER_TICK}/tick victim, drain budget {FAIR_MAX_DRAIN}"
        f"{' (smoke)' if SMOKE else ''}",
        "",
        f"victim p99 isolated : {p99_iso:6.1f} ticks",
        f"victim p99 fair DRR : {p99_fair:6.1f} ticks "
        f"(bar: {FAIRNESS_P99_FACTOR}x isolated; ratio {ratio:.2f})",
        f"victim p99 FIFO     : {p99_fifo:6.1f} ticks (contrast, ungated)",
        f"noisy  p99 fair DRR : {p99(fair['noisy']):6.1f} ticks "
        "(the flood pays for its own backlog)",
    ]
    if not SMOKE:
        record = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.is_file() else {}
        record.setdefault("serve", {})["fairness"] = {
            "workload": {
                "ticks": FAIR_TICKS,
                "noisy_per_tick": NOISY_PER_TICK,
                "victim_per_tick": VICTIM_PER_TICK,
                "max_drain": FAIR_MAX_DRAIN,
            },
            "per_tenant_p99_ticks": {
                "victim_isolated": round(p99_iso, 2),
                "victim_fair": round(p99_fair, 2),
                "victim_fifo": round(p99_fifo, 2),
                "noisy_fair": round(p99(fair["noisy"]), 2),
            },
            "fairness_ratio": round(ratio, 3),
            "required_factor": FAIRNESS_P99_FACTOR,
        }
        BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
        lines.append(f"[written to {BENCH_JSON}]")
    emit("serve_fairness", "\n".join(lines))


def test_serve_closed_loop_latency(emit):
    """Live asyncio clients: offer->response percentiles (reported)."""
    generator = LoadGenerator(
        NUM_INTERVALS,
        seed=SEED,
        clients=4 if SMOKE else 8,
        think=1,
        requests_per_client=8 if SMOKE else 24,
    )
    gateway = Gateway(make_engine())
    gateway.start(seed=SEED)
    responses = asyncio.run(generator.run_closed(gateway))
    assert responses, "the closed loop must answer at least one request"
    latency = gateway.telemetry.latency.summary()
    assert latency["count"] >= len(responses)
    emit(
        "serve_latency",
        "\n".join([
            f"closed-loop latency: {latency['count']} requests, "
            f"{generator.clients} clients{' (smoke)' if SMOKE else ''}",
            "",
            f"p50 : {latency['p50_ms']:8.3f} ms",
            f"p95 : {latency['p95_ms']:8.3f} ms",
            f"p99 : {latency['p99_ms']:8.3f} ms",
            f"mean: {latency['mean_ms']:8.3f} ms",
        ]),
    )


# ----------------------------------------------------------------------
# Live ops-plane overhead
# ----------------------------------------------------------------------
#: Instrumented-dark vs ops-enabled replay repeats and the acceptance
#: bar.  Both arms wire the same MetricsRegistry — instrumentation is a
#: fixed property of an observable deployment, so the bar isolates what
#: *attaching the live ops plane* adds: the server thread plus scrape
#: traffic contending for the GIL with the tick loop.  Full mode holds
#: the documented < 5%; smoke mode (contended CI runners, tiny horizon)
#: only guards against a scrape path landing on the tick loop.
OPS_REPEATS = 3
OPS_MAX_OVERHEAD = 0.50 if SMOKE else 0.05
#: Pause between scrape rounds.  Still orders of magnitude hotter than a
#: production 15s Prometheus cadence relative to the run length (every
#: run gets scraped several times), but not a busy-loop: each scrape
#: round costs the replay thread real GIL hand-offs, so an unrealistic
#: hammer would measure scrape *frequency*, not the cost of having the
#: ops plane attached.
OPS_SCRAPE_PAUSE_S = 0.05 if SMOKE else 0.5
#: The overhead arm replays a denser trace than the throughput arm: the
#: per-round scrape cost is a fixed few milliseconds, so the dark run
#: has to be long enough for a percentage bar to measure signal rather
#: than timer noise.
OPS_RATE_FACTOR = 4.0


def ops_reference_trace():
    """The overhead arm's workload: the reference mix at 4x the rate."""
    return LoadGenerator(
        NUM_INTERVALS,
        seed=SEED,
        clients=8,
        rate=RATE * OPS_RATE_FACTOR,
        mix=ClientMix(submit=0.015, quote=0.595, cancel=0.01, query=0.38),
        adaptive_fraction=0.05,
    ).trace("open")


def run_instrumented_replay(trace):
    """The baseline arm: metrics wired, no ops server.  Returns seconds."""
    from repro.obs import MetricsRegistry

    gateway = Gateway(make_engine(), metrics=MetricsRegistry())
    gateway.start(seed=SEED)
    started = time.perf_counter()
    tickets = gateway.replay(trace)
    seconds = time.perf_counter() - started
    assert all(t.done for t in tickets)
    return seconds


def run_ops_replay(trace):
    """The ops-enabled arm: same metrics, plus a live server under scrape.

    Returns ``(seconds, scrape_rounds)`` — the replay wall-clock with a
    background client hammering ``/metrics`` + ``/readyz`` + ``/slo``
    the whole time.  The client is a raw socket, not urllib: a real
    scraper lives in another process, so its own parsing must not
    contend for this interpreter's GIL and pollute the measurement —
    only the server side of each scrape is the ops plane's cost.
    """
    import socket
    import threading

    from repro.obs import MetricsRegistry
    from repro.obs.ops import OpsServer

    gateway = Gateway(make_engine(), metrics=MetricsRegistry())
    gateway.start(seed=SEED)
    ops = OpsServer(gateway, metrics=gateway.metrics)
    host, port = ops.start_in_thread()
    stop = threading.Event()
    rounds = [0]

    def scrape(path: str) -> None:
        with socket.create_connection((host, port), timeout=5) as conn:
            conn.sendall(
                f"GET {path} HTTP/1.1\r\nHost: {host}\r\n\r\n".encode()
            )
            while conn.recv(65536):
                pass  # drain to EOF; the server closes after one response

    def scraper() -> None:
        while not stop.is_set():
            for path in ("/metrics", "/readyz", "/slo"):
                try:
                    scrape(path)
                except (ConnectionError, OSError):
                    pass  # mid-shutdown scrape; the run is what's measured
            rounds[0] += 1
            stop.wait(OPS_SCRAPE_PAUSE_S)

    thread = threading.Thread(target=scraper, daemon=True)
    thread.start()
    try:
        started = time.perf_counter()
        tickets = gateway.replay(trace)
        seconds = time.perf_counter() - started
    finally:
        stop.set()
        thread.join(timeout=5)
        ops.close()
    assert all(t.done for t in tickets)
    return seconds, rounds[0]


def test_serve_ops_overhead(emit):
    """Scraped ops plane vs instrumented replay -> BENCH 'serve.ops_overhead'."""
    trace = ops_reference_trace()
    run_instrumented_replay(trace)  # warm-up, same as the throughput arm
    dark_seconds = []
    ops_seconds = []
    scrape_rounds = 0
    for _ in range(OPS_REPEATS):
        dark_seconds.append(run_instrumented_replay(trace))
        seconds, rounds = run_ops_replay(trace)
        ops_seconds.append(seconds)
        scrape_rounds += rounds
    baseline = min(dark_seconds)
    scraped = min(ops_seconds)
    overhead = scraped / baseline - 1.0
    assert overhead <= OPS_MAX_OVERHEAD, (
        f"live ops plane added {overhead:+.1%} to the served replay "
        f"(bar: {OPS_MAX_OVERHEAD:.0%}); a scrape path may have landed "
        "on the tick loop"
    )
    # The number only means anything if the server was actually scraped
    # while the run progressed.
    assert scrape_rounds > 0, "the scraper never completed a round"

    lines = [
        f"live ops-plane overhead: {scrape_rounds} scrape rounds across "
        f"{OPS_REPEATS} runs{' (smoke)' if SMOKE else ''}",
        "",
        f"instrumented : {baseline:8.3f}s replay (best of {OPS_REPEATS})",
        f"ops+scrape   : {scraped:8.3f}s with /metrics /readyz /slo live",
        f"overhead     : {overhead:+8.1%} (bar: {OPS_MAX_OVERHEAD:.0%})",
    ]
    if not SMOKE:
        record = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.is_file() else {}
        record.setdefault("serve", {})["ops_overhead"] = {
            "workload": {
                "requests": len(trace.requests),
                "stream_intervals": NUM_INTERVALS,
                "rate_per_tick": RATE * OPS_RATE_FACTOR,
                "seed": SEED,
            },
            "instrumented_seconds": round(baseline, 4),
            "ops_seconds": round(scraped, 4),
            "overhead_fraction": round(overhead, 4),
            "required_max_overhead": OPS_MAX_OVERHEAD,
            "scrape_rounds": scrape_rounds,
        }
        BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
        lines.append(f"[written to {BENCH_JSON}]")
    emit("serve_ops_overhead", "\n".join(lines))
