"""Figure 7(a) benchmark: the headline deadline-pricing comparison.

Dynamic ~12-12.5c with <1 expected leftover task, fixed baseline 16c, floor
price 12c — a ~30% premium for fixed pricing.  This is the paper's core
result; the timed unit is the full sweep (six penalty calibrations plus the
fixed-price curve).
"""

from __future__ import annotations

from repro.experiments import fig7a_deadline_cost


def test_fig07a_deadline_cost(benchmark, emit):
    result = benchmark.pedantic(
        fig7a_deadline_cost.run_fig7a, rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.floor_price == 12.0
    assert result.faridani_price == 16.0
    assert 12.0 <= result.strict_dynamic_reward <= 12.5
    assert 0.25 <= result.fixed_premium <= 0.40  # paper reports ~33%
    assert result.dynamic_points[-1].expected_remaining < 1.0
    emit("fig07a_deadline_cost", fig7a_deadline_cost.format_result(result))
