"""Figure 8(d) benchmark: decision-interval granularity sweep."""

from __future__ import annotations

from repro.experiments import fig8d_granularity


def test_fig08d_granularity(benchmark, emit):
    result = benchmark.pedantic(
        fig8d_granularity.run_fig8d, rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.reward_nondecreasing()
    # The paper: runtime stays flat-ish across granularities (truncation
    # cancels the interval count); generously, no blow-up either way.
    times = [p.solve_seconds for p in result.points]
    assert max(times) < 10.0
    rewards = [p.average_reward for p in result.points]
    # "not by too much": 20min -> 2h costs under half a cent extra.
    assert rewards[-1] - rewards[0] < 0.5
    emit("fig08d_granularity", fig8d_granularity.format_result(result))
