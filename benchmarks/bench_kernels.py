"""Compiled-kernel microbenchmark: the DP solve layer under REPRO_KERNELS.

The tracked surface is the deadline DP-solve path — the hottest loop in
the engine (``docs/performance.md``) — measured at two levels, arms
interleaved best-of-``REPEATS`` like the other tracked benches:

* **scalar** — the per-instance
  :func:`~repro.core.deadline.vectorized.solve_deadline` loop over the
  workload (the pre-batching reference point);
* **kernel** — one :func:`~repro.core.batch.solve_deadline_batch` call
  under the *resolved* kernel backend (``REPRO_KERNELS``/auto: numba
  where installed, numpy otherwise).

The acceptance bar ratchets with the backend: with numba actually
compiled the kernel path must deliver **>= 5x** the scalar policy-solve
throughput; the numpy fallback is exempt from the 5x and instead holds
the engine-wide 3x batch bar.  Results land under the ``"kernels"`` key
of ``BENCH_engine.json``.

Before any timing, the backends are differentially checked on the bench
workload itself — the speedup must not come from solving a different
problem (the exhaustive equality sweep lives in
``tests/core/batch/test_kernel_equivalence.py``).

Smoke mode: ``REPRO_BENCH_SMOKE=1`` (CI, via ``make kernels-smoke``)
shrinks the workload and drops the bar to a hang guard; the committed
record is only rewritten by full runs.

Run:  make bench-kernels
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np

from repro.core.batch import kernels, solve_deadline_batch
from repro.core.deadline.model import DeadlineProblem, PenaltyScheme
from repro.core.deadline.vectorized import solve_deadline
from repro.market.acceptance import paper_acceptance_model

#: CI smoke mode: tiny workload, same code paths, hang-guard bar only.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

SEED = 37
NUM_INSTANCES = 16 if SMOKE else 64
REPEATS = 2 if SMOKE else 3
#: (num_tasks, horizon, max_price) shapes, cycled across the workload.
SHAPES = ((15, 9, 25), (40, 18, 30), (80, 30, 30), (25, 6, 40))

BENCH_JSON = pathlib.Path(__file__).resolve().parents[1] / "BENCH_engine.json"


def required_speedup(backend: str) -> float:
    """The ratcheted bar for the resolved backend.

    numba must buy real compilation wins (5x over scalar); the numpy
    fallback is exempt from the 5x and holds the engine's 3x batch bar.
    Smoke mode guards against hangs, not throughput.
    """
    if SMOKE:
        return 1.0
    return 5.0 if backend == "numba" and kernels.HAVE_NUMBA else 3.0


def solve_workload(n: int = NUM_INSTANCES) -> list[DeadlineProblem]:
    """``n`` deadline instances with distinct signatures."""
    rng = np.random.default_rng(SEED)
    acceptance = paper_acceptance_model()
    problems = []
    for i in range(n):
        num_tasks, horizon, max_price = SHAPES[i % len(SHAPES)]
        level = 900.0 * float(rng.uniform(0.6, 1.4))
        problems.append(
            DeadlineProblem(
                num_tasks=num_tasks,
                arrival_means=np.full(horizon, level),
                acceptance=acceptance,
                price_grid=np.arange(1.0, max_price + 1.0),
                penalty=PenaltyScheme(per_task=float(rng.uniform(80.0, 250.0))),
            )
        )
    return problems


def test_kernel_solve_speedup(emit):
    """Scalar vs kernel DP-solve arms -> BENCH_engine.json 'kernels'."""
    backend = kernels.active()
    problems = solve_workload()

    # Equivalence guard + warm-up (numpy dispatch tables, numba JIT
    # compilation — compile time must not be billed to the timed arms).
    scalar_policies = [solve_deadline(p) for p in problems]
    kernel_policies = solve_deadline_batch(problems)
    assert all(
        np.array_equal(s.price_index, k.price_index)
        and np.allclose(s.opt, k.opt, rtol=1e-9, atol=1e-8)
        for s, k in zip(scalar_policies, kernel_policies)
    ), f"kernel backend {backend!r} diverged from the scalar solver"

    scalar_best = float("inf")
    kernel_best = float("inf")
    for _ in range(REPEATS):  # interleaved: drift hits both arms equally
        t0 = time.perf_counter()
        for p in problems:
            solve_deadline(p)
        scalar_best = min(scalar_best, time.perf_counter() - t0)
        t0 = time.perf_counter()
        solve_deadline_batch(problems)
        kernel_best = min(kernel_best, time.perf_counter() - t0)

    speedup = scalar_best / kernel_best
    bar = required_speedup(backend)
    assert speedup >= bar, (
        f"kernel backend {backend!r} delivered only {speedup:.1f}x over the "
        f"scalar solver (ratcheted bar: {bar}x)"
    )

    lines = [
        f"kernel DP-solve: {len(problems)} distinct deadline instances, "
        f"backend={backend}{' (smoke)' if SMOKE else ''}",
        "",
        f"scalar : {scalar_best:7.3f}s "
        f"({len(problems) / scalar_best:7.1f} solves/sec)",
        f"kernel : {kernel_best:7.3f}s "
        f"({len(problems) / kernel_best:7.1f} solves/sec)",
        f"speedup: {speedup:7.1f}x policy-solve throughput (bar: {bar}x)",
    ]
    if not SMOKE:
        record = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.is_file() else {}
        record["kernels"] = {
            "backend": backend,
            "numba_available": kernels.HAVE_NUMBA,
            "workload": {
                "solve_instances": len(problems),
                "shapes": [list(s) for s in SHAPES],
                "seed": SEED,
            },
            "scalar_seconds": round(scalar_best, 4),
            "batch_seconds": round(kernel_best, 4),
            "speedup": round(speedup, 2),
            "required_speedup": bar,
        }
        BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
        lines.append(f"[written to {BENCH_JSON}]")
    emit("kernels", "\n".join(lines))
