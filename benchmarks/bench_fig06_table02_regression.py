"""Figure 6 / Table 2 benchmark: wage-vs-workload regression and Eq. 13."""

from __future__ import annotations

import pytest

from repro.experiments import fig6_table2_regression


def test_fig06_table02_regression(benchmark, emit):
    result = benchmark(fig6_table2_regression.run_fig6_table2)
    assert result.fits["Data Collection"].alpha == pytest.approx(809.0, rel=0.15)
    assert result.derived.s == pytest.approx(15.0, abs=2.0)
    assert result.derived.b == pytest.approx(-0.39, abs=0.35)
    emit(
        "fig06_table02_regression",
        fig6_table2_regression.format_result(result),
    )
