"""Ablation benchmarks for the deadline solvers (Section 3.2 speed-ups).

Times the three equivalent solvers — the literal Algorithm 1, the
vectorized recurrence, and the Algorithm 2 divide-and-conquer — plus the
vectorized solver with truncation disabled, quantifying what each design
choice buys on a mid-size instance.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.deadline.efficient_dp import solve_deadline_efficient
from repro.core.deadline.model import DeadlineProblem, PenaltyScheme
from repro.core.deadline.simple_dp import solve_deadline_simple
from repro.core.deadline.vectorized import solve_deadline
from repro.market.acceptance import paper_acceptance_model


@pytest.fixture(scope="module")
def ablation_problem():
    rng = np.random.default_rng(77)
    means = rng.uniform(800.0, 2000.0, size=24)
    return DeadlineProblem(
        num_tasks=60,
        arrival_means=means,
        acceptance=paper_acceptance_model(),
        price_grid=np.arange(1.0, 31.0),
        penalty=PenaltyScheme(per_task=100.0),
    )


@pytest.mark.benchmark(group="deadline-solvers")
def test_solver_simple_dp(benchmark, ablation_problem):
    policy = benchmark.pedantic(
        solve_deadline_simple, args=(ablation_problem,), rounds=1, iterations=1
    )
    assert policy.optimal_value > 0


@pytest.mark.benchmark(group="deadline-solvers")
def test_solver_vectorized(benchmark, ablation_problem):
    policy = benchmark(solve_deadline, ablation_problem)
    assert policy.optimal_value > 0


@pytest.mark.benchmark(group="deadline-solvers")
def test_solver_efficient_dp(benchmark, ablation_problem):
    policy = benchmark(solve_deadline_efficient, ablation_problem)
    assert policy.optimal_value > 0


@pytest.mark.benchmark(group="deadline-solvers")
def test_solver_efficient_dp_with_time_pruning(benchmark, ablation_problem):
    policy = benchmark(
        solve_deadline_efficient, ablation_problem, True
    )
    assert policy.optimal_value > 0


@pytest.mark.benchmark(group="deadline-solvers")
def test_solver_vectorized_no_truncation(benchmark, ablation_problem):
    exact = dataclasses.replace(ablation_problem, truncation_eps=None)
    policy = benchmark(solve_deadline, exact)
    assert policy.optimal_value > 0


def test_all_solvers_agree(ablation_problem):
    simple = solve_deadline_simple(ablation_problem)
    vectorized = solve_deadline(ablation_problem)
    efficient = solve_deadline_efficient(ablation_problem)
    assert np.allclose(simple.opt, vectorized.opt)
    assert np.allclose(simple.opt, efficient.opt)
