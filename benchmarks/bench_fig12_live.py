"""Figure 12 benchmark: the simulated Mechanical-Turk deployment."""

from __future__ import annotations

from repro.experiments import fig12_live


def test_fig12_live(benchmark, emit):
    result = benchmark.pedantic(
        fig12_live.run_fig12, rounds=1, iterations=1, warmup_rounds=0
    )
    fixed = result.fixed_trials
    # Fig 12(a): sizes <= 20 finish before the deadline, 30-50 do not.
    assert fixed[10].finished and fixed[20].finished
    assert not fixed[30].finished and not fixed[50].finished
    # Fig 12(a): by hour 6 size 10 completes > 2x the HITs of size 20 and
    # > 4x the HITs of the larger sizes.
    at6 = {g: trial.hits_completed_by([6.0])[0] for g, trial in fixed.items()}
    assert at6[10] > 2 * at6[20] * 0.9  # allow sampling slack
    assert at6[10] > 4 * at6[30] * 0.9
    # Fig 12(b): size 50's work completion ends above sizes 30 and 40.
    final = {g: trial.work_fraction_by([14.0])[0] for g, trial in fixed.items()}
    assert final[50] >= final[40] - 0.05 and final[50] >= final[30] - 0.05
    # Fig 12(c): dynamic grouping costs well below fixed-20's $5.
    assert result.fixed20_cost == 5.0
    assert result.dynamic_mean_cost < 4.0
    assert result.dynamic_saving > 0.2  # paper ~36%
    emit("fig12_live", fig12_live.format_result(result))
