"""Figure 9 benchmark: robustness to mis-estimated acceptance parameters."""

from __future__ import annotations

from repro.experiments import fig9_pc_sensitivity


def test_fig09_pc_sensitivity(benchmark, emit):
    result = benchmark.pedantic(
        fig9_pc_sensitivity.run_fig9, rounds=1, iterations=1, warmup_rounds=0
    )
    # Dynamic absorbs moderate mis-estimation (even a 2x-thinner market
    # leaves <5% of the batch behind); fixed pricing strands half of it.
    assert result.dynamic_max_remaining() < 0.05 * 200
    assert result.fixed_worst_remaining() > 20.0
    assert result.fixed_worst_remaining() > 10 * result.dynamic_max_remaining()
    # The auto-correction mechanism: under the worst perturbation the
    # dynamic strategy raises its average reward above the trained value.
    trained = result.by_m[0].dynamic_average_reward
    stressed = result.by_m[-1].dynamic_average_reward
    assert stressed > trained
    emit("fig09_pc_sensitivity", fig9_pc_sensitivity.format_result(result))
