"""Figure 5 benchmark: utility-based acceptance simulation + logit fit."""

from __future__ import annotations

from repro.experiments import fig5_utility


def test_fig05_utility(benchmark, emit):
    result = benchmark.pedantic(
        fig5_utility.run_fig5, rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.rmse < 0.02
    assert result.simulated[-1] > result.simulated[0]
    emit("fig05_utility", fig5_utility.format_result(result))
