"""Figure 1 benchmark: the 4-week marketplace arrival series.

Regenerates the 6-hour throughput series and checks the weekly periodicity
the paper's Fig. 1 demonstrates; the timed unit is the full trace
generation + aggregation.
"""

from __future__ import annotations

from repro.experiments import fig1_arrivals


def test_fig01_arrivals(benchmark, emit):
    result = benchmark(fig1_arrivals.run_fig1)
    assert result.week_correlation > 0.8
    assert result.weekend_mean < result.weekday_mean
    emit("fig01_arrivals", fig1_arrivals.format_result(result))
