"""Event-log overhead: the durable log must not tax the tick loop.

The observability contract (docs/observability.md) is that the event log
rides *off* the tick path — appends go into a bounded in-memory buffer
and a background writer batches them into sqlite, so the deterministic
tick loop never waits on the disk.  This file measures that claim on the
scenario tick loop: the same churn-heavy scenario run twice, without and
with an :class:`~repro.obs.eventlog.EventLog` wired into the
:class:`~repro.scenario.driver.ScenarioDriver`, best-of-``REPEATS``
wall-clock each way.  The acceptance bar is **< 5% overhead** in full
mode; the result is recorded under the ``"obs"`` key of
``BENCH_engine.json``.

Smoke mode: set ``REPRO_BENCH_SMOKE=1`` (CI does, via ``make
obs-smoke``) to shrink the horizon and loosen the bar — a contended CI
runner can't resolve single-digit percent differences over a tiny run,
so smoke mode only guards against pathological regressions (log on the
hot path, a blocking flush); the committed ``BENCH_engine.json`` record
is only rewritten by full (non-smoke) runs.

Run:  pytest benchmarks/bench_obs.py -q
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import time

import numpy as np

from repro.engine import MarketplaceEngine, generate_workload
from repro.market.acceptance import paper_acceptance_model
from repro.obs import EventLog
from repro.scenario import ScenarioDriver, canned_scenario
from repro.sim.stream import SharedArrivalStream

#: CI smoke mode: tiny horizon, same code paths.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

NUM_INTERVALS = 32 if SMOKE else 96
BASE_CAMPAIGNS = 8 if SMOKE else 24
SEED = 29
REPEATS = 2 if SMOKE else 3
#: The acceptance bar: logged vs unlogged tick-loop wall-clock.  Full
#: mode holds the documented < 5%; smoke mode exists to catch a log
#: moved onto the hot path, not to flake on runner contention.
REQUIRED_MAX_OVERHEAD = 0.50 if SMOKE else 0.05

BENCH_JSON = pathlib.Path(__file__).resolve().parents[1] / "BENCH_engine.json"


def make_driver(event_log=None) -> ScenarioDriver:
    means = 1200.0 + 400.0 * np.sin(
        np.linspace(0.0, 4.0 * np.pi, NUM_INTERVALS)
    )
    engine = MarketplaceEngine(
        SharedArrivalStream(means), paper_acceptance_model(),
        planning="stationary",
    )
    engine.submit(generate_workload(BASE_CAMPAIGNS, NUM_INTERVALS, seed=SEED))
    scenario = canned_scenario("black-friday", NUM_INTERVALS, seed=SEED)
    return ScenarioDriver(engine, scenario, event_log=event_log)


def timed_run(event_log=None) -> tuple[float, ScenarioDriver]:
    """One full scenario run; returns (tick-loop seconds, driver)."""
    driver = make_driver(event_log=event_log)
    driver.start()
    started = time.perf_counter()
    while not driver.done:
        driver.step()
    seconds = time.perf_counter() - started
    core = driver.core
    assert core is not None
    core.close()
    return seconds, driver


def test_event_log_overhead(emit):
    """Logged vs unlogged scenario loop -> BENCH_engine.json 'obs'."""
    # Warm-up once (policy cache, numpy dispatch, CPU frequency), then
    # best-of-REPEATS for each arm, the arms alternating so frequency
    # scaling and cache drift hit both equally.
    timed_run()
    baseline_seconds = []
    logged_seconds = []
    events_written = 0
    ticks = 0
    with tempfile.TemporaryDirectory() as tmp:
        for i in range(REPEATS):
            baseline_seconds.append(timed_run()[0])
            log = EventLog(pathlib.Path(tmp) / f"events-{i}.sqlite")
            seconds, driver = timed_run(event_log=log)
            log.sync()
            events_written = log.last_seq
            ticks = driver.telemetry.num_ticks
            log.close()
            logged_seconds.append(seconds)
    baseline = min(baseline_seconds)
    logged = min(logged_seconds)
    overhead = logged / baseline - 1.0
    assert overhead <= REQUIRED_MAX_OVERHEAD, (
        f"event log added {overhead:+.1%} to the scenario tick loop "
        f"(bar: {REQUIRED_MAX_OVERHEAD:.0%}); the writer may have landed "
        "on the tick path"
    )
    # The log must actually have been exercised for the number to mean
    # anything: every tick writes at least its summary row.
    assert events_written > ticks

    lines = [
        f"event-log overhead: {ticks} ticks, {events_written} events"
        f"{' (smoke)' if SMOKE else ''}",
        "",
        f"baseline   : {baseline:8.3f}s tick loop (best of {REPEATS})",
        f"logged     : {logged:8.3f}s with durable event log",
        f"overhead   : {overhead:+8.1%} (bar: {REQUIRED_MAX_OVERHEAD:.0%})",
    ]
    if not SMOKE:
        record = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.is_file() else {}
        record["obs"] = {
            "workload": {
                "scenario": "black-friday",
                "stream_intervals": NUM_INTERVALS,
                "base_campaigns": BASE_CAMPAIGNS,
                "seed": SEED,
            },
            "baseline_seconds": round(baseline, 4),
            "logged_seconds": round(logged, 4),
            "overhead_fraction": round(overhead, 4),
            "required_max_overhead": REQUIRED_MAX_OVERHEAD,
            "events_written": events_written,
        }
        BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
        lines.append(f"[written to {BENCH_JSON}]")
    emit("obs_overhead", "\n".join(lines))
