"""Figure 15 benchmark: HITs per worker vs per-task price."""

from __future__ import annotations

import pytest

from repro.experiments import fig15_sessions


def test_fig15_sessions(benchmark, emit):
    result = benchmark.pedantic(
        fig15_sessions.run_fig15, rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.increases_with_price()
    # Simulation tracks the session model's analytic expectation.
    for g, measured in result.mean_hits_per_worker.items():
        assert measured == pytest.approx(result.expected_hits_model[g], rel=0.25)
    emit("fig15_sessions", fig15_sessions.format_result(result))
