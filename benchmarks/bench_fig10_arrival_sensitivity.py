"""Figure 10 benchmark: leave-one-day-out arrival-rate sensitivity."""

from __future__ import annotations

from repro.experiments import fig10_arrival_sensitivity


def test_fig10_arrival_sensitivity(benchmark, emit):
    result = benchmark.pedantic(
        fig10_arrival_sensitivity.run_fig10, rounds=1, iterations=1, warmup_rounds=0
    )
    ordinary = result.ordinary_days()
    holiday = result.holiday()
    # Ordinary days: random spikes wash out; both strategies stable.
    assert max(d.dynamic_remaining for d in ordinary) < 0.5
    assert max(d.fixed_remaining for d in ordinary) < 1.0
    # The 1/1 holiday deviates consistently; both degrade, fixed worse.
    assert holiday.dynamic_remaining > max(d.dynamic_remaining for d in ordinary)
    assert holiday.fixed_remaining > holiday.dynamic_remaining
    emit(
        "fig10_arrival_sensitivity",
        fig10_arrival_sensitivity.format_result(result),
    )
