"""Ablation benchmarks for the fixed-budget solvers (Section 4.3).

Algorithm 3's convex-hull construction against the general-purpose LP and
the pseudo-polynomial exact DP: the hull solution should be orders of
magnitude faster while landing within the Theorem 8 gap of the optimum.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.budget.exact_dp import solve_budget_exact
from repro.core.budget.lp_solver import solve_budget_lp
from repro.core.budget.static_lp import solve_budget_hull
from repro.market.acceptance import paper_acceptance_model

NUM_TASKS = 200
BUDGET = 2500.0
GRID = np.arange(1.0, 51.0)


@pytest.fixture(scope="module")
def model():
    return paper_acceptance_model()


@pytest.mark.benchmark(group="budget-solvers")
def test_budget_hull(benchmark, model):
    allocation = benchmark(solve_budget_hull, NUM_TASKS, BUDGET, model, GRID)
    assert allocation.total_cost <= BUDGET


@pytest.mark.benchmark(group="budget-solvers")
def test_budget_lp(benchmark, model):
    solution = benchmark(solve_budget_lp, NUM_TASKS, BUDGET, model, GRID)
    assert sum(solution.weights) == pytest.approx(NUM_TASKS, abs=1e-6)


@pytest.mark.benchmark(group="budget-solvers")
def test_budget_exact_dp(benchmark, model):
    allocation = benchmark.pedantic(
        solve_budget_exact,
        args=(NUM_TASKS, BUDGET, model, GRID),
        rounds=1,
        iterations=1,
    )
    assert allocation.total_cost <= BUDGET


def test_hull_within_theorem8_gap(model):
    hull = solve_budget_hull(NUM_TASKS, BUDGET, model, GRID)
    exact = solve_budget_exact(NUM_TASKS, BUDGET, model, GRID)
    assert hull.expected_arrivals <= (
        exact.expected_arrivals + hull.rounding_gap_bound + 1e-6
    )
