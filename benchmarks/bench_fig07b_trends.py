"""Figure 7(b) benchmark: cost-reduction trends over N and T."""

from __future__ import annotations

from repro.experiments import fig7b_trends


def test_fig07b_trends(benchmark, emit):
    result = benchmark.pedantic(
        fig7b_trends.run_fig7b, rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.reduction_decreases_in_n()
    assert result.reduction_increases_in_t()
    emit("fig07b_trends", fig7b_trends.format_result(result))
