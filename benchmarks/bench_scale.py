"""Streaming scale benchmark: a million campaigns in O(live) memory.

The proof obligation for the streaming memory core
(:mod:`repro.engine.source` + :mod:`repro.engine.outcomes`): campaign
count must stop being a memory axis.  A :class:`StreamedWorkload`
materializes each spec just before its submit tick, retirements fold
into the O(1) :class:`OutcomeAggregate`, and telemetry runs with
per-campaign records disabled — so resident memory tracks the *live*
frontier (wave size x horizon), not the workload size.

Two arms, both driven through a scenario end-to-end:

* **Traced arm** — a smaller campaign count under ``tracemalloc``: the
  traced Python-heap peak must stay under a budget that a materialized
  spec+outcome list for the same count would blow through.  Precise
  attribution, paid for with tracing overhead.
* **Scale arm** — the headline count (>= 1M campaigns full, 20k smoke)
  untraced and timed, with a hard ``ru_maxrss`` ceiling.  This is the
  ISSUE-level acceptance bar: a million campaigns through submit ->
  price -> route -> retire inside a fixed RSS budget.

Campaigns use deliberately tiny templates (6-8 tasks, 5-6 tick
horizons, low price grids) so the bounded frontier — not per-campaign
solve cost — dominates; stationary planning lets the policy cache
collapse the million admissions into a handful of solves.

Smoke mode: ``REPRO_BENCH_SMOKE=1`` shrinks both arms (CI proves the
memory *shape*, not the headline count); the committed
``BENCH_engine.json`` ``"scale"`` record is only rewritten by full runs.
"""

from __future__ import annotations

import json
import os
import pathlib
import resource
import time
import tracemalloc

import numpy as np

from repro.engine import (
    BUDGET,
    CampaignTemplate,
    DEADLINE,
    MarketplaceEngine,
    StreamedWorkload,
    Telemetry,
)
from repro.engine.clock import EngineResult
from repro.market.acceptance import paper_acceptance_model
from repro.scenario import DemandShock, Scenario, ScenarioDriver
from repro.sim.stream import SharedArrivalStream

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: Headline campaign count (the ISSUE bar is >= 1M in full mode).
SCALE_CAMPAIGNS = 20_000 if SMOKE else 1_000_000
#: Traced-arm count: small enough that tracemalloc overhead stays civil.
TRACED_CAMPAIGNS = 4_000 if SMOKE else 50_000
CAMPAIGNS_PER_WAVE = 100 if SMOKE else 250
SEED = 11

#: Hard ceilings.  The scale arm bounds whole-process peak RSS (numpy +
#: solver tables included); the traced arm bounds the *Python heap* the
#: run allocates, which is where a materialized workload would live
#: (1M specs + outcomes ≈ 1 GiB of dataclasses — two orders over this).
RSS_BUDGET_MIB = 512 if SMOKE else 1024
TRACED_BUDGET_MIB = 256

#: Tiny shapes: the frontier stays wide (one wave every ~tick) while
#: each campaign's policy and lifetime stay small.
SCALE_TEMPLATES = (
    CampaignTemplate("sc-dl", DEADLINE, num_tasks=6, horizon_intervals=5,
                     max_price=12, penalty_per_task=20.0),
    CampaignTemplate("sc-bg", BUDGET, num_tasks=8, horizon_intervals=6,
                     max_price=10, per_task_budget=6.0),
)

BENCH_JSON = pathlib.Path(__file__).resolve().parents[1] / "BENCH_engine.json"

MIB = 1024.0 * 1024.0


def peak_rss_mib() -> float:
    """High-water RSS of this process, in MiB (Linux ru_maxrss is KiB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def run_streamed(num_campaigns: int) -> tuple[EngineResult, Telemetry, int]:
    """One streamed scenario run: source -> engine -> aggregate-only sink."""
    num_waves = -(-num_campaigns // CAMPAIGNS_PER_WAVE)
    num_intervals = num_waves + 8
    source = StreamedWorkload(
        num_campaigns,
        num_intervals,
        seed=SEED,
        templates=SCALE_TEMPLATES,
        budget_fraction=0.25,
        adaptive_fraction=0.0,
        campaigns_per_wave=CAMPAIGNS_PER_WAVE,
        id_prefix="sc",
    )
    stream = SharedArrivalStream(np.full(num_intervals, 400.0))
    engine = MarketplaceEngine(
        stream, paper_acceptance_model(), planning="stationary"
    )
    engine.submit_source(source)
    scenario = Scenario(
        name="scale-steady",
        seed=SEED,
        description="streamed scale workload under a mid-run demand shock",
        events=(
            DemandShock(
                start=num_intervals // 3, stop=num_intervals // 2, factor=1.5
            ),
        ),
    )
    driver = ScenarioDriver(
        engine,
        scenario,
        telemetry=Telemetry(record_campaigns=False),
        keep_outcomes=False,
    )
    result = driver.run()
    engine.close()
    return result, driver.telemetry, num_intervals


def test_scale_report(emit):
    """>= SCALE_CAMPAIGNS streamed campaigns inside the fixed RSS budget."""
    # Traced arm first (it is the smaller run): the Python-heap peak is
    # what a materialized workload would scale with.
    tracemalloc.start()
    traced_result, _, _ = run_streamed(TRACED_CAMPAIGNS)
    _, traced_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert traced_result.num_campaigns == TRACED_CAMPAIGNS
    traced_peak_mib = traced_peak / MIB
    assert traced_peak_mib < TRACED_BUDGET_MIB, (
        f"traced arm peaked at {traced_peak_mib:.0f} MiB of Python heap "
        f"for {TRACED_CAMPAIGNS} campaigns (budget {TRACED_BUDGET_MIB} MiB)"
    )

    # Scale arm: untraced, timed, whole-process RSS ceiling.
    rss_before = peak_rss_mib()
    t0 = time.perf_counter()
    result, telemetry, num_intervals = run_streamed(SCALE_CAMPAIGNS)
    elapsed = time.perf_counter() - t0
    rss_after = peak_rss_mib()

    assert result.num_campaigns == SCALE_CAMPAIGNS
    assert result.outcomes == ()  # nothing materialized
    assert result.aggregate is not None
    assert 0.0 < result.completion_rate < 1.0
    assert rss_after < RSS_BUDGET_MIB, (
        f"scale arm peaked at {rss_after:.0f} MiB RSS for "
        f"{SCALE_CAMPAIGNS} campaigns (budget {RSS_BUDGET_MIB} MiB)"
    )

    cps = SCALE_CAMPAIGNS / elapsed
    rss_per_campaign = rss_after * MIB / SCALE_CAMPAIGNS
    lines = [
        f"streaming scale: {SCALE_CAMPAIGNS:,} campaigns over "
        f"{num_intervals:,} intervals "
        f"({CAMPAIGNS_PER_WAVE}/wave, {'smoke' if SMOKE else 'full'} mode)",
        "",
        f"scale arm : {elapsed:8.1f}s  ({cps:9.0f} campaigns/sec)",
        f"  peak RSS: {rss_after:8.0f} MiB "
        f"(budget {RSS_BUDGET_MIB} MiB; {rss_before:.0f} MiB before run)",
        f"  per camp: {rss_per_campaign:8.0f} bytes peak-RSS/campaign",
        f"  retired : {result.num_campaigns:,} campaigns, "
        f"{result.total_completed:,} tasks completed "
        f"({100 * result.completion_rate:.1f}%)",
        f"  checksum: {result.checksum[:16]}…",
        "",
        f"traced arm: {TRACED_CAMPAIGNS:,} campaigns under tracemalloc",
        f"  peak heap: {traced_peak_mib:7.1f} MiB "
        f"(budget {TRACED_BUDGET_MIB} MiB)",
        f"  per camp : {traced_peak / TRACED_CAMPAIGNS:7.0f} "
        "bytes traced-peak/campaign",
        "",
        f"telemetry : {telemetry.num_ticks:,} ticks recorded "
        "(per-campaign records disabled)",
    ]
    emit("scale", "\n".join(lines))

    if not SMOKE:
        record = (
            json.loads(BENCH_JSON.read_text()) if BENCH_JSON.is_file() else {}
        )
        record["scale"] = {
            "campaigns": SCALE_CAMPAIGNS,
            "intervals": num_intervals,
            "campaigns_per_wave": CAMPAIGNS_PER_WAVE,
            "seed": SEED,
            "elapsed_seconds": round(elapsed, 1),
            "campaigns_per_second": round(cps, 1),
            "peak_rss_mib": round(rss_after, 1),
            "peak_rss_bytes_per_campaign": round(rss_per_campaign, 1),
            "rss_budget_mib": RSS_BUDGET_MIB,
            "traced_campaigns": TRACED_CAMPAIGNS,
            "traced_peak_mib": round(traced_peak_mib, 2),
            "traced_budget_mib": TRACED_BUDGET_MIB,
            "checksum": result.checksum,
        }
        BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
