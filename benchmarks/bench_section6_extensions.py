"""Benchmarks for the Section 6 extensions.

Not paper figures — timing and correctness spot-checks for the trade-off
MDPs, the multi-type decomposition, and the quality-control reduction, so
regressions in the extension modules surface alongside the main results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.deadline.model import PenaltyScheme
from repro.core.deadline.vectorized import solve_deadline
from repro.core.multitype import (
    MultitypeProblem,
    TaskType,
    solve_multitype_separable,
)
from repro.core.quality import MajorityVoteStrategy, reduce_to_deadline_problem
from repro.core.tradeoff import solve_tradeoff_arrival, solve_tradeoff_interval
from repro.market.acceptance import LogitAcceptance, paper_acceptance_model

GRID = np.arange(1.0, 51.0)


@pytest.mark.benchmark(group="section6")
def test_tradeoff_interval_model(benchmark):
    solution = benchmark(
        solve_tradeoff_interval, 500, 5.0, paper_acceptance_model(), GRID, 0.5
    )
    assert solution.total_value > 0


@pytest.mark.benchmark(group="section6")
def test_tradeoff_arrival_model(benchmark):
    solution = benchmark(
        solve_tradeoff_arrival, 500, 4000.0, paper_acceptance_model(), GRID, 100.0
    )
    assert solution.total_value > 0


@pytest.mark.benchmark(group="section6")
def test_multitype_separable(benchmark):
    types = tuple(
        TaskType(
            name=f"type{i}",
            num_tasks=n,
            acceptance=LogitAcceptance(15.0, b, 2000.0),
            price_grid=GRID,
            penalty_per_task=200.0,
        )
        for i, (n, b) in enumerate([(100, 0.2), (500, -0.39)])
    )
    problem = MultitypeProblem(
        types=types, arrival_means=np.full(72, 1700.0)
    )
    solution = benchmark.pedantic(
        solve_multitype_separable, args=(problem,), rounds=1, iterations=1
    )
    assert solution.optimal_value > 0


@pytest.mark.benchmark(group="section6")
def test_quality_reduction_solve(benchmark):
    strategy = MajorityVoteStrategy(3)
    problem = reduce_to_deadline_problem(
        strategy,
        num_filter_tasks=100,
        arrival_means=np.full(36, 1700.0),
        acceptance=paper_acceptance_model(),
        price_grid=GRID,
        penalty=PenaltyScheme(per_task=200.0),
    )
    policy = benchmark.pedantic(
        solve_deadline, args=(problem,), rounds=1, iterations=1
    )
    assert policy.problem.num_tasks == 300  # 100 items * worst case 3
