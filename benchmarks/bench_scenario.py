"""Scenario-engine throughput: ticks/sec under churn, shocks, cancellations.

Two tracked surfaces:

* **Driver overhead** — the same engine workload run (a) as a static
  batch through ``run()`` and (b) through a ScenarioDriver with telemetry
  recording every tick.  The scenario layer must cost little: the bar is
  that driven throughput stays within 3x of the raw clock (it is usually
  far closer; the bound is deliberately loose for 1-CPU CI boxes).
* **Stress throughput** — the canned ``black-friday`` scenario (churn +
  2.5x shock + cancellation) at 1 and 3 shards, reported as ticks/sec
  and campaigns/sec, with the shard-count invariance of the telemetry
  asserted along the way.

Smoke mode: set ``REPRO_BENCH_SMOKE=1`` (CI does) to shrink the horizon
and campaign counts so the whole file runs in seconds while still
executing every code path.

Run:  pytest benchmarks/bench_scenario.py -q
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.engine import (
    MarketplaceEngine,
    ShardedEngine,
    generate_workload,
)
from repro.market.acceptance import paper_acceptance_model
from repro.scenario import ScenarioDriver, canned_scenario
from repro.sim.stream import SharedArrivalStream

#: CI smoke mode: tiny horizon, same code paths.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

NUM_INTERVALS = 48 if SMOKE else 192
BASE_CAMPAIGNS = 8 if SMOKE else 40
SEED = 33


def make_stream() -> SharedArrivalStream:
    means = 1200.0 + 400.0 * np.sin(np.linspace(0.0, 6.0 * np.pi, NUM_INTERVALS))
    return SharedArrivalStream(means)


def make_engine(num_shards: int = 0):
    if num_shards:
        return ShardedEngine(
            make_stream(), paper_acceptance_model(), num_shards=num_shards,
            executor="serial" if num_shards == 1 else "thread",
            planning="stationary",
        )
    return MarketplaceEngine(
        make_stream(), paper_acceptance_model(), planning="stationary"
    )


def run_driven(num_shards: int = 0):
    """One black-friday scenario run; returns (driver, result, seconds)."""
    engine = make_engine(num_shards)
    engine.submit(generate_workload(BASE_CAMPAIGNS, NUM_INTERVALS, seed=SEED))
    scenario = canned_scenario("black-friday", NUM_INTERVALS, seed=SEED)
    driver = ScenarioDriver(engine, scenario)
    t0 = time.perf_counter()
    result = driver.run()
    return driver, result, time.perf_counter() - t0


def test_driver_overhead_is_bounded(emit):
    """Scenario stepping + telemetry must not dominate the tick loop."""
    static = make_engine()
    static.submit(generate_workload(BASE_CAMPAIGNS, NUM_INTERVALS, seed=SEED))
    t0 = time.perf_counter()
    static_result = static.run(seed=SEED)
    static_seconds = time.perf_counter() - t0

    driven, driven_result, driven_seconds = run_driven()
    # The driver adds telemetry + event dispatch on top of more traffic
    # (churn campaigns), so compare per-tick cost, loosely bounded.
    static_per_tick = static_seconds / max(static_result.intervals_run, 1)
    driven_per_tick = driven_seconds / max(driven.telemetry.num_ticks, 1)
    overhead = driven_per_tick / static_per_tick
    assert overhead < 3.0, (
        f"scenario driving cost {overhead:.2f}x per tick over the raw clock"
    )
    emit(
        "scenario_overhead",
        "\n".join([
            f"scenario driver overhead ({NUM_INTERVALS}-interval stream, "
            f"{BASE_CAMPAIGNS} base campaigns{', smoke' if SMOKE else ''})",
            "",
            f"raw clock    : {1e3 * static_per_tick:8.3f} ms/tick "
            f"({static_result.num_campaigns} campaigns)",
            f"driven+telem : {1e3 * driven_per_tick:8.3f} ms/tick "
            f"({driven_result.num_campaigns} campaigns incl. churn)",
            f"overhead     : {overhead:8.2f}x per tick (bar: < 3x)",
        ]),
    )


def test_scenario_stress_throughput(emit):
    """black-friday at 1 vs 3 shards: throughput report + invariance."""
    runs = {}
    for shards in (1, 3):
        driver, result, seconds = run_driven(shards)
        runs[shards] = (driver, result, seconds)
    d1, r1, s1 = runs[1]
    d3, r3, s3 = runs[3]
    # Shard count must never change what happened, only how fast.
    assert d1.telemetry == d3.telemetry
    assert r1.total_cost == pytest.approx(r3.total_cost)
    lines = [
        f"scenario stress: canned 'black-friday' on {NUM_INTERVALS} intervals"
        f"{' (smoke)' if SMOKE else ''}",
        "",
    ]
    for shards in (1, 3):
        driver, result, seconds = runs[shards]
        ticks = driver.telemetry.num_ticks
        lines.append(
            f"shards={shards} : {ticks / seconds:8.1f} ticks/sec, "
            f"{result.num_campaigns / seconds:7.1f} campaigns/sec "
            f"({result.num_campaigns} campaigns, "
            f"{driver.telemetry.total_cancelled} cancelled)"
        )
    lines.append("telemetry bit-identical across shard counts: yes")
    emit("scenario_stress", "\n".join(lines))
