"""Engine throughput benchmarks: the cache, the batch fast path, sharding.

Three tracked surfaces:

* **Policy caching** — one standard multi-campaign workload through the
  engine with the cache enabled and disabled (what memoization buys).
* **Batch fast path** — 64 *distinct* deadline instances (so the cache
  cannot collapse them) solved one-by-one with the scalar
  :func:`~repro.core.deadline.vectorized.solve_deadline` versus one call
  to :func:`~repro.core.batch.deadline.solve_deadline_batch`; the
  acceptance bar is a >= 3x policy-solve throughput win for the batch
  kernel.
* **Shard scaling** — the same workload through
  :class:`~repro.engine.sharding.ShardedEngine` across executor arms
  (serial, thread, process) at 1/2/4 shards.  The arms are timed
  **interleaved**, best-of-``SHARD_REPEATS`` each (like
  ``bench_obs.py``), so CPU-frequency drift and cache warmth hit every
  arm equally instead of flattering whichever ran last.  Outcomes are
  asserted identical across every arm (the determinism contract), and
  every arm must clear a ratcheted ``campaigns_per_second`` floor;
  wall-clock *scaling* depends on available cores and is reported as
  measured, never asserted.

Smoke mode: ``REPRO_BENCH_SMOKE=1`` shrinks the shard-scaling workload
and loosens the throughput floor (a contended single-core CI runner
resolves invariance, not throughput); the committed ``BENCH_engine.json``
is only rewritten by full runs.

Besides the human-readable blocks under ``benchmarks/results/``, the
fast-path run updates ``BENCH_engine.json`` at the repository root — the
machine-readable record ``docs/performance.md`` explains how to read.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np
import pytest

from repro.core.batch import solve_deadline_batch
from repro.core.deadline.model import DeadlineProblem, PenaltyScheme
from repro.core.deadline.vectorized import solve_deadline
from repro.engine import (
    MarketplaceEngine,
    PolicyCache,
    ShardedEngine,
    generate_workload,
)
from repro.engine.engine import EngineResult
from repro.market.acceptance import paper_acceptance_model
from repro.sim.stream import SharedArrivalStream

#: CI smoke mode: tiny shard-scaling workload, same code paths.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

NUM_CAMPAIGNS = 50
NUM_INTERVALS = 96
SEED = 21

#: Shard-scaling arms: (num_shards, executor).  One serial baseline plus
#: the two parallel executors at 2 and 4 shards.
SHARD_ARMS = (
    (1, "serial"),
    (2, "thread"),
    (4, "thread"),
    (2, "process"),
    (4, "process"),
)
SHARD_CAMPAIGNS = 24 if SMOKE else 120
SHARD_REPEATS = 2 if SMOKE else 3
#: Ratcheted floor: every arm's best-of campaigns/sec must clear it in
#: full mode (raise when the engine gets faster, never lower).  Smoke
#: mode only guards against pathological hangs.
REQUIRED_MIN_CPS = 0.5 if SMOKE else 15.0

#: The 64-campaign solve workload for the batch-vs-scalar comparison:
#: the four default template shapes, each at 16 distinct forecast levels.
SOLVE_BATCH = 64
SOLVE_SHAPES = ((15, 9, 25), (40, 18, 30), (80, 30, 30), (25, 6, 40))

BENCH_JSON = pathlib.Path(__file__).resolve().parents[1] / "BENCH_engine.json"


@pytest.fixture(scope="module")
def stream() -> SharedArrivalStream:
    means = 1500.0 + 600.0 * np.sin(np.linspace(0.0, 6.0 * np.pi, NUM_INTERVALS))
    return SharedArrivalStream(means)


def run_workload(stream: SharedArrivalStream, cache_entries: int) -> EngineResult:
    """One fresh engine + cache over the standard 50-campaign workload."""
    engine = MarketplaceEngine(
        stream,
        paper_acceptance_model(),
        cache=PolicyCache(max_entries=cache_entries),
        planning="stationary",
    )
    engine.submit(generate_workload(NUM_CAMPAIGNS, NUM_INTERVALS, seed=SEED))
    return engine.run(seed=SEED)


def distinct_solve_workload(n: int = SOLVE_BATCH) -> list[DeadlineProblem]:
    """``n`` deadline instances with distinct signatures (no cache collapse)."""
    rng = np.random.default_rng(SEED)
    acceptance = paper_acceptance_model()
    problems = []
    for i in range(n):
        num_tasks, horizon, max_price = SOLVE_SHAPES[i % len(SOLVE_SHAPES)]
        level = 900.0 * float(rng.uniform(0.6, 1.4))
        problems.append(
            DeadlineProblem(
                num_tasks=num_tasks,
                arrival_means=np.full(horizon, level),
                acceptance=acceptance,
                price_grid=np.arange(1.0, max_price + 1.0),
                penalty=PenaltyScheme(per_task=float(rng.uniform(80.0, 250.0))),
            )
        )
    return problems


def _best_of(repeats: int, fn) -> float:
    """Minimum wall-clock of ``repeats`` calls (the usual timing estimator)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_sharded(
    stream: SharedArrivalStream, num_shards: int, executor: str
) -> EngineResult:
    """One ShardedEngine run of the shard-scaling workload on one arm."""
    engine = ShardedEngine(
        stream,
        paper_acceptance_model(),
        num_shards=num_shards,
        cache=PolicyCache(max_entries=256),
        planning="stationary",
        executor=executor,
    )
    engine.submit(generate_workload(SHARD_CAMPAIGNS, NUM_INTERVALS, seed=SEED))
    return engine.run(seed=SEED)


@pytest.mark.benchmark(group="engine")
def test_engine_cached(benchmark, stream):
    result = benchmark(run_workload, stream, 256)
    assert result.num_campaigns == NUM_CAMPAIGNS
    assert result.cache_stats.hit_rate > 0


@pytest.mark.benchmark(group="engine")
def test_engine_uncached(benchmark, stream):
    result = benchmark(run_workload, stream, 0)
    assert result.num_campaigns == NUM_CAMPAIGNS
    assert result.cache_stats.hit_rate == 0


def test_engine_report(stream, emit):
    """Emit the tracked engine metrics (not a timing benchmark itself)."""
    cached = run_workload(stream, 256)
    uncached = run_workload(stream, 0)
    assert cached.cache_stats.hit_rate > 0
    lines = [
        "engine: 50 heterogeneous campaigns, one shared 96-interval stream",
        "",
        f"cached   : {cached.campaigns_per_second:8.1f} campaigns/sec  "
        f"(hit rate {100 * cached.cache_stats.hit_rate:.1f}%, "
        f"{cached.cache_stats.misses} solves)",
        f"uncached : {uncached.campaigns_per_second:8.1f} campaigns/sec  "
        f"({uncached.cache_stats.misses} solves)",
        f"speedup  : {uncached.elapsed_seconds / cached.elapsed_seconds:8.1f}x "
        f"wall-clock from policy caching",
        f"completion {100 * cached.completion_rate:.1f}%, "
        f"spend {cached.total_cost / 100:.2f}$, "
        f"peak concurrency {cached.max_concurrent}",
    ]
    emit("engine", "\n".join(lines))


def test_engine_fastpath_report(stream, emit):
    """Batch-vs-scalar solve throughput and shard scaling -> BENCH_engine.json.

    The acceptance bar: the batched kernel must deliver at least 3x the
    policy-solve throughput of the scalar path on the 64-campaign solve
    workload.
    """
    problems = distinct_solve_workload()
    # Warm-up pass doubling as the equivalence guard: the speedup must
    # not come from solving less.
    scalar_policies = [solve_deadline(p) for p in problems]
    batch_policies = solve_deadline_batch(problems)
    assert all(
        np.array_equal(s.price_index, b.price_index)
        and np.allclose(s.opt, b.opt, rtol=1e-9, atol=1e-8)
        for s, b in zip(scalar_policies, batch_policies)
    )
    scalar_seconds = _best_of(2, lambda: [solve_deadline(p) for p in problems])
    batch_seconds = _best_of(2, lambda: solve_deadline_batch(problems))
    speedup = scalar_seconds / batch_seconds
    assert speedup >= 3.0, (
        f"batch fast path delivered only {speedup:.1f}x over scalar solves"
    )

    # Shard-scaling arms, timed interleaved (every arm once per round, so
    # machine drift is shared) with best-of-SHARD_REPEATS per arm.  Round
    # zero doubles as the warm-up and the invariance check: every arm
    # must produce the bit-identical outcome aggregate.
    arm_results: dict[tuple[int, str], EngineResult] = {}
    arm_best: dict[tuple[int, str], float] = {
        arm: float("inf") for arm in SHARD_ARMS
    }
    for _ in range(SHARD_REPEATS):
        for arm in SHARD_ARMS:
            t0 = time.perf_counter()
            result = run_sharded(stream, *arm)
            arm_best[arm] = min(arm_best[arm], time.perf_counter() - t0)
            arm_results.setdefault(arm, result)
    baseline = arm_results[(1, "serial")]
    for arm, result in arm_results.items():  # sharding: pure throughput lever
        assert result.total_completed == baseline.total_completed, arm
        assert result.total_cost == pytest.approx(baseline.total_cost), arm
    arm_cps = {
        arm: SHARD_CAMPAIGNS / seconds for arm, seconds in arm_best.items()
    }
    slowest = min(arm_cps, key=arm_cps.get)
    assert arm_cps[slowest] >= REQUIRED_MIN_CPS, (
        f"arm {slowest} delivered {arm_cps[slowest]:.1f} campaigns/sec "
        f"(ratcheted floor: {REQUIRED_MIN_CPS})"
    )

    lines = [
        f"fast path: {len(problems)} distinct deadline instances "
        "(4 shapes x 16 forecast levels)",
        "",
        f"scalar : {scalar_seconds:7.3f}s "
        f"({len(problems) / scalar_seconds:7.1f} solves/sec)",
        f"batch  : {batch_seconds:7.3f}s "
        f"({len(problems) / batch_seconds:7.1f} solves/sec)",
        f"speedup: {speedup:7.1f}x policy-solve throughput (bar: 3x)",
        "",
        f"shard scaling ({SHARD_CAMPAIGNS} campaigns, interleaved "
        f"best-of-{SHARD_REPEATS}, identical outcomes per arm):",
    ]
    lines += [
        f"  {n} shard{'s' if n > 1 else ' '} {executor:7s}: "
        f"{arm_best[(n, executor)]:6.2f}s  "
        f"({arm_cps[(n, executor)]:6.1f} campaigns/sec)"
        for n, executor in SHARD_ARMS
    ]

    if not SMOKE:
        record = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.is_file() else {}
        record["workload"] = {
            "solve_instances": len(problems),
            "shapes": [list(s) for s in SOLVE_SHAPES],
            "sharded_campaigns": SHARD_CAMPAIGNS,
            "stream_intervals": NUM_INTERVALS,
            "seed": SEED,
        }
        record["policy_solve"] = {
            "scalar_seconds": round(scalar_seconds, 4),
            "batch_seconds": round(batch_seconds, 4),
            "scalar_solves_per_second": round(len(problems) / scalar_seconds, 1),
            "batch_solves_per_second": round(len(problems) / batch_seconds, 1),
            "speedup": round(speedup, 2),
            "required_speedup": 3.0,
        }
        record["shard_scaling"] = {
            "campaigns": SHARD_CAMPAIGNS,
            "repeats": SHARD_REPEATS,
            "interleaved": True,
            "required_min_campaigns_per_second": REQUIRED_MIN_CPS,
            "arms": [
                {
                    "shards": n,
                    "executor": executor,
                    "seconds": round(arm_best[(n, executor)], 3),
                    "campaigns_per_second": round(arm_cps[(n, executor)], 1),
                    "completed": arm_results[(n, executor)].total_completed,
                }
                for n, executor in SHARD_ARMS
            ],
        }
        record["cache"] = {
            "hit_rate": round(baseline.cache_stats.hit_rate, 4),
            "misses": baseline.cache_stats.misses,
        }
        BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
        lines.append(f"[written to {BENCH_JSON}]")
    emit("engine_fastpath", "\n".join(lines))
