"""Engine throughput benchmarks: campaigns/sec and what the cache buys.

Times one standard multi-campaign workload — 50 heterogeneous campaigns,
staggered over a 96-interval shared stream — through the marketplace
engine with the policy cache enabled and disabled.  Emits a results block
recording campaigns/sec and the cache hit rate so EXPERIMENTS.md can track
engine performance from this PR onward.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import MarketplaceEngine, PolicyCache, generate_workload
from repro.engine.engine import EngineResult
from repro.market.acceptance import paper_acceptance_model
from repro.sim.stream import SharedArrivalStream

NUM_CAMPAIGNS = 50
NUM_INTERVALS = 96
SEED = 21


@pytest.fixture(scope="module")
def stream() -> SharedArrivalStream:
    means = 1500.0 + 600.0 * np.sin(np.linspace(0.0, 6.0 * np.pi, NUM_INTERVALS))
    return SharedArrivalStream(means)


def run_workload(stream: SharedArrivalStream, cache_entries: int) -> EngineResult:
    """One fresh engine + cache over the standard 50-campaign workload."""
    engine = MarketplaceEngine(
        stream,
        paper_acceptance_model(),
        cache=PolicyCache(max_entries=cache_entries),
        planning="stationary",
    )
    engine.submit(generate_workload(NUM_CAMPAIGNS, NUM_INTERVALS, seed=SEED))
    return engine.run(seed=SEED)


@pytest.mark.benchmark(group="engine")
def test_engine_cached(benchmark, stream):
    result = benchmark(run_workload, stream, 256)
    assert result.num_campaigns == NUM_CAMPAIGNS
    assert result.cache_stats.hit_rate > 0


@pytest.mark.benchmark(group="engine")
def test_engine_uncached(benchmark, stream):
    result = benchmark(run_workload, stream, 0)
    assert result.num_campaigns == NUM_CAMPAIGNS
    assert result.cache_stats.hit_rate == 0


def test_engine_report(stream, emit):
    """Emit the tracked engine metrics (not a timing benchmark itself)."""
    cached = run_workload(stream, 256)
    uncached = run_workload(stream, 0)
    assert cached.cache_stats.hit_rate > 0
    lines = [
        "engine: 50 heterogeneous campaigns, one shared 96-interval stream",
        "",
        f"cached   : {cached.campaigns_per_second:8.1f} campaigns/sec  "
        f"(hit rate {100 * cached.cache_stats.hit_rate:.1f}%, "
        f"{cached.cache_stats.misses} solves)",
        f"uncached : {uncached.campaigns_per_second:8.1f} campaigns/sec  "
        f"({uncached.cache_stats.misses} solves)",
        f"speedup  : {uncached.elapsed_seconds / cached.elapsed_seconds:8.1f}x "
        f"wall-clock from policy caching",
        f"completion {100 * cached.completion_rate:.1f}%, "
        f"spend {cached.total_cost / 100:.2f}$, "
        f"peak concurrency {cached.max_concurrent}",
    ]
    emit("engine", "\n".join(lines))
