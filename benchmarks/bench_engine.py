"""Engine throughput benchmarks: the cache, the batch fast path, sharding.

Three tracked surfaces:

* **Policy caching** — one standard multi-campaign workload through the
  engine with the cache enabled and disabled (what memoization buys).
* **Batch fast path** — 64 *distinct* deadline instances (so the cache
  cannot collapse them) solved one-by-one with the scalar
  :func:`~repro.core.deadline.vectorized.solve_deadline` versus one call
  to :func:`~repro.core.batch.deadline.solve_deadline_batch`; the
  acceptance bar is a >= 3x policy-solve throughput win for the batch
  kernel.
* **Shard scaling** — the same workload through
  :class:`~repro.engine.sharding.ShardedEngine` at 1/2/4 shards
  (identical outcomes by construction; wall-clock depends on available
  cores, and is reported as measured).

Besides the human-readable blocks under ``benchmarks/results/``, the
fast-path run writes ``BENCH_engine.json`` at the repository root — the
machine-readable record ``docs/performance.md`` explains how to read.
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np
import pytest

from repro.core.batch import solve_deadline_batch
from repro.core.deadline.model import DeadlineProblem, PenaltyScheme
from repro.core.deadline.vectorized import solve_deadline
from repro.engine import (
    MarketplaceEngine,
    PolicyCache,
    ShardedEngine,
    generate_workload,
)
from repro.engine.engine import EngineResult
from repro.market.acceptance import paper_acceptance_model
from repro.sim.stream import SharedArrivalStream

NUM_CAMPAIGNS = 50
NUM_INTERVALS = 96
SEED = 21

#: The 64-campaign solve workload for the batch-vs-scalar comparison:
#: the four default template shapes, each at 16 distinct forecast levels.
SOLVE_BATCH = 64
SOLVE_SHAPES = ((15, 9, 25), (40, 18, 30), (80, 30, 30), (25, 6, 40))

BENCH_JSON = pathlib.Path(__file__).resolve().parents[1] / "BENCH_engine.json"


@pytest.fixture(scope="module")
def stream() -> SharedArrivalStream:
    means = 1500.0 + 600.0 * np.sin(np.linspace(0.0, 6.0 * np.pi, NUM_INTERVALS))
    return SharedArrivalStream(means)


def run_workload(stream: SharedArrivalStream, cache_entries: int) -> EngineResult:
    """One fresh engine + cache over the standard 50-campaign workload."""
    engine = MarketplaceEngine(
        stream,
        paper_acceptance_model(),
        cache=PolicyCache(max_entries=cache_entries),
        planning="stationary",
    )
    engine.submit(generate_workload(NUM_CAMPAIGNS, NUM_INTERVALS, seed=SEED))
    return engine.run(seed=SEED)


def distinct_solve_workload(n: int = SOLVE_BATCH) -> list[DeadlineProblem]:
    """``n`` deadline instances with distinct signatures (no cache collapse)."""
    rng = np.random.default_rng(SEED)
    acceptance = paper_acceptance_model()
    problems = []
    for i in range(n):
        num_tasks, horizon, max_price = SOLVE_SHAPES[i % len(SOLVE_SHAPES)]
        level = 900.0 * float(rng.uniform(0.6, 1.4))
        problems.append(
            DeadlineProblem(
                num_tasks=num_tasks,
                arrival_means=np.full(horizon, level),
                acceptance=acceptance,
                price_grid=np.arange(1.0, max_price + 1.0),
                penalty=PenaltyScheme(per_task=float(rng.uniform(80.0, 250.0))),
            )
        )
    return problems


def _best_of(repeats: int, fn) -> float:
    """Minimum wall-clock of ``repeats`` calls (the usual timing estimator)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_sharded(stream: SharedArrivalStream, num_shards: int) -> EngineResult:
    """One ShardedEngine run over a 120-campaign workload."""
    engine = ShardedEngine(
        stream,
        paper_acceptance_model(),
        num_shards=num_shards,
        cache=PolicyCache(max_entries=256),
        planning="stationary",
        executor="serial" if num_shards == 1 else "thread",
    )
    engine.submit(generate_workload(120, NUM_INTERVALS, seed=SEED))
    return engine.run(seed=SEED)


@pytest.mark.benchmark(group="engine")
def test_engine_cached(benchmark, stream):
    result = benchmark(run_workload, stream, 256)
    assert result.num_campaigns == NUM_CAMPAIGNS
    assert result.cache_stats.hit_rate > 0


@pytest.mark.benchmark(group="engine")
def test_engine_uncached(benchmark, stream):
    result = benchmark(run_workload, stream, 0)
    assert result.num_campaigns == NUM_CAMPAIGNS
    assert result.cache_stats.hit_rate == 0


def test_engine_report(stream, emit):
    """Emit the tracked engine metrics (not a timing benchmark itself)."""
    cached = run_workload(stream, 256)
    uncached = run_workload(stream, 0)
    assert cached.cache_stats.hit_rate > 0
    lines = [
        "engine: 50 heterogeneous campaigns, one shared 96-interval stream",
        "",
        f"cached   : {cached.campaigns_per_second:8.1f} campaigns/sec  "
        f"(hit rate {100 * cached.cache_stats.hit_rate:.1f}%, "
        f"{cached.cache_stats.misses} solves)",
        f"uncached : {uncached.campaigns_per_second:8.1f} campaigns/sec  "
        f"({uncached.cache_stats.misses} solves)",
        f"speedup  : {uncached.elapsed_seconds / cached.elapsed_seconds:8.1f}x "
        f"wall-clock from policy caching",
        f"completion {100 * cached.completion_rate:.1f}%, "
        f"spend {cached.total_cost / 100:.2f}$, "
        f"peak concurrency {cached.max_concurrent}",
    ]
    emit("engine", "\n".join(lines))


def test_engine_fastpath_report(stream, emit):
    """Batch-vs-scalar solve throughput and shard scaling -> BENCH_engine.json.

    The acceptance bar: the batched kernel must deliver at least 3x the
    policy-solve throughput of the scalar path on the 64-campaign solve
    workload.
    """
    problems = distinct_solve_workload()
    # Warm-up pass doubling as the equivalence guard: the speedup must
    # not come from solving less.
    scalar_policies = [solve_deadline(p) for p in problems]
    batch_policies = solve_deadline_batch(problems)
    assert all(
        np.array_equal(s.price_index, b.price_index)
        and np.allclose(s.opt, b.opt, rtol=1e-9, atol=1e-8)
        for s, b in zip(scalar_policies, batch_policies)
    )
    scalar_seconds = _best_of(2, lambda: [solve_deadline(p) for p in problems])
    batch_seconds = _best_of(2, lambda: solve_deadline_batch(problems))
    speedup = scalar_seconds / batch_seconds
    assert speedup >= 3.0, (
        f"batch fast path delivered only {speedup:.1f}x over scalar solves"
    )

    shard_counts = (1, 2, 4)
    shard_runs = {n: run_sharded(stream, n) for n in shard_counts}
    baseline = shard_runs[1]
    for n in shard_counts[1:]:  # sharding is a pure throughput lever
        assert shard_runs[n].total_completed == baseline.total_completed
        assert shard_runs[n].total_cost == pytest.approx(baseline.total_cost)

    record = {
        "workload": {
            "solve_instances": len(problems),
            "shapes": [list(s) for s in SOLVE_SHAPES],
            "sharded_campaigns": 120,
            "stream_intervals": NUM_INTERVALS,
            "seed": SEED,
        },
        "policy_solve": {
            "scalar_seconds": round(scalar_seconds, 4),
            "batch_seconds": round(batch_seconds, 4),
            "scalar_solves_per_second": round(len(problems) / scalar_seconds, 1),
            "batch_solves_per_second": round(len(problems) / batch_seconds, 1),
            "speedup": round(speedup, 2),
            "required_speedup": 3.0,
        },
        "shard_scaling": [
            {
                "shards": n,
                "seconds": round(shard_runs[n].elapsed_seconds, 3),
                "campaigns_per_second": round(
                    shard_runs[n].campaigns_per_second, 1
                ),
                "completed": shard_runs[n].total_completed,
            }
            for n in shard_counts
        ],
        "cache": {
            "hit_rate": round(baseline.cache_stats.hit_rate, 4),
            "misses": baseline.cache_stats.misses,
        },
    }
    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")
    lines = [
        f"fast path: {len(problems)} distinct deadline instances "
        "(4 shapes x 16 forecast levels)",
        "",
        f"scalar : {scalar_seconds:7.3f}s "
        f"({len(problems) / scalar_seconds:7.1f} solves/sec)",
        f"batch  : {batch_seconds:7.3f}s "
        f"({len(problems) / batch_seconds:7.1f} solves/sec)",
        f"speedup: {speedup:7.1f}x policy-solve throughput (bar: 3x)",
        "",
        "shard scaling (120 campaigns, identical outcomes per shard count):",
    ]
    lines += [
        f"  {n} shard{'s' if n > 1 else ' '}: "
        f"{shard_runs[n].elapsed_seconds:6.2f}s  "
        f"({shard_runs[n].campaigns_per_second:6.1f} campaigns/sec)"
        for n in shard_counts
    ]
    lines.append(f"[written to {BENCH_JSON}]")
    emit("engine_fastpath", "\n".join(lines))
