"""Benchmark-suite plumbing.

Each benchmark regenerates one of the paper's tables or figures.  The
rendered block is printed (visible with ``pytest -s``) and also written to
``benchmarks/results/<exp_id>.txt`` so EXPERIMENTS.md can be assembled from
the exact artifacts the harness produced.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def emit():
    """Write one experiment's rendered output to disk (and stdout)."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(exp_id: str, text: str) -> None:
        path = RESULTS_DIR / f"{exp_id}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _emit
