"""Figure 11 benchmark: fixed-budget completion-time distribution."""

from __future__ import annotations

from repro.experiments import fig11_budget_completion


def test_fig11_budget_completion(benchmark, emit):
    result = benchmark.pedantic(
        fig11_budget_completion.run_fig11, rounds=1, iterations=1, warmup_rounds=0
    )
    summary = result.summary
    # Paper: mean ~23.2h, realizations roughly 18-30h.
    assert 20.0 <= summary.mean <= 27.0
    assert summary.minimum >= 15.0
    assert summary.maximum <= 34.0
    assert summary.maximum - summary.minimum >= 6.0  # no latency guarantee
    assert len(result.allocation.prices) <= 2  # Theorem 7 structure
    emit(
        "fig11_budget_completion",
        fig11_budget_completion.format_result(result),
    )
