"""Table 1 benchmark: Poisson truncation cut-offs.

Regenerates the paper's Table 1 (s0 = 35/53/99 at eps = 1e-9) and times the
cut-off computation itself — the operation the DP performs once per
(interval, price) pair.
"""

from __future__ import annotations

from repro.experiments import table1_truncation


def test_table1_truncation(benchmark, emit):
    rows = benchmark(table1_truncation.run_table1)
    values = {(r.eps, r.lam): r.s0 for r in rows}
    assert values[(1e-9, 10.0)] == 35
    assert values[(1e-9, 20.0)] == 53
    assert values[(1e-9, 50.0)] == 99
    emit("table01_truncation", table1_truncation.format_result(rows))
