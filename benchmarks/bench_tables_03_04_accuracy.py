"""Tables 3-4 / Figures 13-14 benchmark: accuracy vs price."""

from __future__ import annotations

import numpy as np

from repro.experiments import tables34_accuracy


def test_tables_03_04_accuracy(benchmark, emit):
    result = benchmark.pedantic(
        tables34_accuracy.run_tables34, rounds=1, iterations=1, warmup_rounds=0
    )
    # Table 3: all group means near 90%, spread small (paper: ~3 points,
    # not statistically significant).
    values = list(result.fixed_mean_accuracy.values())
    assert all(0.85 <= v <= 0.95 for v in values)
    assert result.accuracy_spread() < 0.05
    # Table 4: dynamic trials in the same band.
    for _, _, overall in result.dynamic_trial_accuracy:
        assert 0.85 <= overall <= 0.95
    # Figs 13-14: CDFs similar across prices — compare at the grid's
    # midpoint; all series within a modest band of each other.
    mid = len(result.cdf_grid) // 2
    mid_values = [cdf[mid] for cdf in result.fixed_cdfs.values()] + [
        cdf[mid] for cdf in result.dynamic_cdfs.values()
    ]
    assert np.nanmax(mid_values) - np.nanmin(mid_values) < 0.35
    emit(
        "tables_03_04_accuracy", tables34_accuracy.format_result(result)
    )
