"""Figure 8(a-c) benchmark: cost reduction vs the s, b, M parameters."""

from __future__ import annotations

from repro.experiments import fig8_param_trends


def test_fig08_param_trends(benchmark, emit):
    result = benchmark.pedantic(
        fig8_param_trends.run_fig8_params, rounds=1, iterations=1, warmup_rounds=0
    )
    # (a) stable in s: the sweep's spread stays moderate.
    assert result.spread(result.by_s) < 0.15
    # (b) lower for more attractive tasks: reduction falls as b rises past
    # the default (ignoring the cheap-price saturation at the low end).
    b_tail = [p.reduction for p in result.by_b if p.value >= -0.39]
    assert all(y <= x + 0.02 for x, y in zip(b_tail, b_tail[1:]))
    # (c) higher with fewer competitors: reduction falls as M grows.
    m_tail = [p.reduction for p in result.by_m if p.value >= 2000.0]
    assert all(y <= x + 0.02 for x, y in zip(m_tail, m_tail[1:]))
    emit("fig08_param_trends", fig8_param_trends.format_result(result))
